"""Figure 8 bench: off-lining failures, random vs removable-first."""

from conftest import emit

from repro.experiments import fig08_failures


def test_fig08_failures(benchmark, fast_mode):
    result = benchmark.pedantic(fig08_failures.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["failure_reduction"] > 0.3
    assert result.measured["volatile_fail_more_than_stable"]
