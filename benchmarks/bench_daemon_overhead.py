"""Daemon-cost bench (Section 6.2's 0.34%/0.16% core-share claim)."""

from conftest import emit

from repro.experiments import daemon_overhead


def test_daemon_overhead(benchmark, fast_mode):
    result = benchmark.pedantic(daemon_overhead.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    # The headline: daemon cycles are a rounding error on one core.
    assert result.measured["online_core_fraction"] < 0.01
    assert result.measured["offline_core_fraction"] < 0.01
