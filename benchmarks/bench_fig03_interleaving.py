"""Figure 3 bench: speedup, self-refresh residency, and energy trade."""

from conftest import emit

from repro.experiments import fig03_interleaving


def test_fig03_interleaving(benchmark, fast_mode):
    result = benchmark.pedantic(fig03_interleaving.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    measured = result.measured
    assert 2.5 < measured["max_speedup"] < 6.0
    assert measured["selfrefresh_fraction_interleaved"] < 0.05
    assert measured["selfrefresh_fraction_non_interleaved"] > 0.40
    assert measured["energy_reduction_wo_interleaving"] > 0.05
