"""Figure 9 bench: DRAM energy under the full policy matrix."""

from conftest import emit

from repro.experiments.fig09_10_11_policies import run_fig09


def test_fig09_dram_energy(benchmark, fast_mode):
    result = benchmark.pedantic(run_fig09, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["spec_mean_reduction"] > 0.2
    assert result.measured["datacenter_mean_reduction"] > 0.2
    assert result.measured["greendimm_vs_rank_bank_pp"] > 0.25
