"""Benchmark-harness plumbing.

Every bench regenerates one of the paper's tables/figures, prints the
rows (run pytest with ``-s`` to see them live), and appends the rendered
output to ``benchmarks/results/`` so EXPERIMENTS.md can be audited
against a fresh run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(result) -> None:
    """Print and persist an ExperimentResult."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.render()
    print()
    print(text)
    path = RESULTS_DIR / f"{result.experiment}.txt"
    path.write_text(text + "\n")


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    """Shrink trace lengths when GREENDIMM_BENCH_FULL is not set."""
    return os.environ.get("GREENDIMM_BENCH_FULL", "") == ""
