"""Ablation: the off_thr free-memory reserve (Section 4.2).

The paper keeps >=10% of capacity free because smaller reserves thrash.
This bench sweeps the reserve and reports gated capacity vs emergency
on-lining events (the thrashing precursor).
"""

from conftest import emit

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.experiments.common import ExperimentResult
from repro.experiments.blocksize_study import study_organization
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads import profile_by_name


def run_sweep(fast: bool = True) -> ExperimentResult:
    table = Table("Ablation — off_thr reserve sweep (470.lbm, 8GB server)",
                  ["off_thr", "mean gated fraction", "swapped pages",
                   "swap stall", "overhead"])
    measured = {}
    for off_thr in (0.03, 0.06, 0.09, 0.12, 0.18, 0.25):
        config = GreenDIMMConfig(off_thr_fraction=off_thr,
                                 on_thr_fraction=off_thr * 0.8,
                                 block_bytes=128 * MIB)
        system = GreenDIMMSystem(organization=study_organization(),
                                 config=config,
                                 kernel_boot_bytes=512 * MIB,
                                 transient_failure_probability=0.5, seed=19)
        sim = ServerSimulator(system, seed=19)
        result = sim.run_workload(profile_by_name("470.lbm"), epoch_s=1.0)
        gated = sum(s.dpd_fraction for s in result.samples) / len(result.samples)
        swap = sim.swap.stats
        table.add_row(f"{off_thr:.0%}", f"{gated:.1%}",
                      swap.total_io_pages, f"{swap.stall_s:.2f}s",
                      f"{result.overhead_fraction:.2%}")
        measured[off_thr] = (gated, swap.total_io_pages)
    return ExperimentResult(
        experiment="ablation_off_thr",
        description="reserve size vs gated capacity and swap thrashing "
                    "(the paper's 10% rule)",
        tables=[table],
        measured={"gated_at_3pct": measured[0.03][0],
                  "gated_at_25pct": measured[0.25][0],
                  "swap_at_3pct": measured[0.03][1],
                  "swap_at_12pct": measured[0.12][1]})


def test_ablation_off_thr(benchmark, fast_mode):
    result = benchmark.pedantic(run_sweep, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    # A smaller reserve gates more capacity but thrashes; the paper's
    # 10%+ reserve keeps swap quiet.
    assert result.measured["gated_at_3pct"] >= result.measured["gated_at_25pct"]
    assert result.measured["swap_at_3pct"] > 0
    assert result.measured["swap_at_12pct"] == 0
