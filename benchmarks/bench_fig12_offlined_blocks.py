"""Figure 12 bench: off-lined blocks over the Azure VM trace."""

from conftest import emit

from repro.experiments import fig12_offlined_blocks


def test_fig12_offlined_blocks(benchmark, fast_mode):
    result = benchmark.pedantic(fig12_offlined_blocks.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    measured = result.measured
    assert measured["max_offline_blocks"] > measured["min_offline_blocks"]
    assert measured["mean_offline_blocks"] > 60
    assert measured["ksm_extra_blocks"] > 4
    assert (measured["ksm_background_power_reduction"]
            > measured["background_power_reduction"])
