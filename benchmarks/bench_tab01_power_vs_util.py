"""Table 1 bench: DRAM power vs utilization of memory capacity."""

from conftest import emit

from repro.experiments import tab01_power_vs_util


def test_tab01_power_vs_util(benchmark, fast_mode):
    result = benchmark.pedantic(tab01_power_vs_util.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    # Unmanaged power must be flat; the gated column proportional.
    assert result.measured["spread_w"] < 0.5
