"""Figure 6 bench: off-lined capacity vs memory-block size."""

from conftest import emit

from repro.experiments.fig06_07_tab02_blocksize import run_fig06


def test_fig06_blocksize_capacity(benchmark, fast_mode):
    result = benchmark.pedantic(run_fig06, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["gcc_ratio_128_over_512"] > 1.0
