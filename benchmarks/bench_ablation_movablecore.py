"""Ablation: the movablecore split (Section 5.2).

Only ZONE_MOVABLE blocks can be off-lined, so the boot-time
``movablecore`` parameter caps GreenDIMM's reachable capacity: free
memory stranded in ZONE_NORMAL keeps refreshing forever.  The sweep
shows gated capacity tracking the movable fraction on an idle server.
"""

from conftest import emit

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import spec_server_memory
from repro.experiments.common import ExperimentResult
from repro.units import GIB


def run_sweep(fast: bool = True) -> ExperimentResult:
    table = Table("Ablation — movablecore sizing (idle 64GB server)",
                  ["movable fraction", "offline blocks", "gated capacity",
                   "stranded free (GiB)"])
    gated = {}
    for fraction in (0.25, 0.50, 0.75, 0.90):
        system = GreenDIMMSystem(organization=spec_server_memory(),
                                 config=GreenDIMMConfig(block_bytes=GIB),
                                 movable_fraction=fraction,
                                 kernel_boot_bytes=2 * GIB,
                                 transient_failure_probability=0.0, seed=7)
        for t in range(20):
            system.step(float(t))
        stranded = system.mm.zones[0].allocator.free_pages * 4096 / GIB
        gated[fraction] = system.daemon.dpd_fraction()
        table.add_row(f"{fraction:.0%}",
                      f"{system.daemon.offline_block_count}/"
                      f"{system.mm.num_blocks}",
                      f"{gated[fraction]:.1%}", f"{stranded:.1f}")
    return ExperimentResult(
        experiment="ablation_movablecore",
        description="movable-zone sizing caps GreenDIMM's reach",
        tables=[table],
        measured={"gated_at_25pct": gated[0.25],
                  "gated_at_90pct": gated[0.90]})


def test_ablation_movablecore(benchmark, fast_mode):
    result = benchmark.pedantic(run_sweep, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["gated_at_90pct"] > result.measured["gated_at_25pct"]
    assert result.measured["gated_at_25pct"] <= 0.30
