"""Ablation: the monitoring period (Section 4.2).

The paper uses 1s and notes that faster sampling only adds overhead; a
slower monitor reacts late, leaving reclaimable capacity on-lined.
"""

from conftest import emit

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.experiments.common import ExperimentResult
from repro.experiments.blocksize_study import study_organization
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads import profile_by_name


def run_sweep(fast: bool = True) -> ExperimentResult:
    table = Table("Ablation — monitoring period (403.gcc, 8GB server)",
                  ["period", "mean gated fraction", "offline events"])
    gated_by_period = {}
    for period in (1.0, 5.0, 30.0, 120.0):
        config = GreenDIMMConfig(monitor_period_s=period,
                                 block_bytes=128 * MIB)
        system = GreenDIMMSystem(organization=study_organization(),
                                 config=config,
                                 kernel_boot_bytes=512 * MIB,
                                 transient_failure_probability=0.5, seed=23)
        sim = ServerSimulator(system, seed=23)
        result = sim.run_workload(profile_by_name("403.gcc"), epoch_s=1.0)
        gated = sum(s.dpd_fraction for s in result.samples) / len(result.samples)
        gated_by_period[period] = gated
        table.add_row(f"{period:.0f}s", f"{gated:.1%}", result.offline_events)
    return ExperimentResult(
        experiment="ablation_monitor_period",
        description="how reaction latency erodes gated capacity",
        tables=[table],
        measured={"gated_1s": gated_by_period[1.0],
                  "gated_120s": gated_by_period[120.0]})


def test_ablation_monitor_period(benchmark, fast_mode):
    result = benchmark.pedantic(run_sweep, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["gated_1s"] >= result.measured["gated_120s"] - 0.02
