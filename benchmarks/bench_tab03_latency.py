"""Table 3 bench: hot-plug operation latencies."""

import pytest
from conftest import emit

from repro.experiments import tab03_latency


def test_tab03_latency(benchmark, fast_mode):
    result = benchmark.pedantic(tab03_latency.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    measured = result.measured
    assert measured["offline_ms"] == pytest.approx(1.58, rel=0.05)
    assert measured["eagain_ms"] / measured["offline_ms"] == pytest.approx(
        4.37 / 1.58, rel=0.05)
    assert measured["ebusy_us"] < 50
