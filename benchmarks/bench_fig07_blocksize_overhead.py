"""Figure 7 bench: execution-time increase vs memory-block size."""

from conftest import emit

from repro.experiments.fig06_07_tab02_blocksize import run_fig07


def test_fig07_blocksize_overhead(benchmark, fast_mode):
    result = benchmark.pedantic(run_fig07, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["worst_overhead"] <= 0.035
    assert result.measured["mcf_overhead_grows_with_smaller_blocks"]
