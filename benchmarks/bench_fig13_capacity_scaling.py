"""Figure 13 bench: DRAM/system power savings vs memory capacity."""

from conftest import emit

from repro.experiments import fig13_capacity_scaling


def test_fig13_capacity_scaling(benchmark, fast_mode):
    result = benchmark.pedantic(fig13_capacity_scaling.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    measured = result.measured
    assert measured["dram_reduction_256gb"] > 0.15
    assert measured["system_reduction_1tb"] > measured["system_reduction_256gb"]
    assert (measured["ksm_dram_reduction_1tb"]
            > measured["dram_reduction_1tb"])
