"""Figure 11 bench: execution-time increase by GreenDIMM per app."""

from conftest import emit

from repro.experiments.fig09_10_11_policies import run_fig11


def test_fig11_overhead(benchmark, fast_mode):
    result = benchmark.pedantic(run_fig11, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["worst_case"] <= 0.035
