"""Ablation: the sense-amp pair-gating constraint (Section 6.1).

GreenDIMM gates a sub-array group only when its sense-amp partner is
also off-lined; this bench quantifies how much gated capacity that
costs against an unconstrained design.
"""

from conftest import emit

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.experiments.common import ExperimentResult
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads import profile_by_name
from repro.experiments.blocksize_study import study_organization


def _mean_dpd(pair_gating: bool) -> float:
    config = GreenDIMMConfig(block_bytes=128 * MIB, pair_gating=pair_gating)
    system = GreenDIMMSystem(organization=study_organization(), config=config,
                             kernel_boot_bytes=512 * MIB,
                             transient_failure_probability=0.5, seed=13)
    sim = ServerSimulator(system, seed=13)
    result = sim.run_workload(profile_by_name("403.gcc"), epoch_s=2.0)
    return sum(s.dpd_fraction for s in result.samples) / len(result.samples)


def run_ablation(fast: bool = True) -> ExperimentResult:
    paired = _mean_dpd(True)
    free = _mean_dpd(False)
    table = Table("Ablation — pair-gating constraint",
                  ["configuration", "mean gated capacity fraction"])
    table.add_row("pair gating (paper)", f"{paired:.1%}")
    table.add_row("independent groups", f"{free:.1%}")
    return ExperimentResult(
        experiment="ablation_pair_gating",
        description="gated capacity lost to the shared-sense-amp pairing",
        tables=[table],
        measured={"paired": paired, "independent": free,
                  "cost_fraction": (free - paired) / free if free else 0.0})


def test_ablation_pair_gating(benchmark, fast_mode):
    result = benchmark.pedantic(run_ablation, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["independent"] >= result.measured["paired"] - 1e-9
