"""Simulation-core timing: quiescence fast-forward vs per-epoch stepping.

Runs the same three fixed-seed scenarios as ``repro bench`` (a SPEC
workload run, an Azure vm-trace replay, a co-located mix), each with the
fast path on and off, and persists the JSON document to
``benchmarks/results/BENCH_perf_core.json``.  The assertions encode the
layer's contract: every scenario must be bit-for-bit identical across
the two paths, and the epoch-dominated trace replay must come out at
least 3x faster with fast-forwarding on.
"""

import json

from conftest import RESULTS_DIR

from repro.bench import run_perf_core


def run_bench(fast: bool = True) -> dict:
    RESULTS_DIR.mkdir(exist_ok=True)
    return run_perf_core(full=not fast,
                         out=RESULTS_DIR / "BENCH_perf_core.json")


def test_perf_core(benchmark, fast_mode):
    document = benchmark.pedantic(run_bench, kwargs={"fast": fast_mode},
                                  rounds=1, iterations=1)
    print()
    print(json.dumps(document, indent=2, sort_keys=True))
    scenarios = document["scenarios"]
    assert set(scenarios) == {"workload", "vm_trace", "mix"}
    # Bit-for-bit: the fast path must not change a single sample or joule.
    for name, s in scenarios.items():
        assert s["identical"], f"{name} diverged under fast-forward"
        assert s["epochs_total"] > 0
    # The trace replay is the epoch-dominated scenario the layer targets.
    trace = scenarios["vm_trace"]
    assert trace["epochs_fast_forwarded"] > 0
    assert trace["fast_forward_windows"] > 0
    assert trace["speedup"] >= 3.0
    assert trace["power_cache_hit_rate"] > 0.5
