"""Whole-catalog sweep: GreenDIMM across every synthetic SPEC profile.

A breadth regression beyond the paper's selected set: every profile in
the catalog must show non-negative DRAM savings and overhead inside the
paper's <3.5% band.
"""

from conftest import emit

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.experiments.blocksize_study import study_organization
from repro.experiments.common import ExperimentResult
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads.datacenter import DATACENTER_PROFILES
from repro.workloads.spec import SPEC_PROFILES


def run_sweep(fast: bool = True) -> ExperimentResult:
    profiles = dict(SPEC_PROFILES)
    if not fast:
        profiles.update(DATACENTER_PROFILES)
    table = Table("Catalog sweep — GreenDIMM on every profile (8GB server)",
                  ["application", "suite", "offline ev", "online ev",
                   "energy saved", "overhead"])
    savings = {}
    overheads = {}
    for index, (name, profile) in enumerate(sorted(profiles.items())):
        if profile.peak_footprint_bytes > 6 * (1 << 30):
            continue  # larger than the sweep platform can host
        system = GreenDIMMSystem(
            organization=study_organization(),
            config=GreenDIMMConfig(block_bytes=128 * MIB),
            kernel_boot_bytes=512 * MIB,
            transient_failure_probability=0.6, seed=300 + index)
        simulator = ServerSimulator(system, seed=300 + index)
        result = simulator.run_workload(profile, epoch_s=2.0 if fast else 1.0)
        savings[name] = result.dram_energy_saving
        overheads[name] = result.overhead_fraction
        table.add_row(name, profile.suite.value, result.offline_events,
                      result.online_events,
                      f"{result.dram_energy_saving:.1%}",
                      f"{result.overhead_fraction:.2%}")
    return ExperimentResult(
        experiment="suite_sweep",
        description="breadth regression over the whole workload catalog",
        tables=[table],
        measured={
            "profiles_run": len(savings),
            "min_saving": min(savings.values()),
            "worst_overhead": max(overheads.values()),
        })


def test_suite_sweep(benchmark, fast_mode):
    result = benchmark.pedantic(run_sweep, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["profiles_run"] >= 25
    assert result.measured["min_saving"] > 0.0
    assert result.measured["worst_overhead"] <= 0.035
