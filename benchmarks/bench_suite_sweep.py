"""Whole-catalog sweep: GreenDIMM across every synthetic SPEC profile.

A breadth regression beyond the paper's selected set: every profile in
the catalog must show non-negative DRAM savings and overhead inside the
paper's <3.5% band.

The per-profile simulations are independent, so the sweep fans them out
through :func:`repro.runner.fan_out`; set ``GREENDIMM_BENCH_PARALLEL``
to a worker count (default 1 = serial) and the per-profile wall times
land in ``results/suite_sweep_metrics.jsonl``.
"""

from __future__ import annotations

import functools
import os

from conftest import RESULTS_DIR, emit

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.experiments.blocksize_study import study_organization
from repro.experiments.common import ExperimentResult
from repro.runner import MetricsBus, fan_out
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads.datacenter import DATACENTER_PROFILES
from repro.workloads.spec import SPEC_PROFILES


def _sweep_one(item, fast: bool = True):
    """One profile's run — module-level so it pickles into workers."""
    index, name, profile = item
    system = GreenDIMMSystem(
        organization=study_organization(),
        config=GreenDIMMConfig(block_bytes=128 * MIB),
        kernel_boot_bytes=512 * MIB,
        transient_failure_probability=0.6, seed=300 + index)
    simulator = ServerSimulator(system, seed=300 + index)
    result = simulator.run_workload(profile, epoch_s=2.0 if fast else 1.0)
    return (name, profile.suite.value, result.offline_events,
            result.online_events, result.dram_energy_saving,
            result.overhead_fraction)


def run_sweep(fast: bool = True) -> ExperimentResult:
    profiles = dict(SPEC_PROFILES)
    if not fast:
        profiles.update(DATACENTER_PROFILES)
    items = [(index, name, profile)
             for index, (name, profile) in enumerate(sorted(profiles.items()))
             if profile.peak_footprint_bytes <= 6 * (1 << 30)]

    workers = int(os.environ.get("GREENDIMM_BENCH_PARALLEL", "1"))
    RESULTS_DIR.mkdir(exist_ok=True)
    metrics = MetricsBus(path=RESULTS_DIR / "suite_sweep_metrics.jsonl")
    rows = fan_out(functools.partial(_sweep_one, fast=fast), items,
                   workers=workers, metrics=metrics,
                   label=lambda item: item[1])

    table = Table("Catalog sweep — GreenDIMM on every profile (8GB server)",
                  ["application", "suite", "offline ev", "online ev",
                   "energy saved", "overhead"])
    savings = {}
    overheads = {}
    for name, suite, offline_ev, online_ev, saving, overhead in rows:
        savings[name] = saving
        overheads[name] = overhead
        table.add_row(name, suite, offline_ev, online_ev,
                      f"{saving:.1%}", f"{overhead:.2%}")
    return ExperimentResult(
        experiment="suite_sweep",
        description="breadth regression over the whole workload catalog",
        tables=[table],
        measured={
            "profiles_run": len(savings),
            "min_saving": min(savings.values()),
            "worst_overhead": max(overheads.values()),
        })


def test_suite_sweep(benchmark, fast_mode):
    result = benchmark.pedantic(run_sweep, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["profiles_run"] >= 25
    assert result.measured["min_saving"] > 0.0
    assert result.measured["worst_overhead"] <= 0.035
