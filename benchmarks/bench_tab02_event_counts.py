"""Table 2 bench: on/off-lining event counts vs block size."""

from conftest import emit

from repro.experiments.fig06_07_tab02_blocksize import run_tab02


def test_tab02_event_counts(benchmark, fast_mode):
    result = benchmark.pedantic(run_tab02, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["gcc_events_128"] > result.measured["mcf_events_128"]
