"""Tail-latency bench: rank low-power hurts the tail; GreenDIMM doesn't."""

from conftest import emit

from repro.experiments import tail_latency


def test_tail_latency(benchmark, fast_mode):
    result = benchmark.pedantic(tail_latency.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["rank_policy_p99_inflation"] > 1.02
    assert result.measured["greendimm_p99_inflation"] == 1.0
    assert result.measured["greendimm_wakeups"] <= result.measured[
        "rank_policy_wakeups"]
