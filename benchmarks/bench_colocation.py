"""Colocation study: GreenDIMM under a consolidated multi-workload mix.

Beyond the paper's single-workload runs: several applications share one
64GB server, their footprint dynamics overlap, and the daemon manages
the union.  Savings must persist and per-app interference must stay
inside the paper's <3.5% band.
"""

from conftest import emit

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.experiments.common import ExperimentResult
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads import profile_by_name

MIXES = {
    "cpu-bound": ("403.gcc", "453.povray", "500.perlbench"),
    "memory-bound": ("429.mcf", "470.lbm", "462.libquantum"),
    "mixed": ("403.gcc", "429.mcf", "453.povray", "470.lbm"),
}


def run_colocation(fast: bool = True) -> ExperimentResult:
    table = Table("Colocation — GreenDIMM under multi-workload mixes (64GB)",
                  ["mix", "apps", "offline ev", "energy saved",
                   "worst overhead"])
    measured = {}
    for index, (label, names) in enumerate(MIXES.items()):
        system = GreenDIMMSystem(
            config=GreenDIMMConfig(block_bytes=128 * MIB),
            transient_failure_probability=0.6, seed=400 + index)
        simulator = ServerSimulator(system, seed=400 + index)
        profiles = [profile_by_name(n) for n in names]
        result = simulator.run_mix(profiles, epoch_s=2.0 if fast else 1.0)
        table.add_row(label, len(names), result.offline_events,
                      f"{result.dram_energy_saving:.1%}",
                      f"{result.worst_overhead:.2%}")
        measured[f"{label}_saving"] = result.dram_energy_saving
        measured[f"{label}_worst_overhead"] = result.worst_overhead
    return ExperimentResult(
        experiment="colocation",
        description="consolidated multi-workload operation (extension)",
        tables=[table],
        measured=measured)


def test_colocation(benchmark, fast_mode):
    result = benchmark.pedantic(run_colocation, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    for label in MIXES:
        assert result.measured[f"{label}_saving"] > 0.25
        assert result.measured[f"{label}_worst_overhead"] <= 0.035
