"""Figure 1 bench: 24h memory utilization, with and without KSM."""

from conftest import emit

from repro.experiments import fig01_utilization


def test_fig01_utilization(benchmark, fast_mode):
    result = benchmark.pedantic(fig01_utilization.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    measured = result.measured
    if not fast_mode:
        assert abs(measured["mean_utilization"] - 0.48) < 0.08
        assert measured["min_utilization"] < 0.20
        assert measured["max_utilization"] > 0.70
    assert measured["ksm_mean_reduction"] > 0.10
