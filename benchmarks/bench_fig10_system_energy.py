"""Figure 10 bench: system energy under the full policy matrix."""

from conftest import emit

from repro.experiments.fig09_10_11_policies import run_fig10


def test_fig10_system_energy(benchmark, fast_mode):
    result = benchmark.pedantic(run_fig10, kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    assert result.measured["spec_mean_reduction"] > 0.1
    assert result.measured["datacenter_mean_reduction"] > 0.05
