"""Figure 2 bench: DRAM idle/busy power vs capacity."""

from conftest import emit

from repro.experiments import fig02_idle_busy


def test_fig02_idle_busy(benchmark, fast_mode):
    result = benchmark.pedantic(fig02_idle_busy.run,
                                kwargs={"fast": fast_mode},
                                rounds=1, iterations=1)
    emit(result)
    measured = result.measured
    assert measured["idle_w_256gb"] == __import__("pytest").approx(18.0, rel=0.12)
    assert measured["busy_w_256gb"] == __import__("pytest").approx(26.0, rel=0.12)
    assert (measured["background_fraction_64gb"]
            < measured["background_fraction_1tb"])
