"""Workload traces, profiles, and the Azure generator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.units import GIB, MIB
from repro.workloads import (
    AccessTraceGenerator,
    AzureTraceGenerator,
    AzureVMCatalog,
    EVALUATION_SET,
    FootprintTrace,
    all_profiles,
    oscillating_trace,
    profile_by_name,
)
from repro.workloads.profiles import Suite
from repro.workloads.spec import BLOCKSIZE_STUDY_SET, SPEC_PROFILES, high_mpki_spec2006


class TestFootprintTrace:
    def test_interpolation(self):
        trace = FootprintTrace.of([(0, 0), (10, 1000)])
        assert trace.at(5) == 500
        assert trace.at(-1) == 0
        assert trace.at(99) == 1000

    def test_peak(self):
        trace = FootprintTrace.of([(0, 5), (1, 50), (2, 10)])
        assert trace.peak_bytes == 50

    def test_requires_sorted(self):
        with pytest.raises(ConfigurationError):
            FootprintTrace.of([(5, 0), (1, 0)])

    def test_scaled(self):
        trace = FootprintTrace.of([(0, 100)]).scaled(2.5)
        assert trace.at(0) == 250

    @given(st.floats(min_value=0.0, max_value=600.0))
    @settings(max_examples=50, deadline=None)
    def test_oscillation_within_bounds(self, t):
        trace = oscillating_trace(600.0, 100 * MIB, 500 * MIB, cycles=7)
        assert 100 * MIB <= trace.at(t) <= 500 * MIB

    def test_oscillation_reaches_extremes(self):
        trace = oscillating_trace(600.0, 100, 500, cycles=4)
        values = [trace.at(t / 2) for t in range(1200)]
        assert min(values) == 100
        assert max(values) == 500

    def test_oscillation_validation(self):
        with pytest.raises(ConfigurationError):
            oscillating_trace(600.0, 500, 100, cycles=4)


class TestAccessGenerator:
    def test_generates_count(self):
        gen = AccessTraceGenerator(64 * MIB, rate_per_s=1e6)
        reqs = gen.generate(500)
        assert len(reqs) == 500
        assert all(r.arrival_ns >= 0 for r in reqs)

    def test_addresses_within_footprint(self):
        gen = AccessTraceGenerator(MIB, rate_per_s=1e6,
                                   region_offset=4 * MIB)
        for req in gen.generate(300):
            assert 4 * MIB <= req.address < 5 * MIB

    def test_arrival_rate_matches(self):
        gen = AccessTraceGenerator(64 * MIB, rate_per_s=1e6,
                                   rng=random.Random(1))
        reqs = gen.generate(5000)
        span_s = reqs[-1].arrival_ns * 1e-9
        assert 5000 / span_s == pytest.approx(1e6, rel=0.1)

    def test_write_fraction(self):
        gen = AccessTraceGenerator(64 * MIB, rate_per_s=1e6,
                                   write_fraction=0.5,
                                   rng=random.Random(2))
        writes = sum(r.is_write for r in gen.generate(2000))
        assert writes == pytest.approx(1000, rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AccessTraceGenerator(16, rate_per_s=1e6)
        with pytest.raises(ConfigurationError):
            AccessTraceGenerator(MIB, rate_per_s=0)
        with pytest.raises(ConfigurationError):
            AccessTraceGenerator(MIB, rate_per_s=1e6, locality=2.0)


class TestProfileCatalog:
    def test_all_profiles_nonempty(self):
        profiles = all_profiles()
        assert len(profiles) >= 15

    def test_lookup_by_name(self):
        assert profile_by_name("429.mcf").suite is Suite.SPEC2006
        assert profile_by_name("ml_linear").suite is Suite.HIBENCH

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            profile_by_name("999.nothing")

    def test_evaluation_set_resolvable(self):
        for name in EVALUATION_SET:
            profile_by_name(name)

    def test_blocksize_study_set_resolvable(self):
        for name in BLOCKSIZE_STUDY_SET:
            assert name in SPEC_PROFILES

    def test_high_mpki_set_is_memory_intensive(self):
        for profile in high_mpki_spec2006():
            assert profile.memory_intensive

    def test_povray_is_cpu_bound(self):
        assert not profile_by_name("453.povray").memory_intensive

    def test_libquantum_floor_footprint_64mb(self):
        # The paper calls out libquantum's 64MB footprint explicitly.
        trace = profile_by_name("462.libquantum").footprint
        assert min(b for _t, b in trace.points) == 64 * MIB

    def test_mcf_peak_footprint(self):
        assert profile_by_name("429.mcf").peak_footprint_bytes == pytest.approx(
            1.7 * GIB, rel=0.01)

    def test_latency_critical_services_marked(self):
        for name in ("data-caching", "data-serving", "web-serving"):
            assert profile_by_name(name).latency_critical

    def test_profiles_have_positive_durations(self):
        for profile in all_profiles().values():
            assert profile.duration_s > 0
            assert profile.peak_footprint_bytes > 0


class TestAzureGenerator:
    def test_catalog_has_100_types(self):
        assert len(AzureVMCatalog().types) == 100

    def test_figure1_calibration(self):
        trace = AzureTraceGenerator(seed=7).generate()
        assert trace.mean_utilization == pytest.approx(0.48, abs=0.06)
        low, high = trace.utilization_range()
        assert low < 0.15
        assert high > 0.70

    def test_respects_capacity(self):
        trace = AzureTraceGenerator(seed=11).generate()
        assert all(s.used_bytes <= trace.capacity_bytes for s in trace.samples)

    def test_respects_consolidation_ratio(self):
        gen = AzureTraceGenerator(seed=13, physical_cores=16)
        trace = gen.generate()
        assert all(s.vcpus_used <= 32 for s in trace.samples)

    def test_events_balanced(self):
        trace = AzureTraceGenerator(seed=17).generate()
        arrivals = sum(1 for e in trace.events if e.kind == "arrive")
        departures = sum(1 for e in trace.events if e.kind == "depart")
        assert arrivals >= departures
        assert arrivals > 50

    def test_deterministic_for_seed(self):
        a = AzureTraceGenerator(seed=19).generate()
        b = AzureTraceGenerator(seed=19).generate()
        assert [s.used_bytes for s in a.samples] == [
            s.used_bytes for s in b.samples]

    def test_lifetimes_bounded(self):
        catalog = AzureVMCatalog()
        rng = random.Random(0)
        for vm_type in catalog.types[:20]:
            for _ in range(5):
                assert 0 < vm_type.sample_lifetime_s(rng) <= 7 * 24 * 3600
