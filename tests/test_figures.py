"""The paper-figure regression suite (``repro figures``)."""

import json

import pytest

from repro.analysis.report import Table
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.figures import (
    DEFAULT_TOLERANCE,
    CellDiff,
    compare_measured,
    default_expected_dir,
    expected_path,
    file_id,
    load_expectation,
    run_suite,
    stale_expectations,
    write_expectation,
)


def _result(measured=None, experiment="fig2", **kwargs):
    table = Table("t", ["a", "b"])
    table.add_row(1, 2)
    return ExperimentResult(
        experiment=experiment, description="a test figure",
        tables=[table],
        measured=measured if measured is not None else {"x": 1.0},
        **kwargs)


class TestFileId:
    def test_figures_and_tables_zero_pad(self):
        assert file_id("fig1") == "fig01"
        assert file_id("fig13") == "fig13"
        assert file_id("tab1") == "tab01"

    def test_named_experiments_pass_through(self):
        assert file_id("fleet") == "fleet"
        assert file_id("fault-storm") == "fault-storm"
        assert file_id("gem5-staircase") == "gem5-staircase"


class TestExpectationSerializer:
    def test_scalars_survive_and_mode_is_recorded(self):
        result = _result({"f": 1.5, "i": 3, "b": True, "s": "mcf"})
        doc = result.expectation(mode="fast")
        assert doc["experiment"] == "fig2"
        assert doc["mode"] == "fast"
        assert doc["values"] == {"f": 1.5, "i": 3, "b": True, "s": "mcf"}

    def test_non_finite_floats_become_null(self):
        doc = _result({"inf": float("inf")}).expectation()
        assert doc["values"]["inf"] is None
        assert "null" in json.dumps(doc)  # strict-JSON serializable

    def test_unpinnable_types_are_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot be pinned"):
            _result({"bad": [1, 2]}).expectation()


class TestCompareMeasured:
    def _expectation(self, values, tolerance=DEFAULT_TOLERANCE, **extra):
        return {"experiment": "fig2", "mode": "fast",
                "tolerance": tolerance, "values": values, **extra}

    def test_identical_values_pass(self):
        result = _result({"x": 1.0, "n": 3, "ok": True, "app": "mcf"})
        diffs = compare_measured(
            self._expectation({"x": 1.0, "n": 3, "ok": True, "app": "mcf"}),
            result)
        assert all(d.ok for d in diffs)

    def test_relative_tolerance_per_cell(self):
        expectation = self._expectation({"x": 100.0})
        within = compare_measured(expectation, _result({"x": 100.009}))
        assert all(d.ok for d in within)
        beyond = compare_measured(expectation, _result({"x": 100.02}))
        assert not beyond[0].ok
        assert beyond[0].rel_err == pytest.approx(2e-4)

    def test_per_key_tolerance_override(self):
        expectation = self._expectation(
            {"x": 100.0}, tolerances={"x": 0.05})
        diffs = compare_measured(expectation, _result({"x": 103.0}))
        assert diffs[0].ok

    def test_bools_ints_strings_match_exactly(self):
        expectation = self._expectation({"b": True, "n": 3, "s": "mcf"})
        diffs = compare_measured(
            expectation, _result({"b": False, "n": 4, "s": "gcc"}))
        assert all(not d.ok for d in diffs)
        # A bool never passes as the numeral it equals.
        sneaky = compare_measured(self._expectation({"b": True}),
                                  _result({"b": 1}))
        assert not sneaky[0].ok

    def test_missing_and_extra_keys_fail(self):
        expectation = self._expectation({"gone": 1.0})
        diffs = compare_measured(expectation, _result({"new": 2.0}))
        kinds = {d.key: d.kind for d in diffs}
        assert kinds == {"gone": "missing", "new": "extra"}
        assert all(not d.ok for d in diffs)
        assert "bless" in [d for d in diffs if d.kind == "extra"][0].describe()

    def test_non_finite_only_matches_non_finite(self):
        expectation = self._expectation({"x": None})
        assert compare_measured(expectation,
                                _result({"x": float("nan")}))[0].ok
        assert not compare_measured(expectation, _result({"x": 1.0}))[0].ok


class TestStaleExpectations:
    def test_orphaned_file_is_listed(self, tmp_path):
        write_expectation(tmp_path / "fig02.json", _result())
        (tmp_path / "fig99.json").write_text('{"values": {}}')
        stale = stale_expectations(tmp_path, ["fig2"])
        assert [p.name for p in stale] == ["fig99.json"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert stale_expectations(tmp_path / "nope", ["fig2"]) == []


class TestRunSuite:
    def test_bless_then_check_roundtrip(self, tmp_path):
        expected = tmp_path / "expected"
        reports = tmp_path / "reports"
        blessed = run_suite(["fig2"], action="bless", fast=True,
                            expected_dir=expected, report_dir=reports)
        assert blessed.passed
        assert (expected / "fig02.json").exists()
        checked = run_suite(["fig2"], action="check", fast=True,
                            expected_dir=expected, report_dir=reports)
        assert checked.passed
        report = (reports / "fig02" / "REPORT.md").read_text()
        assert "Status: PASS" in report
        assert "| metric | expected | measured |" in report

    def test_check_without_expectation_fails(self, tmp_path):
        suite = run_suite(["fig2"], action="check", fast=True,
                          expected_dir=tmp_path / "empty",
                          report_dir=tmp_path / "reports")
        assert not suite.passed
        assert any("no committed expectation" in m for m in suite.failures)

    def test_check_names_drifted_cell(self, tmp_path):
        expected = tmp_path / "expected"
        run_suite(["fig2"], action="bless", fast=True,
                  expected_dir=expected, report_dir=tmp_path / "r")
        pin = expected / "fig02.json"
        document = json.loads(pin.read_text())
        document["values"]["busy_w_256gb"] *= 1.10
        pin.write_text(json.dumps(document))
        suite = run_suite(["fig2"], action="check", fast=True,
                          expected_dir=expected, report_dir=tmp_path / "r")
        assert not suite.passed
        assert any("busy_w_256gb" in m for m in suite.failures)
        report = (tmp_path / "r" / "fig02" / "REPORT.md").read_text()
        assert "DRIFT" in report

    def test_mode_mismatch_is_an_error(self, tmp_path):
        expected = tmp_path / "expected"
        run_suite(["fig2"], action="bless", fast=True,
                  expected_dir=expected, report_dir=tmp_path / "r")
        suite = run_suite(["fig2"], action="check", fast=False,
                          expected_dir=expected, report_dir=tmp_path / "r")
        assert not suite.passed
        assert any("mode" in m for m in suite.failures)

    def test_partial_run_judges_staleness_against_registry(self, tmp_path):
        expected = tmp_path / "expected"
        run_suite(["fig2", "tab1"], action="bless", fast=True,
                  expected_dir=expected, report_dir=tmp_path / "r")
        # Checking only fig2 must not flag tab01.json as stale.
        suite = run_suite(["fig2"], action="check", fast=True,
                          expected_dir=expected, report_dir=tmp_path / "r",
                          all_names=["fig2", "tab1"])
        assert suite.passed


class TestCommittedExpectations:
    def test_every_registered_experiment_has_a_pin(self):
        from repro.experiments.registry import runners

        directory = default_expected_dir()
        missing = [name for name in runners()
                   if not expected_path(directory, name).exists()]
        assert missing == [], f"unblessed experiments: {missing}"

    def test_no_stale_committed_pins(self):
        from repro.experiments.registry import runners

        assert stale_expectations(default_expected_dir(),
                                  list(runners())) == []

    def test_committed_pins_parse_and_are_fast_mode(self):
        for path in sorted(default_expected_dir().glob("*.json")):
            document = load_expectation(path)
            assert document["mode"] == "fast", path.name
            assert document["values"], path.name


class TestFiguresCLI:
    def test_check_fails_on_perturbed_expectation(self, tmp_path, capsys):
        expected = tmp_path / "expected"
        assert main(["figures", "bless", "--fast", "--only", "fig2",
                     "--expected-dir", str(expected),
                     "--report-dir", str(tmp_path / "r")]) == 0
        pin = expected / "fig02.json"
        document = json.loads(pin.read_text())
        document["values"]["idle_w_256gb"] *= 1.02
        pin.write_text(json.dumps(document))
        capsys.readouterr()
        code = main(["figures", "check", "--fast", "--only", "fig2",
                     "--expected-dir", str(expected),
                     "--report-dir", str(tmp_path / "r")])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "idle_w_256gb" in out  # the drift is named

    def test_check_fails_on_stale_expectation(self, tmp_path, capsys):
        expected = tmp_path / "expected"
        assert main(["figures", "bless", "--fast", "--only", "fig2",
                     "--expected-dir", str(expected),
                     "--report-dir", str(tmp_path / "r")]) == 0
        (expected / "fig99.json").write_text('{"values": {}}')
        code = main(["figures", "check", "--fast", "--only", "fig2",
                     "--expected-dir", str(expected),
                     "--report-dir", str(tmp_path / "r")])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale expectation fig99.json" in out

    def test_unknown_only_id(self, capsys):
        assert main(["figures", "check", "--only", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_action_reports_but_does_not_gate(self, tmp_path, capsys):
        code = main(["figures", "run", "--fast", "--only", "tab1",
                     "--expected-dir", str(tmp_path / "empty"),
                     "--report-dir", str(tmp_path / "r")])
        assert code == 0  # no expectation is only fatal under `check`
        assert (tmp_path / "r" / "tab01" / "REPORT.md").exists()


class TestCellDiffDescribe:
    def test_drift_description_names_tolerance(self):
        diff = CellDiff("x", 1.0, 2.0, 0.01, 1.0, "value", False)
        message = diff.describe()
        assert "x" in message and "tolerance" in message
