"""Co-located multi-workload runs."""

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.errors import ConfigurationError
from repro.sim.server import ServerSimulator
from repro.units import MIB, PAGE_SIZE
from repro.workloads import profile_by_name

MIX = ("403.gcc", "453.povray", "429.mcf")


@pytest.fixture(scope="module")
def mix_run():
    system = GreenDIMMSystem(config=GreenDIMMConfig(block_bytes=128 * MIB),
                             transient_failure_probability=0.5, seed=8)
    simulator = ServerSimulator(system, seed=8)
    profiles = [profile_by_name(name) for name in MIX]
    return simulator.run_mix(profiles, epoch_s=2.0), simulator


class TestMixRun:
    def test_all_profiles_tracked(self, mix_run):
        result, _sim = mix_run
        assert result.profile_names == list(MIX)
        assert set(result.overhead_by_profile) == set(MIX)

    def test_footprints_coexist(self, mix_run):
        result, sim = mix_run
        owners = [o for o in sim.system.mm.owners() if o.startswith("mix")]
        assert len(owners) == len(MIX)
        total = sum(sim.system.mm.owner_pages(o) for o in owners)
        last_resize_t = result.samples[-1].time_s  # duration - epoch
        expected = sum(
            profile_by_name(n).footprint.at(last_resize_t) // PAGE_SIZE
            for n in MIX)
        assert total == pytest.approx(expected, rel=0.02)

    def test_energy_saved_under_colocation(self, mix_run):
        result, _sim = mix_run
        assert result.dram_energy_saving > 0.3

    def test_overheads_follow_sensitivity(self, mix_run):
        result, _sim = mix_run
        # mcf (MPKI 65) must suffer at least as much as povray (MPKI 0.3)
        # from the same shared event stream.
        assert (result.overhead_by_profile["429.mcf"]
                >= result.overhead_by_profile["453.povray"])

    def test_no_swap_on_big_server(self, mix_run):
        result, _sim = mix_run
        assert result.swap_stall_s == 0.0

    def test_event_counts_positive(self, mix_run):
        result, _sim = mix_run
        assert result.offline_events > 0
        assert result.online_events > 0

    def test_empty_mix_rejected(self):
        system = GreenDIMMSystem(seed=9)
        with pytest.raises(ConfigurationError):
            ServerSimulator(system, seed=9).run_mix([])

    def test_energy_convention_matches_run_workload(self, mix_run):
        # Both entry points scale integrated power by runtime dilation;
        # a mix is elongated by its slowest tenant.
        result, _sim = mix_run
        raw = sum(s.dram_power_w for s in result.samples) * 2.0
        assert result.dram_energy_j == pytest.approx(
            raw * (1.0 + result.worst_overhead))
