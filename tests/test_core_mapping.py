"""PowerBlockMap: blocks <-> sub-array groups."""

import pytest

from repro.core.mapping import PowerBlockMap
from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.errors import AddressError, ConfigurationError
from repro.units import GIB, MIB

ORG = spec_server_memory()
MAPPING = AddressMapping(ORG, interleaved=True)


class TestBlockEqualsGroup:
    """1GB blocks on the 64GB platform: one block per group."""

    def test_counts(self):
        block_map = PowerBlockMap(MAPPING, GIB)
        assert block_map.num_blocks == 64
        assert block_map.num_groups == 64
        assert block_map.groups_per_block == 1

    def test_identity_mapping(self):
        block_map = PowerBlockMap(MAPPING, GIB)
        for block in (0, 17, 63):
            assert block_map.groups_of_block(block) == (block,)
            assert block_map.blocks_of_group(block) == (block,)


class TestSmallBlocks:
    """128MB Linux blocks: eight blocks cover one group (Section 5.1)."""

    def test_counts(self):
        block_map = PowerBlockMap(MAPPING, 128 * MIB)
        assert block_map.num_blocks == 512
        assert block_map.blocks_per_group == 8

    def test_block_to_single_group(self):
        block_map = PowerBlockMap(MAPPING, 128 * MIB)
        assert block_map.groups_of_block(0) == (0,)
        assert block_map.groups_of_block(7) == (0,)
        assert block_map.groups_of_block(8) == (1,)

    def test_group_needs_all_blocks(self):
        block_map = PowerBlockMap(MAPPING, 128 * MIB)
        assert block_map.blocks_of_group(1) == tuple(range(8, 16))
        partial = set(range(8, 15))
        assert block_map.fully_offline_groups(partial) == []
        assert block_map.fully_offline_groups(set(range(8, 16))) == [1]


class TestLargeBlocks:
    """512MB-style: here 4GB blocks map to four whole groups."""

    def test_multi_group_block(self):
        block_map = PowerBlockMap(MAPPING, 4 * GIB)
        assert block_map.groups_per_block == 4
        assert block_map.groups_of_block(0) == (0, 1, 2, 3)
        assert block_map.blocks_of_group(5) == (1,)

    def test_offline_one_block_gates_four_groups(self):
        block_map = PowerBlockMap(MAPPING, 4 * GIB)
        groups = block_map.fully_offline_groups({0})
        assert groups == [0, 1, 2, 3]


class TestPairConstraint:
    def test_pairs_required(self):
        block_map = PowerBlockMap(MAPPING, GIB)
        # Groups 2 and 3 are a sense-amp pair; 5 alone is not gateable.
        gateable = block_map.gateable_groups({2, 3, 5}, pair_constraint=True)
        assert gateable == [2, 3]

    def test_pairs_disabled(self):
        block_map = PowerBlockMap(MAPPING, GIB)
        gateable = block_map.gateable_groups({2, 3, 5}, pair_constraint=False)
        assert gateable == [2, 3, 5]


class TestValidation:
    def test_requires_interleaved_mapping(self):
        flat = AddressMapping(ORG, interleaved=False)
        with pytest.raises(ConfigurationError):
            PowerBlockMap(flat, GIB)

    def test_block_size_must_relate_to_group(self):
        with pytest.raises(ConfigurationError):
            PowerBlockMap(MAPPING, 384 * MIB)

    def test_block_size_must_divide_capacity(self):
        with pytest.raises(ConfigurationError):
            PowerBlockMap(MAPPING, 3 * GIB)

    def test_bounds(self):
        block_map = PowerBlockMap(MAPPING, GIB)
        with pytest.raises(AddressError):
            block_map.groups_of_block(64)
        with pytest.raises(AddressError):
            block_map.blocks_of_group(64)

    def test_describe(self):
        text = PowerBlockMap(MAPPING, GIB).describe()
        assert "64 blocks" in text and "64 groups" in text
