"""Physical memory manager: allocation, zones, accounting, migration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.os.mm import PhysicalMemoryManager
from repro.os.page import OwnerKind
from repro.os.zones import ZoneKind
from repro.units import GIB, MIB, PAGE_SIZE


def make_mm(total=4 * GIB, movable=0.75) -> PhysicalMemoryManager:
    return PhysicalMemoryManager(total_bytes=total, block_bytes=128 * MIB,
                                 movable_fraction=movable)


class TestConstruction:
    def test_block_and_page_counts(self, small_mm):
        assert small_mm.total_pages == 4 * GIB // PAGE_SIZE
        assert small_mm.num_blocks == 32
        assert small_mm.block_pages == 32768

    def test_rejects_misaligned_capacity(self):
        with pytest.raises(ConfigurationError):
            PhysicalMemoryManager(total_bytes=4 * GIB + MIB,
                                  block_bytes=128 * MIB)

    def test_rejects_tiny_blocks(self):
        with pytest.raises(ConfigurationError):
            PhysicalMemoryManager(total_bytes=4 * GIB, block_bytes=MIB)

    def test_zone_split(self, small_mm):
        kinds = [z.kind for z in small_mm.zones]
        assert kinds == [ZoneKind.NORMAL, ZoneKind.MOVABLE]
        movable = small_mm.zones[1]
        assert movable.pages == pytest.approx(0.75 * small_mm.total_pages, rel=0.01)


class TestAllocation:
    def test_allocate_and_count(self, small_mm):
        small_mm.allocate("a", 1000)
        assert small_mm.used_pages == 1000
        assert small_mm.owner_pages("a") == 1000

    def test_user_goes_to_movable_zone_first(self, small_mm):
        extents = small_mm.allocate("a", 100)
        movable = small_mm.zones[1]
        assert all(movable.contains(e.pfn) for e in extents)

    def test_kernel_confined_to_normal_zone(self, small_mm):
        extents = small_mm.allocate("kernel", 100, kind=OwnerKind.KERNEL)
        normal = small_mm.zones[0]
        assert all(normal.contains(e.pfn) for e in extents)

    def test_pinned_lands_in_movable_zone(self, small_mm):
        """The Section 5.2 leak: pinned pages sit in movable blocks."""
        extents = small_mm.allocate("driver", 8, kind=OwnerKind.PINNED)
        movable = small_mm.zones[1]
        assert all(movable.contains(e.pfn) for e in extents)
        assert all(not e.movable for e in extents)

    def test_user_overflows_into_normal_zone(self, small_mm):
        movable_pages = small_mm.zones[1].pages
        small_mm.allocate("big", movable_pages + 10)
        assert small_mm.owner_pages("big") == movable_pages + 10

    def test_kernel_cannot_use_movable_zone(self, small_mm):
        normal_pages = small_mm.zones[0].pages
        with pytest.raises(AllocationError):
            small_mm.allocate("kernel", normal_pages + 1,
                              kind=OwnerKind.KERNEL)

    def test_allocation_failure_rolls_back(self, small_mm):
        with pytest.raises(AllocationError):
            small_mm.allocate("huge", small_mm.total_pages + 1)
        assert small_mm.used_pages == 0

    def test_zero_pages_rejected(self, small_mm):
        with pytest.raises(AllocationError):
            small_mm.allocate("a", 0)


class TestFreeing:
    def test_free_all(self, small_mm):
        small_mm.allocate("a", 5000)
        assert small_mm.free_all("a") == 5000
        assert small_mm.used_pages == 0
        assert small_mm.owner_pages("a") == 0

    def test_partial_free_exact(self, small_mm):
        small_mm.allocate("a", 10000)
        freed = small_mm.free_pages_of("a", 3333)
        assert freed == 3333
        assert small_mm.owner_pages("a") == 6667

    def test_partial_free_prefers_high_addresses(self, small_mm):
        small_mm.allocate("a", 4096)
        before = {e.pfn for e in small_mm.extents_of("a")}
        small_mm.free_pages_of("a", 2048)
        after = {e.pfn for e in small_mm.extents_of("a")}
        assert min(before) in {e for e in after} or min(after) <= min(before)
        assert max(after) < max(before)

    def test_free_more_than_held(self, small_mm):
        small_mm.allocate("a", 100)
        assert small_mm.free_pages_of("a", 1000) == 100

    def test_free_unknown_owner_is_zero(self, small_mm):
        assert small_mm.free_all("ghost") == 0
        assert small_mm.free_pages_of("ghost", 10) == 0

    def test_free_unknown_extent_rejected(self, small_mm):
        with pytest.raises(AllocationError):
            small_mm.free_extent(12345)

    @given(st.integers(min_value=1, max_value=9999))
    @settings(max_examples=30, deadline=None)
    def test_alloc_free_roundtrip_conserves(self, n):
        mm = make_mm()
        mm.allocate("x", 10000)
        mm.free_pages_of("x", n)
        assert mm.owner_pages("x") == 10000 - n
        assert mm.used_pages == 10000 - n
        mm.free_all("x")
        assert mm.free_pages == mm.total_pages


class TestBlockAccounting:
    def test_used_pages_tracked_per_block(self, small_mm):
        small_mm.allocate("a", small_mm.block_pages)
        used_blocks = [i for i in range(small_mm.num_blocks)
                       if not small_mm.block_is_free(i)]
        total_used = sum(small_mm.block_accounting(i).used_pages
                         for i in used_blocks)
        assert total_used == small_mm.block_pages

    def test_removable_flag(self, small_mm):
        extents = small_mm.allocate("driver", 8, kind=OwnerKind.PINNED)
        block = extents[0].pfn // small_mm.block_pages
        assert not small_mm.block_is_removable(block)
        small_mm.free_all("driver")
        assert small_mm.block_is_removable(block)

    def test_user_pages_keep_block_removable(self, small_mm):
        extents = small_mm.allocate("a", 8)
        block = extents[0].pfn // small_mm.block_pages
        assert small_mm.block_is_removable(block)
        assert not small_mm.block_is_free(block)

    def test_block_range(self, small_mm):
        start, count = small_mm.block_range(3)
        assert start == 3 * small_mm.block_pages
        assert count == small_mm.block_pages

    def test_block_range_validates(self, small_mm):
        with pytest.raises(ConfigurationError):
            small_mm.block_range(small_mm.num_blocks)

    def test_zone_kind_of_block(self, small_mm):
        assert small_mm.zone_kind_of_block(0) is ZoneKind.NORMAL
        assert small_mm.zone_kind_of_block(
            small_mm.num_blocks - 1) is ZoneKind.MOVABLE


class TestMigration:
    def test_migrate_block_out_moves_everything(self, small_mm):
        extents = small_mm.allocate("a", 500)
        block = extents[0].pfn // small_mm.block_pages
        isolated = small_mm.isolate_block(block)
        moved = small_mm.migrate_block_out(block, isolated)
        assert moved >= 1
        assert small_mm.block_is_free(block)
        assert small_mm.owner_pages("a") == 500  # data preserved elsewhere

    def test_migrate_refuses_unmovable(self, small_mm):
        extents = small_mm.allocate("drv", 8, kind=OwnerKind.PINNED)
        block = extents[0].pfn // small_mm.block_pages
        isolated = small_mm.isolate_block(block)
        with pytest.raises(AllocationError):
            small_mm.migrate_block_out(block, isolated)
        small_mm.undo_isolate_block(block, isolated)

    def test_migration_fails_without_destination(self):
        mm = make_mm()
        mm.allocate("fill", mm.total_pages - 100)
        # Any used block has nowhere to migrate to now.
        target = next(i for i in range(mm.num_blocks)
                      if not mm.block_is_free(i))
        isolated = mm.isolate_block(target)
        with pytest.raises(AllocationError):
            mm.migrate_block_out(target, isolated)
        mm.undo_isolate_block(target, isolated)
        assert mm.used_pages == mm.total_pages - 100


class TestMeminfo:
    def test_snapshot_consistency(self, small_mm):
        small_mm.allocate("a", 12345)
        info = small_mm.meminfo()
        assert info.total_pages == small_mm.total_pages
        assert info.used_pages == 12345
        assert info.free_pages == info.total_pages - 12345
        assert info.utilization == pytest.approx(12345 / info.total_pages)

    def test_render_mentions_fields(self, small_mm):
        text = small_mm.meminfo().render()
        for field in ("MemTotal", "MemFree", "MemUsed", "MemOffline"):
            assert field in text
