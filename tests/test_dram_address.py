"""Address mapping: interleaving and sub-array-group decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.organization import spec_server_memory
from repro.errors import AddressError
from repro.units import GIB

ORG = spec_server_memory()
MAPPING = AddressMapping(ORG, interleaved=True)
FLAT = AddressMapping(ORG, interleaved=False)


class TestLayout:
    def test_address_bits_cover_capacity(self):
        assert 1 << MAPPING.address_bits == ORG.total_capacity_bytes

    def test_interleaved_groups_contiguous(self):
        assert MAPPING.group_is_contiguous()

    def test_non_interleaved_groups_not_contiguous(self):
        assert not FLAT.group_is_contiguous()

    def test_group_count_and_size(self):
        assert MAPPING.subarray_group_count == 64
        assert MAPPING.subarray_group_bytes == GIB


class TestDecode:
    def test_address_zero(self):
        d = MAPPING.decode(0)
        assert (d.channel, d.rank, d.bank, d.subarray) == (0, 0, 0, 0)

    def test_line_offset_bits(self):
        d = MAPPING.decode(63)
        assert d.offset == 63
        assert d.channel == 0

    def test_channel_bits_just_above_line(self):
        # Consecutive lines hit consecutive channels: the interleaving.
        channels = [MAPPING.decode(line * 64).channel for line in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_top_bits_select_subarray(self):
        group_bytes = MAPPING.subarray_group_bytes
        for group in (0, 1, 33, 63):
            d = MAPPING.decode(group * group_bytes)
            assert d.subarray == group

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            MAPPING.decode(ORG.total_capacity_bytes)
        with pytest.raises(AddressError):
            MAPPING.decode(-1)

    def test_full_row_address(self):
        d = MAPPING.decode(ORG.total_capacity_bytes - 1)
        bits = ORG.device.local_row_bits
        assert d.row(bits) == (d.subarray << bits) | d.local_row


class TestEncodeDecodeBijection:
    @given(st.integers(min_value=0, max_value=ORG.total_capacity_bytes - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_interleaved(self, address):
        assert MAPPING.encode(MAPPING.decode(address)) == address

    @given(st.integers(min_value=0, max_value=ORG.total_capacity_bytes - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_non_interleaved(self, address):
        assert FLAT.encode(FLAT.decode(address)) == address

    @given(st.integers(min_value=0, max_value=ORG.total_capacity_bytes - 1))
    @settings(max_examples=200, deadline=None)
    def test_group_matches_top_bits(self, address):
        group = MAPPING.subarray_group_of(address)
        assert group == address // MAPPING.subarray_group_bytes

    def test_encode_rejects_field_overflow(self):
        bad = DecodedAddress(channel=99, rank=0, bank=0, subarray=0,
                             local_row=0, column=0, offset=0)
        with pytest.raises(AddressError):
            MAPPING.encode(bad)


class TestInterleavingDispersal:
    """A small contiguous footprint touches every rank — Section 3.3."""

    def test_64mb_footprint_touches_all_ranks(self):
        # libquantum's 64MB footprint kills rank power-down in the paper.
        seen = set()
        for line in range(0, 64 * (1 << 20), 64 * 257):  # sampled stride
            d = MAPPING.decode(line)
            seen.add((d.channel, d.rank))
        assert len(seen) == ORG.channels * ORG.ranks_per_channel

    def test_without_interleaving_footprint_stays_local(self):
        seen = set()
        for line in range(0, 64 * (1 << 20), 64 * 257):
            d = FLAT.decode(line)
            seen.add((d.channel, d.rank))
        assert len(seen) == 1


class TestGroupRanges:
    def test_group_address_range(self):
        start, end = MAPPING.group_address_range(5)
        assert start == 5 * GIB and end == 6 * GIB

    def test_group_range_rejected_for_flat(self):
        with pytest.raises(AddressError):
            FLAT.group_address_range(0)

    def test_groups_of_range_single(self):
        assert MAPPING.groups_of_range(0, GIB) == (0,)

    def test_groups_of_range_straddle(self):
        groups = MAPPING.groups_of_range(GIB - 4096, 8192)
        assert groups == (0, 1)

    def test_groups_of_range_validates(self):
        with pytest.raises(AddressError):
            MAPPING.groups_of_range(0, 0)
        with pytest.raises(AddressError):
            MAPPING.groups_of_range(ORG.total_capacity_bytes - 10, 100)

    def test_flat_mapping_range_covers_all_groups(self):
        assert len(FLAT.groups_of_range(0, GIB)) == 64
