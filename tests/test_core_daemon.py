"""The GreenDIMM daemon: thresholds, selection, on/off-lining."""

import collections

import pytest

from repro.core.config import GreenDIMMConfig, SelectionPolicy
from repro.core.selector import BlockSelector
from repro.core.system import GreenDIMMSystem
from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import MemoryOrganization
from repro.errors import AllocationError, ConfigurationError
from repro.faults import STICKY, FaultPlan, FaultRule, storm_plan
from repro.os.page import OwnerKind
from repro.units import GIB, MIB, PAGE_SIZE


def make_system(**kwargs) -> GreenDIMMSystem:
    org = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                             dimms_per_channel=1, ranks_per_dimm=1)
    defaults = dict(organization=org,
                    config=GreenDIMMConfig(block_bytes=64 * MIB),
                    kernel_boot_bytes=256 * MIB,
                    transient_failure_probability=0.0, seed=3)
    defaults.update(kwargs)
    return GreenDIMMSystem(**defaults)


def settle(system, start=0.0, epochs=20):
    for i in range(epochs):
        system.step(start + i)
    return start + epochs


def _grow(system, owner, total_pages, start):
    """Grow an owner gradually, letting the daemon on-line as needed."""
    now = start
    remaining = total_pages
    while remaining > 0:
        take = min(remaining, max(0, system.mm.free_pages - 2048))
        if take > 0:
            system.mm.allocate(owner, take)
            remaining -= take
        else:
            system.daemon.emergency_online(remaining, now)
        now += 1.0
        system.step(now)
    return now


class TestConfig:
    def test_hysteresis_enforced(self):
        with pytest.raises(ConfigurationError):
            GreenDIMMConfig(off_thr_fraction=0.05, on_thr_fraction=0.10)

    def test_defaults_match_paper(self):
        config = GreenDIMMConfig()
        assert config.off_thr_fraction > 0.10  # "10% + alpha"
        assert config.monitor_period_s == 1.0
        assert config.block_bytes == 128 * MIB
        assert config.selection is SelectionPolicy.REMOVABLE_FIRST

    def test_block_size_must_match_mm(self):
        from repro.core.daemon import GreenDIMMDaemon

        system = make_system()
        bad_config = GreenDIMMConfig(block_bytes=128 * MIB)
        with pytest.raises(ConfigurationError):
            GreenDIMMDaemon(system.mm, system.hotplug, system.power_control,
                            config=bad_config)

    def test_thresholds_round_to_nearest(self):
        # 4GB platform -> 1048576 pages; 0.1049995 x that = 110099.48...
        # truncation would floor to 110099, rounding gives 110099 too, but
        # 0.10500049 x that = 110100.99... where int() loses a page.
        system = make_system(config=GreenDIMMConfig(
            block_bytes=64 * MIB, off_thr_fraction=0.12,
            on_thr_fraction=0.10500049))
        total = system.mm.total_pages
        assert system.daemon.low_water_pages == round(0.10500049 * total)
        assert system.daemon.low_water_pages == 110101  # int() gives 110100
        assert system.daemon.reserve_pages == round(0.12 * total)

    def test_collapsed_thresholds_rejected(self):
        # Both fractions land on the same page count after rounding on a
        # small platform: the hysteresis band vanished, which used to
        # thrash silently between off-lining and on-lining.
        with pytest.raises(ConfigurationError):
            make_system(config=GreenDIMMConfig(
                block_bytes=64 * MIB, off_thr_fraction=0.0000020,
                on_thr_fraction=0.0000019))


class TestOfflineBehaviour:
    def test_idle_system_offlines_surplus(self):
        system = make_system()
        settle(system)
        daemon = system.daemon
        assert daemon.offline_block_count > 0
        free = system.mm.free_pages
        assert free >= daemon.reserve_pages
        # The reserve is respected: free memory stays close to off_thr.
        assert free < daemon.reserve_pages + 3 * system.mm.block_pages

    def test_offlined_capacity_gated(self):
        system = make_system()
        settle(system)
        assert system.daemon.dpd_fraction() > 0.5

    def test_growth_triggers_online(self):
        system = make_system()
        now = settle(system)
        before_online = system.daemon.stats.online_events
        _grow(system, "app", int(2.5 * GIB) // PAGE_SIZE, start=now)
        assert system.daemon.stats.online_events > before_online
        assert system.mm.owner_pages("app") == int(2.5 * GIB) // PAGE_SIZE

    def test_shrink_triggers_more_offline(self):
        system = make_system()
        system.mm.allocate("app", 2 * GIB // PAGE_SIZE)
        now = settle(system)
        count_before = system.daemon.offline_block_count
        system.mm.free_pages_of("app", GIB // PAGE_SIZE)
        settle(system, start=now)
        assert system.daemon.offline_block_count > count_before

    def test_monitor_period_respected(self):
        system = make_system(
            config=GreenDIMMConfig(block_bytes=64 * MIB,
                                   monitor_period_s=10.0))
        system.step(0.0, dt_s=1.0)  # first step always monitors
        events_after_first = system.daemon.stats.offline_events
        for t in range(1, 9):
            system.step(float(t), dt_s=1.0)
        assert system.daemon.stats.offline_events == events_after_first

    def test_emergency_online(self):
        system = make_system()
        settle(system)
        freed = system.daemon.emergency_online(needed_pages=32768)
        assert freed > 0
        assert system.daemon.stats.emergency_onlines == 1


class TestSelectorPolicies:
    def test_removable_first_prefers_free_blocks(self):
        system = make_system()
        system.mm.allocate("app", 1000)
        selector = BlockSelector(system.hotplug,
                                 SelectionPolicy.REMOVABLE_FIRST)
        candidates = selector.candidates(5)
        assert candidates
        assert all(system.hotplug.is_free(b) for b in candidates)
        # Highest-address-first ordering.
        assert candidates == sorted(candidates, reverse=True)

    def test_random_policy_uses_whole_movable_pool(self):
        system = make_system()
        selector = BlockSelector(system.hotplug, SelectionPolicy.RANDOM)
        pool = selector.candidates(10_000)
        from repro.os.zones import ZoneKind
        assert pool
        assert all(system.mm.zone_kind_of_block(b) is ZoneKind.MOVABLE
                   for b in pool)

    def test_zero_count(self):
        system = make_system()
        selector = BlockSelector(system.hotplug)
        assert selector.candidates(0) == []

    def test_random_policy_causes_more_failures(self):
        """Figure 8: removable-first roughly halves off-lining failures."""
        totals = {}
        for policy in (SelectionPolicy.RANDOM,
                       SelectionPolicy.REMOVABLE_FIRST):
            system = make_system(
                config=GreenDIMMConfig(block_bytes=64 * MIB,
                                       selection=policy),
                transient_failure_probability=0.9)
            # Scatter pinned pages through the movable zone.
            for i in range(24):
                system.mm.allocate(f"pin{i}", 4, kind=OwnerKind.PINNED)
            system.mm.allocate("app", GIB // PAGE_SIZE)
            settle(system, epochs=40)
            totals[policy] = system.daemon.stats.total_failures
        assert totals[SelectionPolicy.RANDOM] > totals[
            SelectionPolicy.REMOVABLE_FIRST]


class TestOverheadAccounting:
    def test_busy_time_tracked(self):
        system = make_system()
        settle(system)
        stats = system.daemon.stats
        assert stats.busy_s > 0
        assert system.daemon.cpu_overhead_fraction(20.0) < 0.05

    def test_wakeup_wait_accumulates(self):
        system = make_system()
        now = settle(system)
        _grow(system, "app", 2 * GIB // PAGE_SIZE, start=now)
        assert system.daemon.stats.wakeup_wait_s > 0

    def test_online_busy_pins_table3_latency(self):
        """Table 3 regression: on-lining costs 3.44 ms of daemon CPU per
        event — the Section 4.3 wake-up poll is controller wait, not
        daemon cycles, and must not leak into busy accounting."""
        system = make_system()
        now = settle(system)
        _grow(system, "app", 2 * GIB // PAGE_SIZE, start=now)
        stats = system.daemon.stats
        assert stats.online_events > 0
        assert stats.wakeup_wait_s > 0
        assert stats.busy_online_s == pytest.approx(
            stats.online_events * 3.44e-3, rel=1e-9)

    def test_offline_busy_pins_table3_latency(self):
        """Off-lining free blocks costs the measured 1.58 ms per event."""
        system = make_system()
        settle(system)
        stats = system.daemon.stats
        assert stats.offline_events > 0
        assert stats.ebusy_failures == 0 and stats.eagain_failures == 0
        assert stats.busy_offline_s == pytest.approx(
            stats.offline_events * 1.58e-3, rel=1e-9)

    def test_busy_is_sum_of_offline_and_online(self):
        system = make_system()
        now = settle(system)
        _grow(system, "app", 2 * GIB // PAGE_SIZE, start=now)
        stats = system.daemon.stats
        assert stats.busy_s == pytest.approx(
            stats.busy_offline_s + stats.busy_online_s, rel=1e-12)


class TestResilience:
    """Regressions for the daemon-loop fixes, pinned with injected faults."""

    @staticmethod
    def _top_candidate() -> int:
        """The block a fresh system's selector would try first."""
        probe = make_system()
        return probe.daemon.selector.candidates(1)[0]

    def test_offline_failures_fall_through_to_replacements(self):
        # The attempt budget used to be spent on a fixed candidate list
        # sized to the surplus, so each failure left one surplus block
        # on-lined.  Now failures draw replacement candidates until the
        # budget (not the candidate list) runs out.
        top = self._top_candidate()
        plan = FaultPlan(rules=(
            FaultRule(op="offline", error="EBUSY", target=top,
                      count=STICKY),))
        system = make_system(fault_plan=plan)
        daemon = system.daemon
        surplus = ((system.mm.free_pages - daemon.reserve_pages)
                   // system.mm.block_pages)
        assert 0 < surplus + 1 <= daemon.config.max_attempts_per_period
        daemon.monitor_once(0.0)
        assert daemon.stats.ebusy_failures >= 1
        assert daemon.stats.offline_events == surplus
        assert top not in system.hotplug.offline_blocks()

    def test_online_skips_failing_block(self):
        # _online_until used to pick min(offline) unconditionally: one
        # block whose online_pages() kept failing wedged the refill
        # forever.  Now the failure is skipped and the next block tried.
        probe = make_system()
        settle(probe)
        bad = min(probe.hotplug.offline_blocks())
        plan = FaultPlan(rules=(
            FaultRule(op="online", error="EINVAL", target=bad,
                      count=STICKY),))
        system = make_system(fault_plan=plan)
        now = settle(system)
        assert min(system.hotplug.offline_blocks()) == bad
        freed = system.daemon.emergency_online(
            needed_pages=3 * system.mm.block_pages, now_s=now)
        assert freed > 0
        assert system.daemon.stats.online_failures >= 1
        assert bad in system.hotplug.offline_blocks()
        kinds = [e.kind for e in system.daemon.event_log
                 if e.block == bad and e.time_s == now]
        assert kinds == ["online_failed"]

    def test_emergency_logs_one_event_per_block(self):
        # emergency_online used to log a single event with block=-1 no
        # matter how many blocks it restored, undercounting emergency
        # traffic in Figure-12-style analysis.
        system = make_system()
        now = settle(system)
        freed = system.daemon.emergency_online(
            needed_pages=4 * system.mm.block_pages, now_s=now)
        assert freed > 1
        emergencies = [e for e in system.daemon.event_log
                       if e.kind == "emergency"]
        assert len(emergencies) == freed
        assert all(e.block >= 0 for e in emergencies)
        onlined = {e.block for e in system.daemon.event_log
                   if e.kind == "online" and e.time_s == now}
        assert {e.block for e in emergencies} == onlined

    def test_wakeup_timeout_charges_wait_not_busy(self):
        # Table 3 invariant under faults: an injected ready-bit timeout
        # burns controller wait, never daemon CPU time.
        plan = FaultPlan(rules=(
            FaultRule(op="prepare_online", error="ETIMEDOUT",
                      extra_latency_s=4e-4, count=1),))
        system = make_system(fault_plan=plan)
        now = settle(system)
        system.daemon.emergency_online(
            needed_pages=4 * system.mm.block_pages, now_s=now)
        stats = system.daemon.stats
        assert stats.wakeup_timeouts == 1
        assert stats.online_events > 0
        assert stats.wakeup_wait_s >= 4e-4
        assert stats.busy_online_s == pytest.approx(
            stats.online_events * 3.44e-3, rel=1e-9)

    def test_quarantine_stops_burning_attempts(self):
        # A sticky-failing block is retried with backoff, then embargoed
        # for the cooldown instead of eating budget every period.
        top = self._top_candidate()
        plan = FaultPlan(rules=(
            FaultRule(op="offline", error="EBUSY", target=top,
                      count=STICKY),))
        system = make_system(fault_plan=plan)
        system.mm.allocate("app", 12 * system.mm.block_pages)
        for t in range(40):
            if 0 < t and t % 3 == 0 and system.mm.owner_pages("app"):
                system.mm.free_pages_of("app", system.mm.block_pages)
            system.step(float(t))
        daemon = system.daemon
        assert daemon.stats.quarantines >= 1
        attempts_on_top = [e for e in daemon.event_log
                           if e.kind == "ebusy" and e.block == top]
        assert len(attempts_on_top) == daemon.config.quarantine_failures
        assert any(e.kind == "quarantine" and e.block == top
                   for e in daemon.event_log)

    def test_no_block_offlined_and_onlined_in_same_monitor_pass(self):
        # Hysteresis invariant under a storm: one monitor_once never
        # both off-lines and on-lines (thrashing would show up as both
        # event kinds at one timestamp).
        plan = storm_plan(17, intensity=6.0, duration_s=60.0, num_blocks=64)
        system = make_system(fault_plan=plan,
                             transient_failure_probability=0.9)
        app_pages = 0
        for t in range(60):
            try:
                if t % 6 < 3:
                    system.mm.allocate("app", 2 * system.mm.block_pages)
                    app_pages += 2 * system.mm.block_pages
                elif app_pages:
                    system.mm.free_pages_of("app",
                                            2 * system.mm.block_pages)
                    app_pages -= 2 * system.mm.block_pages
            except AllocationError:
                system.daemon.emergency_online(2 * system.mm.block_pages,
                                               now_s=t + 0.5)
            system.step(float(t))
        kinds_by_time = collections.defaultdict(set)
        for event in system.daemon.event_log:
            kinds_by_time[event.time_s].add(event.kind)
        assert any("offline" in k for k in kinds_by_time.values())
        assert any("online" in k for k in kinds_by_time.values())
        for kinds in kinds_by_time.values():
            assert not ({"offline"} & kinds and {"online"} & kinds)


class TestEventLog:
    def test_events_recorded_in_time_order(self):
        system = make_system()
        settle(system, epochs=15)
        log = list(system.daemon.event_log)
        assert log, "idle settling should off-line blocks"
        times = [e.time_s for e in log]
        assert times == sorted(times)
        assert all(e.kind == "offline" for e in log)

    def test_online_and_emergency_events(self):
        system = make_system()
        now = settle(system)
        system.daemon.emergency_online(needed_pages=32768, now_s=now)
        kinds = {e.kind for e in system.daemon.event_log}
        assert "online" in kinds
        assert "emergency" in kinds

    def test_log_is_bounded(self):
        from repro.core.daemon import DaemonEvent

        system = make_system()
        for i in range(25_000):
            system.daemon.event_log.append(DaemonEvent(float(i), "offline", 0))
        assert len(system.daemon.event_log) == 20_000
