"""The PowerPolicy plug-in layer: registry, adapter, schema, tournament."""

import dataclasses
import subprocess
import sys

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import MemoryOrganization
from repro.errors import ConfigurationError
from repro.policies import (
    DEFAULT_POLICY,
    PolicyRow,
    PowerPolicy,
    analytical_policy_names,
    create_estimator,
    create_policy,
    get_active_policy,
    policy_names,
    policy_scope,
    policy_spec,
    render_rows,
)
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads.registry import profile_by_name


def small_system(policy=None, **kwargs) -> GreenDIMMSystem:
    org = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                             dimms_per_channel=1, ranks_per_dimm=2)
    defaults = dict(organization=org,
                    config=GreenDIMMConfig(block_bytes=64 * MIB),
                    kernel_boot_bytes=256 * MIB,
                    transient_failure_probability=0.0,
                    policy=policy, seed=3)
    defaults.update(kwargs)
    return GreenDIMMSystem(**defaults)


def short_profile(name="429.mcf", duration_s=60.0):
    return dataclasses.replace(profile_by_name(name), duration_s=duration_s)


class TestRegistry:
    def test_canonical_order_and_default(self):
        names = policy_names()
        assert names[:4] == ("srf_only", "ramzzz", "pasr", "greendimm")
        assert DEFAULT_POLICY in names
        assert analytical_policy_names() == ("srf_only", "ramzzz", "pasr")

    def test_experiment_policies_tuple_derives_from_registry(self):
        from repro.sim.experiment import POLICIES

        assert POLICIES == ("srf_only", "ramzzz", "pasr", "greendimm")

    def test_unknown_policy_rejected_with_catalog(self):
        with pytest.raises(ConfigurationError, match="srf_only"):
            policy_spec("bogus")
        with pytest.raises(ConfigurationError):
            create_estimator("bogus")

    def test_no_estimator_for_kernel_only_policy(self):
        with pytest.raises(ConfigurationError, match="no closed-form"):
            create_estimator("rank-migration")

    def test_registration_is_lazy(self):
        # Importing the registry (or the experiment module) must not
        # instantiate any policy or estimator; a fresh interpreter
        # proves it without depending on this process's import state.
        code = (
            "import sys\n"
            "import repro.sim.experiment\n"
            "import repro.policies.registry\n"
            "assert repro.sim.experiment.POLICIES\n"
            "banned = ['repro.policies.greendimm', 'repro.policies.srf',\n"
            "          'repro.policies.pasr', 'repro.policies.ramzzz',\n"
            "          'repro.policies.migration',\n"
            "          'repro.policies.demotion']\n"
            "loaded = [m for m in banned if m in sys.modules]\n"
            "assert not loaded, loaded\n")
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_every_policy_satisfies_the_protocol(self):
        system = small_system()
        for name in policy_names():
            policy = create_policy(name, system)
            assert isinstance(policy, PowerPolicy)
            assert policy.name == name


class TestGreenDIMMAdapter:
    def test_stats_surface_is_the_daemons(self):
        system = small_system(policy="greendimm")
        assert system.policy.stats is system.daemon.stats
        system.policy.reset_stats()
        assert system.policy.stats is system.daemon.stats

    def test_monitor_timer_wraps_the_daemon_field(self):
        system = small_system(policy="greendimm")
        system.policy.monitor_timer = 1.5
        assert system.daemon._since_monitor_s == 1.5
        assert system.policy.monitor_timer == 1.5

    def test_adapter_adds_no_power_terms(self):
        system = small_system(policy="greendimm")
        assert system.policy.extra_power_w() == 0.0
        assert system.policy.runtime_overhead_fraction() == 0.0


class TestPolicySelection:
    def test_explicit_name_wins(self):
        system = small_system(policy="pasr")
        assert system.policy_name == "pasr"
        assert system.policy.name == "pasr"

    def test_ambient_context_reaches_new_systems(self):
        with policy_scope("srf_only"):
            assert get_active_policy() == "srf_only"
            system = small_system()
            assert system.policy_name == "srf_only"
        assert get_active_policy() is None
        assert small_system().policy_name == DEFAULT_POLICY

    def test_job_config_hash_keys_on_policy(self):
        from repro.runner import ExperimentJob

        plain = ExperimentJob("tab1", fast=True)
        tagged = ExperimentJob("tab1", fast=True, policy="pasr")
        assert plain.config_hash() != tagged.config_hash()
        assert plain.describe() == "tab1 (fast)"
        assert tagged.describe() == "tab1 (fast, policy=pasr)"


class TestInKernelPolicies:
    @pytest.mark.parametrize("name", policy_names())
    def test_short_run_produces_sane_power(self, name):
        system = small_system(policy=name)
        simulator = ServerSimulator(system, seed=5)
        result = simulator.run_workload(short_profile(), epoch_s=1.0)
        assert result.samples
        assert result.dram_energy_j > 0.0
        assert 0.0 <= system.policy.dpd_fraction() <= 1.0
        for sample in result.samples:
            assert 0.0 <= sample.dpd_fraction <= 1.0

    @pytest.mark.parametrize("name", policy_names())
    def test_fast_forward_matches_per_epoch(self, name):
        def energy(fast_forward):
            system = small_system(policy=name)
            simulator = ServerSimulator(system, seed=5,
                                        fast_forward=fast_forward)
            result = simulator.run_workload(short_profile(), epoch_s=1.0)
            return (result.dram_energy_j, result.baseline_dram_energy_j,
                    [s.dpd_fraction for s in result.samples])

        assert energy(True) == energy(False)

    def test_rank_policies_save_energy_when_ranks_idle(self):
        for name in ("srf_only", "ramzzz", "pasr"):
            system = small_system(policy=name)
            simulator = ServerSimulator(system, seed=5)
            result = simulator.run_workload(short_profile(), epoch_s=1.0)
            assert result.dram_energy_saving > 0.0, name


class TestSchema:
    def test_round_trip_with_extras(self):
        row = PolicyRow(policy="pasr", scenario="steady", runtime_s=10.0,
                        dram_energy_j=5.0, baseline_dram_energy_j=8.0,
                        dram_energy_saving=0.375,
                        extras={"mean_dpd_fraction": 0.5})
        back = PolicyRow.from_mapping(row.as_dict())
        assert back == dataclasses.replace(row, extras=dict(row.extras))

    def test_policy_result_and_estimate_share_the_schema(self):
        from repro.baselines.srf_only import SelfRefreshOnlyPolicy
        from repro.sim.experiment import PolicyResult

        result = PolicyResult(policy="pasr", interleaved=False,
                              runtime_s=60.0, dram_power_w=2.0,
                              dram_energy_j=120.0, system_energy_j=480.0)
        row = result.to_row()
        assert (row.policy, row.scenario) == ("pasr", "no-intlv")
        assert row.dram_energy_j == 120.0

        org = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                 dimms_per_channel=1, ranks_per_dimm=2)
        estimate = SelfRefreshOnlyPolicy().estimate(
            profile_by_name("429.mcf"), org, False, 1)
        erow = estimate.to_row(scenario="fig9")
        assert erow.scenario == "fig9"
        assert "runtime_factor" in erow.extras
        assert set(row.as_dict()) >= {"policy", "scenario", "dram_energy_j"}

    def test_render_rows_is_a_table(self):
        table = render_rows("t", [PolicyRow(policy="p", scenario="s")])
        assert "policy" in table.render()


class TestTournament:
    def test_fast_matrix_and_ranking_consistency(self):
        from repro.experiments.tournament import (
            analytical_ranking,
            kernel_ranking,
            run,
        )

        result = run(fast=True, policies=("srf_only", "ramzzz", "pasr",
                                          "greendimm"),
                     scenarios=("steady",))
        assert result.measured["cells"] == 4
        assert result.measured["ranking_consistent"] is True
        ranking = analytical_ranking()
        assert set(ranking) == set(analytical_policy_names())
        rows = [PolicyRow(policy="srf_only", scenario="steady",
                          dram_energy_saving=0.1),
                PolicyRow(policy="pasr", scenario="steady",
                          dram_energy_saving=0.3)]
        assert kernel_ranking(rows) == ["pasr", "srf_only"]

    def test_unknown_names_rejected(self):
        from repro.experiments.tournament import run

        with pytest.raises(ConfigurationError):
            run(fast=True, policies=("bogus",))
        with pytest.raises(ConfigurationError):
            run(fast=True, scenarios=("bogus",))

    def test_parallel_matches_serial(self):
        from repro.experiments.tournament import run

        kwargs = dict(fast=True, policies=("greendimm", "pasr"),
                      scenarios=("steady",))
        assert (run(workers=1, **kwargs).measured
                == run(workers=2, **kwargs).measured)

    def test_cli_smoke(self, tmp_path):
        from repro.cli import main

        metrics = tmp_path / "tournament.jsonl"
        report = tmp_path / "tournament.md"
        code = main(["tournament", "--fast",
                     "--policies", "greendimm", "--policies", "pasr",
                     "--scenarios", "steady",
                     "--metrics", str(metrics), "--report", str(report)])
        assert code == 0
        assert metrics.exists()
        text = report.read_text()
        assert "Policy tournament" in text
        assert "greendimm" in text


class TestGoldenDivergence:
    def test_golden_scenarios_catch_a_diverging_policy(self):
        # The CI must-fail step in script form: replaying a golden
        # scenario under any non-GreenDIMM policy must change the
        # canonical float stream, proving the golden suite would catch
        # an adapter that silently routed to the wrong policy.
        import json
        import pathlib

        from tests.kernel_scenarios import SCENARIOS

        golden = json.loads(
            (pathlib.Path(__file__).parent / "golden"
             / "kernel_golden.json").read_text())
        name = "workload_nochurn"
        with policy_scope("pasr"):
            diverged = SCENARIOS[name](True)
        assert diverged != golden[name]["fast"]
