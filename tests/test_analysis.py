"""Report rendering and paper-reference data."""

import pytest

from repro.analysis import PAPER, Table, fmt_pct, fmt_w, render_series
from repro.errors import ConfigurationError


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Demo", ["app", "value"])
        table.add_row("mcf", 1.23)
        table.add_row("gcc", 4.56)
        text = table.render()
        assert "== Demo ==" in text
        assert "mcf" in text and "4.56" in text

    def test_row_width_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row("only-one")

    def test_columns_aligned(self):
        table = Table("Demo", ["name", "v"])
        table.add_row("a-very-long-name", 1)
        table.add_row("x", 2)
        lines = table.render().splitlines()
        assert lines[1].index("v") == lines[3].index("1")


class TestSeries:
    def test_render_series(self):
        text = render_series("S", ["a", "bb"], [1.0, 2.0])
        assert "== S ==" in text
        assert text.count("#") > 0

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_series("S", ["a"], [1.0, 2.0])

    def test_zero_series(self):
        text = render_series("S", ["a"], [0.0])
        assert "0.00" in text


class TestFormatting:
    def test_fmt_pct(self):
        assert fmt_pct(0.364) == "36.4%"
        assert fmt_pct(0.5, digits=0) == "50%"

    def test_fmt_w(self):
        assert fmt_w(25.84) == "25.8W"


class TestPaperData:
    def test_every_experiment_documented(self):
        for key in ("fig1", "tab1", "fig2", "fig3", "tab2", "tab3", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                    "fig13"):
            assert key in PAPER
            assert "description" in PAPER[key]

    def test_headline_numbers(self):
        assert PAPER["fig13"]["dram_reduction_1tb"] == 0.36
        assert PAPER["fig13"]["system_reduction_1tb"] == 0.20
        assert PAPER["fig13"]["ksm_dram_reduction_1tb"] == 0.55
        assert PAPER["fig12"]["mean_offline_blocks"] == 116

    def test_table2_consistency(self):
        events = PAPER["tab2"]["offline_events"]
        for app, by_size in events.items():
            assert by_size[128] >= by_size[256] >= by_size[512]
