"""Buddy allocator: correctness and invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.os.buddy import MAX_ORDER, BuddyAllocator

PAGES = 1 << 14  # 16K pages = 64MiB


def make_allocator(pages: int = PAGES) -> BuddyAllocator:
    return BuddyAllocator(start_pfn=0, total_pages=pages)


class TestBasics:
    def test_initial_free_count(self):
        buddy = make_allocator()
        assert buddy.free_pages == PAGES

    def test_initially_all_max_order(self):
        buddy = make_allocator()
        assert len(buddy.free_blocks(MAX_ORDER)) == PAGES >> MAX_ORDER
        for order in range(MAX_ORDER):
            assert not buddy.free_blocks(order)

    def test_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(start_pfn=3, total_pages=PAGES)
        with pytest.raises(ConfigurationError):
            BuddyAllocator(start_pfn=0, total_pages=PAGES + 1)

    def test_alloc_prefers_lowest_address(self):
        buddy = make_allocator()
        assert buddy.alloc_block(0) == 0
        assert buddy.alloc_block(0) == 1

    def test_alloc_block_alignment(self):
        buddy = make_allocator()
        for order in (0, 3, 7, MAX_ORDER):
            pfn = buddy.alloc_block(order)
            assert pfn % (1 << order) == 0

    def test_alloc_out_of_range_order(self):
        buddy = make_allocator()
        with pytest.raises(AllocationError):
            buddy.alloc_block(MAX_ORDER + 1)

    def test_exhaustion(self):
        buddy = make_allocator(1 << MAX_ORDER)
        buddy.alloc_block(MAX_ORDER)
        with pytest.raises(AllocationError):
            buddy.alloc_block(0)


class TestFreeAndCoalesce:
    def test_free_restores_count(self):
        buddy = make_allocator()
        pfn = buddy.alloc_block(4)
        assert buddy.free_pages == PAGES - 16
        buddy.free_block(pfn, 4)
        assert buddy.free_pages == PAGES

    def test_buddies_coalesce_to_max_order(self):
        buddy = make_allocator()
        pfns = [buddy.alloc_block(0) for _ in range(1 << MAX_ORDER)]
        for pfn in pfns:
            buddy.free_block(pfn, 0)
        assert len(buddy.free_blocks(MAX_ORDER)) == PAGES >> MAX_ORDER
        for order in range(MAX_ORDER):
            assert not buddy.free_blocks(order)

    def test_double_free_rejected(self):
        buddy = make_allocator()
        pfn = buddy.alloc_block(2)
        buddy.free_block(pfn, 2)
        with pytest.raises(AllocationError):
            buddy.free_block(pfn, 2)

    def test_free_with_wrong_order_rejected(self):
        buddy = make_allocator()
        pfn = buddy.alloc_block(2)
        with pytest.raises(AllocationError):
            buddy.free_block(pfn, 3)


class TestAllocPages:
    def test_exact_total(self):
        buddy = make_allocator()
        blocks = buddy.alloc_pages(1000)
        assert sum(1 << order for _pfn, order in blocks) == 1000

    def test_all_or_nothing(self):
        buddy = make_allocator(1 << MAX_ORDER)
        with pytest.raises(AllocationError):
            buddy.alloc_pages((1 << MAX_ORDER) + 1)
        assert buddy.free_pages == 1 << MAX_ORDER  # rolled back

    def test_rejects_zero(self):
        with pytest.raises(AllocationError):
            make_allocator().alloc_pages(0)


class TestIsolation:
    def test_isolated_range_not_allocatable(self):
        buddy = make_allocator()
        half = PAGES // 2
        removed = buddy.isolate_range(half, half)
        assert buddy.free_pages == half
        # Everything allocated from now on is below the isolated range.
        blocks = buddy.alloc_pages(half)
        assert all(pfn < half for pfn, _order in blocks)
        assert sum(1 << o for _p, o in removed) == half

    def test_undo_isolation_restores(self):
        buddy = make_allocator()
        removed = buddy.isolate_range(0, PAGES)
        assert buddy.free_pages == 0
        buddy.undo_isolation(removed)
        assert buddy.free_pages == PAGES

    def test_isolation_skips_allocated(self):
        buddy = make_allocator()
        buddy.alloc_block(MAX_ORDER)  # pfn 0
        removed = buddy.isolate_range(0, 2 << MAX_ORDER)
        assert sum(1 << o for _p, o in removed) == 1 << MAX_ORDER

    def test_misaligned_isolation_rejected(self):
        with pytest.raises(ConfigurationError):
            make_allocator().isolate_range(1, 100)

    def test_free_pages_in_range(self):
        buddy = make_allocator()
        buddy.alloc_pages(100)
        counted = buddy.free_pages_in_range(0, PAGES)
        assert counted == PAGES - 100

    def test_add_range(self):
        buddy = make_allocator()
        removed = buddy.isolate_range(0, 1 << MAX_ORDER)
        assert removed
        buddy.add_range(0, 1 << MAX_ORDER)
        assert buddy.free_pages == PAGES


class TestSplitAndRemove:
    def test_split_allocated(self):
        buddy = make_allocator()
        pfn = buddy.alloc_block(3)
        buddy.split_allocated(pfn, 3)
        buddy.free_block(pfn, 2)
        buddy.free_block(pfn + 4, 2)
        assert buddy.free_pages == PAGES

    def test_split_order0_rejected(self):
        buddy = make_allocator()
        pfn = buddy.alloc_block(0)
        with pytest.raises(AllocationError):
            buddy.split_allocated(pfn, 0)

    def test_remove_allocated(self):
        buddy = make_allocator()
        pfn = buddy.alloc_block(5)
        buddy.remove_allocated(pfn, 5)
        with pytest.raises(AllocationError):
            buddy.free_block(pfn, 5)

    def test_remove_mismatched_rejected(self):
        buddy = make_allocator()
        pfn = buddy.alloc_block(5)
        with pytest.raises(AllocationError):
            buddy.remove_allocated(pfn, 4)


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=1, max_value=2000),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_conservation_under_alloc_free(self, sizes):
        """Total pages are conserved by any alloc/free sequence."""
        buddy = make_allocator()
        held = []
        for size in sizes:
            try:
                held.append(buddy.alloc_pages(size))
            except AllocationError:
                break
        allocated = sum(1 << o for blocks in held for _p, o in blocks)
        assert buddy.free_pages == PAGES - allocated
        for blocks in held:
            for pfn, order in blocks:
                buddy.free_block(pfn, order)
        assert buddy.free_pages == PAGES
        assert len(buddy.free_blocks(MAX_ORDER)) == PAGES >> MAX_ORDER

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_no_overlapping_allocations(self, data):
        """No two live extents ever overlap."""
        buddy = make_allocator(1 << 12)
        rng = random.Random(data.draw(st.integers(0, 2 ** 16)))
        live = {}
        for _step in range(60):
            if rng.random() < 0.6 or not live:
                order = rng.randrange(0, 6)
                try:
                    pfn = buddy.alloc_block(order)
                except AllocationError:
                    continue
                live[pfn] = order
            else:
                pfn = rng.choice(list(live))
                buddy.free_block(pfn, live.pop(pfn))
            covered = set()
            for pfn, order in live.items():
                span = set(range(pfn, pfn + (1 << order)))
                assert not span & covered
                covered |= span
