"""Policy-matrix experiments (Figures 9/10 machinery)."""

import pytest

from repro.sim.experiment import POLICIES, evaluate_policies, normalized
from repro.workloads import profile_by_name


@pytest.fixture(scope="module")
def gcc_results():
    return evaluate_policies(profile_by_name("403.gcc"), n_copies=1, seed=21)


@pytest.fixture(scope="module")
def lbm_results():
    return evaluate_policies(profile_by_name("470.lbm"), n_copies=1, seed=22)


class TestMatrixShape:
    def test_all_cells_present(self, gcc_results):
        assert set(gcc_results) == {(p, i) for p in POLICIES
                                    for i in (True, False)}

    def test_normalization_reference_is_one(self, gcc_results):
        norm = normalized(gcc_results)
        assert norm[("srf_only", False)] == pytest.approx(1.0)

    def test_energies_positive(self, gcc_results):
        for result in gcc_results.values():
            assert result.dram_energy_j > 0
            assert result.system_energy_j > result.dram_energy_j


class TestPaperShapes:
    def test_interleaving_penalty_for_cpu_bound(self, gcc_results):
        """Fig 9: interleaving raises gcc's DRAM energy (paper ~1.4x)."""
        norm = normalized(gcc_results)
        assert norm[("srf_only", True)] > 1.1

    def test_interleaving_benefit_for_memory_bound(self, lbm_results):
        """Fig 9: interleaving cuts lbm's DRAM energy (paper ~0.62x)."""
        norm = normalized(lbm_results)
        assert norm[("srf_only", True)] < 0.8

    def test_greendimm_wins_every_column(self, gcc_results, lbm_results):
        for results in (gcc_results, lbm_results):
            norm = normalized(results)
            for interleaved in (True, False):
                for policy in ("srf_only", "ramzzz", "pasr"):
                    assert (norm[("greendimm", interleaved)]
                            <= norm[(policy, interleaved)] + 1e-9)

    def test_greendimm_beats_rank_bank_by_tens_of_pp(self, gcc_results):
        """Fig 9: ~49pp better than RAMZzz/PASR when interleaved."""
        norm = normalized(gcc_results)
        gap = norm[("ramzzz", True)] - norm[("greendimm", True)]
        assert gap > 0.25

    def test_greendimm_reduces_vs_reference(self, gcc_results):
        norm = normalized(gcc_results)
        assert norm[("greendimm", True)] < 0.95  # >= the paper's 9% floor

    def test_system_energy_shape(self, gcc_results, lbm_results):
        # Memory-intensive workloads show a clear system-energy win; for
        # CPU-bound gcc the DRAM saving and the daemon overhead nearly
        # cancel at system level (the paper's per-app system numbers for
        # gcc are similarly flat).
        lbm_norm = normalized(lbm_results, "system_energy_j")
        # Strong reduction vs the paper's w/o-intlv reference (paper: -26%
        # mean for SPEC; memory-intensive apps carry most of it).
        assert lbm_norm[("greendimm", True)] < 0.75
        assert (lbm_norm[("greendimm", True)]
                <= lbm_norm[("srf_only", True)] * 1.01)
        gcc_norm = normalized(gcc_results, "system_energy_j")
        assert (gcc_norm[("greendimm", True)]
                <= gcc_norm[("srf_only", True)] * 1.01)

    def test_greendimm_overhead_within_bounds(self, gcc_results):
        result = gcc_results[("greendimm", True)]
        assert 0.0 <= result.overhead_fraction <= 0.035
