"""The quiescence fast-forward layer's bit-for-bit contract.

Every equivalence test runs the same seeded scenario twice — fast path
on and off — and demands *exact* equality of the sample stream, the
accumulated energies, and the daemon/injector statistics.  Approximate
comparisons would defeat the point: the layer's promise is that callers
cannot tell which path executed.
"""

import math

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import DDR4_4GB_X8, MemoryOrganization
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule, storm_plan
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads import profile_by_name
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.trace import FootprintTrace


def small_system(**kwargs):
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    defaults = dict(organization=organization,
                    config=GreenDIMMConfig(block_bytes=128 * MIB),
                    kernel_boot_bytes=512 * MIB,
                    transient_failure_probability=0.5, seed=7)
    defaults.update(kwargs)
    return GreenDIMMSystem(**defaults)


def workload_pair(churn, **system_kwargs):
    """One workload run per path; returns (slow, fast) as (result, sim)."""
    runs = []
    for fast in (False, True):
        sim = ServerSimulator(small_system(**system_kwargs), seed=5,
                              fast_forward=fast)
        result = sim.run_workload(profile_by_name("429.mcf"), epoch_s=1.0,
                                  pinned_churn=churn)
        runs.append((result, sim))
    return runs


def assert_workload_identical(slow, fast):
    result_a, sim_a = slow
    result_b, sim_b = fast
    assert result_a.samples == result_b.samples
    assert result_a.dram_energy_j == result_b.dram_energy_j
    assert result_a.baseline_dram_energy_j == result_b.baseline_dram_energy_j
    assert result_a.overhead_fraction == result_b.overhead_fraction
    assert result_a.swap_shortfall_pages == result_b.swap_shortfall_pages
    assert sim_a.system.daemon.stats == sim_b.system.daemon.stats
    assert (list(sim_a.system.daemon.event_log)
            == list(sim_b.system.daemon.event_log))


class TestWorkloadEquivalence:
    def test_without_churn_skips_most_epochs(self):
        slow, fast = workload_pair(churn=False)
        assert_workload_identical(slow, fast)
        stats = fast[1].ff_stats
        assert stats.epochs_fast_forwarded > stats.epochs_stepped
        assert stats.windows > 0
        assert slow[1].ff_stats.epochs_fast_forwarded == 0

    def test_with_churn_still_identical(self):
        # Churn runs for real inside windows (the RNG stream must not
        # desync); every perturbation closes the window on the slow path.
        slow, fast = workload_pair(churn=True)
        assert_workload_identical(slow, fast)
        assert fast[1].ff_stats.epochs_fast_forwarded > 0

    def test_tracer_enabled_mid_window_exits_cleanly(self):
        # Regression: the churn-path window exit reads ``skipped_before``
        # whenever the tracer is enabled at *exit* — if the binding only
        # happened under a tracer-enabled *entry*, toggling tracing on
        # mid-run (here: from inside the first window's churn hook)
        # raised NameError.
        from repro.obs.tracer import GLOBAL_TRACER

        sim = ServerSimulator(small_system(), seed=5, fast_forward=True)
        original = sim._pinned_churn

        def churn_then_enable(t, epoch_s):
            result = original(t, epoch_s)
            if sim.ff_stats.windows > 0 and not GLOBAL_TRACER.enabled:
                GLOBAL_TRACER.enable()
            return result

        sim._pinned_churn = churn_then_enable
        try:
            result = sim.run_workload(profile_by_name("429.mcf"),
                                      epoch_s=1.0, pinned_churn=True)
            assert GLOBAL_TRACER.enabled  # the toggle actually fired
            exits = [e for e in GLOBAL_TRACER.snapshot()["events"]
                     if e["kind"] == "ff.exit"]
        finally:
            GLOBAL_TRACER.disable()
            GLOBAL_TRACER.drain()
        assert result.samples
        assert sim.ff_stats.windows > 0
        # The first window entered untraced, so its exit event (emitted
        # traced) proves the mid-window toggle path survived.
        assert exits

    def test_energy_convention_scales_with_overhead(self):
        (result, _sim), _ = workload_pair(churn=False)
        raw = sum(s.dram_power_w for s in result.samples) * 1.0
        assert result.dram_energy_j == pytest.approx(
            raw * (1.0 + result.overhead_fraction))


class TestVMTraceEquivalence:
    def test_trace_replay_identical(self):
        organization = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                          dimms_per_channel=2,
                                          ranks_per_dimm=1)
        trace = AzureTraceGenerator(
            capacity_bytes=organization.total_capacity_bytes - 3 * GIB,
            physical_cores=16, duration_s=4 * 3600.0, seed=7).generate()
        runs = []
        for fast in (False, True):
            system = GreenDIMMSystem(
                organization=organization,
                config=GreenDIMMConfig(block_bytes=512 * MIB),
                kernel_boot_bytes=2 * GIB,
                transient_failure_probability=0.5, seed=7)
            sim = ServerSimulator(system, seed=5, fast_forward=fast)
            result = sim.run_vm_trace(trace, epoch_s=5.0, pinned_churn=False)
            runs.append((result, sim))
        (a, _), (b, sim_b) = runs
        assert a.samples == b.samples
        assert a.dram_energy_j == b.dram_energy_j
        assert a.baseline_dram_energy_j == b.baseline_dram_energy_j
        assert a.emergency_onlines == b.emergency_onlines
        assert sim_b.ff_stats.epochs_fast_forwarded > 0

    def test_churned_trace_falls_back_to_stepping(self):
        # Default churn (0.3/s) at a 5 s epoch expects >= 1 arrival every
        # epoch: no window can form, so the fast path bows out entirely.
        organization = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                          dimms_per_channel=2,
                                          ranks_per_dimm=1)
        trace = AzureTraceGenerator(
            capacity_bytes=organization.total_capacity_bytes - 3 * GIB,
            physical_cores=16, duration_s=1800.0, seed=7).generate()
        sim = ServerSimulator(small_system(organization=organization,
                                           kernel_boot_bytes=2 * GIB),
                              seed=5, fast_forward=True)
        result = sim.run_vm_trace(trace, epoch_s=5.0)
        assert result.samples
        assert sim.ff_stats.epochs_fast_forwarded == 0
        assert sim.ff_stats.epochs_stepped == len(result.samples)


class TestFaultStormEquivalence:
    def test_storm_run_identical_and_fast_forwards_after(self):
        plan = storm_plan(303, intensity=4.0, duration_s=120.0,
                          num_blocks=64)
        runs = []
        for fast in (False, True):
            sim = ServerSimulator(small_system(fault_plan=plan), seed=5,
                                  fast_forward=fast)
            result = sim.run_workload(profile_by_name("429.mcf"),
                                      epoch_s=1.0, pinned_churn=False)
            runs.append((result, sim))
        (a, sim_a), (b, sim_b) = runs
        assert a.samples == b.samples
        assert a.dram_energy_j == b.dram_energy_j
        assert a.overhead_fraction == b.overhead_fraction
        assert sim_a.system.daemon.stats == sim_b.system.daemon.stats
        inj_a = sim_a.system.fault_injector
        inj_b = sim_b.system.fault_injector
        assert inj_a.stats.as_dict() == inj_b.stats.as_dict()
        assert inj_a.events == inj_b.events
        assert inj_b.stats.total > 0
        # Rule windows suppress fast-forwarding; after the storm the
        # remaining quiescent tail must still be skipped.
        assert sim_b.ff_stats.epochs_fast_forwarded > 0
        assert sim_b.ff_stats.epochs_stepped > 0


class TestQuiescentUntil:
    def plan(self):
        return FaultPlan(name="t", seed=1, rules=(
            FaultRule(op="offline", error="EBUSY", start_s=50.0, end_s=60.0),
            FaultRule(op="online", error="EINVAL", start_s=200.0,
                      end_s=210.0, count=2),
        ))

    def test_before_any_rule_bounds_at_first_start(self):
        injector = FaultInjector(self.plan())
        assert injector.quiescent_until(0.0) == 50.0

    def test_inside_live_window_is_not_quiescent(self):
        injector = FaultInjector(self.plan())
        assert injector.quiescent_until(55.0) == 55.0

    def test_between_windows_bounds_at_next_start(self):
        injector = FaultInjector(self.plan())
        assert injector.quiescent_until(100.0) == 200.0

    def test_exhausted_rules_are_ignored(self):
        injector = FaultInjector(self.plan())
        injector.advance(55.0)
        injector.should_fail("offline", target=3)  # consumes rule 1
        assert injector.quiescent_until(55.0) == 200.0

    def test_all_past_means_quiescent_forever(self):
        injector = FaultInjector(self.plan())
        assert injector.quiescent_until(500.0) == math.inf


class TestConstantUntil:
    def trace(self):
        return FootprintTrace.of([(0.0, 100), (10.0, 100), (20.0, 200),
                                  (30.0, 200), (40.0, 200), (50.0, 300)])

    def test_flat_run_reports_its_last_point(self):
        assert self.trace().constant_until(0.0) == 10.0
        assert self.trace().constant_until(31.0) == 40.0

    def test_ramp_reports_no_skip(self):
        assert self.trace().constant_until(15.0) == 15.0
        assert self.trace().constant_until(10.0) == 10.0

    def test_beyond_the_end_is_constant_forever(self):
        assert self.trace().constant_until(50.0) == math.inf
        assert self.trace().constant_until(99.0) == math.inf

    def test_bound_value_matches_query_value(self):
        trace = self.trace()
        for t in (0.0, 3.0, 25.0, 31.0, 47.0):
            bound = trace.constant_until(t)
            if bound <= t or math.isinf(bound):
                continue
            assert trace.at(bound) == trace.at(t)
            assert trace.at((t + bound) / 2) == trace.at(t)


class TestPowerCacheCounters:
    def test_hits_accumulate_on_repeated_operating_points(self):
        system = small_system()
        first = system.dram_power(bandwidth_bytes_per_s=1e9,
                                  active_residency=0.05)
        again = system.dram_power(bandwidth_bytes_per_s=1e9,
                                  active_residency=0.05)
        assert first == again
        stats = system.power_cache_stats
        assert stats.misses >= 1
        assert stats.hits >= 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_dpd_state_is_part_of_the_key(self):
        system = small_system()
        gated = system.dram_power(bandwidth_bytes_per_s=1e9)
        baseline = system.baseline_dram_power(bandwidth_bytes_per_s=1e9)
        # Nothing is gated yet, so both project to dpd_fraction 0.0 and
        # the second call must be a cache hit, not a recomputation.
        assert gated == baseline
        assert system.power_cache_stats.hits >= 1


class TestIncrementalCounters:
    def test_owner_pages_tracks_partial_frees(self):
        system = small_system()
        mm = system.mm
        mm.allocate("a", 5000)
        mm.allocate("b", 3000)
        mm.free_pages_of("a", 1200)
        mm.free_all("b")
        for owner in ("a", "b", "kernel"):
            scanned = sum(e.pages for e in mm.extents_of(owner))
            assert mm.owner_pages(owner) == scanned
        assert mm.owner_pages("a") == 3800
        assert mm.owner_pages("b") == 0

    def test_offline_accounting_matches_state_scan(self):
        sim = ServerSimulator(small_system(), seed=5, fast_forward=True)
        sim.run_workload(profile_by_name("429.mcf"), epoch_s=1.0,
                         pinned_churn=False)
        hotplug = sim.system.hotplug
        from repro.os.hotplug import MemoryBlockState
        scanned = [i for i, s in enumerate(hotplug.states)
                   if s is MemoryBlockState.OFFLINE]
        assert hotplug.offline_blocks() == scanned
        assert hotplug.offline_count == len(scanned)
        assert hotplug.offline_count > 0
