"""DDR4 timing parameters."""

import pytest

from repro.dram.timing import DDR4Timing, DDR4_2133, DDR4_2133_8GB
from repro.errors import ConfigurationError


class TestPaperLatencies:
    """The two wake-up figures Section 2.2 quotes."""

    def test_powerdown_exit_is_18ns(self):
        assert DDR4_2133.txp_ns == 18.0

    def test_selfrefresh_exit_is_768ns(self):
        assert DDR4_2133.txs_ns == 768.0


class TestDerived:
    def test_data_rate(self):
        assert DDR4_2133.data_rate_mtps == pytest.approx(2133.33, rel=1e-3)

    def test_channel_bandwidth_about_17gb(self):
        bw = DDR4_2133.channel_peak_bandwidth_bytes_per_s
        assert 16e9 < bw < 18e9

    def test_burst_duration_four_clocks(self):
        assert DDR4_2133.burst_duration_ns == pytest.approx(4 * 0.9375)

    def test_row_cycle(self):
        assert DDR4_2133.row_cycle_ns == pytest.approx(
            DDR4_2133.tras_ns + DDR4_2133.trp_ns)

    def test_random_access_latency_reasonable(self):
        lat = DDR4_2133.random_access_latency_ns
        assert 25 < lat < 50

    def test_refresh_duty_cycle(self):
        assert DDR4_2133.refresh_duty_cycle == pytest.approx(260 / 7800)
        assert DDR4_2133_8GB.refresh_duty_cycle == pytest.approx(350 / 7800)

    def test_ns_conversion(self):
        assert DDR4_2133.ns(18.0) == pytest.approx(18e-9)


class TestValidation:
    def test_rejects_zero_clock(self):
        with pytest.raises(ConfigurationError):
            DDR4Timing(name="bad", tck_ns=0.0, cl_ns=14, trcd_ns=14,
                       trp_ns=14, tras_ns=33, trfc_ns=260)

    def test_rejects_selfrefresh_faster_than_powerdown(self):
        with pytest.raises(ConfigurationError):
            DDR4Timing(name="bad", tck_ns=0.9375, cl_ns=14, trcd_ns=14,
                       trp_ns=14, tras_ns=33, trfc_ns=260,
                       txp_ns=100.0, txs_ns=50.0)
