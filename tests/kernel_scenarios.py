"""Fixed-seed simulator scenarios shared by the golden-equivalence suite.

The kernel refactor's contract is that rebuilding the run loops on top
of :mod:`repro.sim.kernel` changes *nothing observable*: the
:class:`~repro.sim.server.EpochSample` stream, the accumulated energies,
the daemon/hot-plug statistics, and the fast-forward accounting must all
be bit-for-bit what the hand-rolled loops produced.  This module defines
the scenario matrix (workload / vm-trace / mix, churn on and off, a
fault storm, fast path on and off) and a canonical encoding in which
every float is rendered with ``float.hex()`` so equality really is
bit-level.  ``tests/golden/kernel_golden.json`` holds the encodings
recorded from the pre-refactor loops; ``tests/test_kernel_golden.py``
replays the matrix against whatever the code does today.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Any, Callable, Dict, Tuple

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import DDR4_4GB_X8, MemoryOrganization
from repro.faults.plan import storm_plan
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads.registry import profile_by_name
from repro.workloads.azure import AzureTraceGenerator

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "kernel_golden.json"


def small_system(**kwargs) -> GreenDIMMSystem:
    """The 8 GiB platform the equivalence tests exercise."""
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    defaults = dict(organization=organization,
                    config=GreenDIMMConfig(block_bytes=128 * MIB),
                    kernel_boot_bytes=512 * MIB,
                    transient_failure_probability=0.5, seed=7)
    defaults.update(kwargs)
    return GreenDIMMSystem(**defaults)


def trace_setup(duration_s: float) -> Tuple[GreenDIMMSystem, Any]:
    """A 16 GiB consolidation box plus a trace sized to *duration_s*."""
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    system = GreenDIMMSystem(organization=organization,
                             config=GreenDIMMConfig(block_bytes=512 * MIB),
                             kernel_boot_bytes=2 * GIB,
                             transient_failure_probability=0.5, seed=7)
    trace = AzureTraceGenerator(
        capacity_bytes=organization.total_capacity_bytes - 3 * GIB,
        physical_cores=16, duration_s=duration_s, seed=7).generate()
    return system, trace


def _hexify(value: Any) -> Any:
    """Render floats as ``float.hex()`` so JSON round-trips bit-exactly."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {k: _hexify(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_hexify(v) for v in value]
    return value


def _samples_digest(samples) -> Dict[str, Any]:
    """A compact bit-exact fingerprint of a (possibly long) sample list."""
    payload = json.dumps([_hexify(list(s)) for s in samples])
    return {
        "count": len(samples),
        "sha256": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        "first": _hexify(list(samples[0])) if samples else None,
        "last": _hexify(list(samples[-1])) if samples else None,
    }


def canonicalize(sim: ServerSimulator, result) -> Dict[str, Any]:
    """The bit-exact observable state of one finished run."""
    out: Dict[str, Any] = {
        "samples": _samples_digest(result.samples),
        "dram_energy_j": result.dram_energy_j.hex(),
        "baseline_dram_energy_j": result.baseline_dram_energy_j.hex(),
        "daemon_stats": _hexify(dataclasses.asdict(sim.system.daemon.stats)),
        "ff_stats": _hexify(sim.ff_stats.as_dict()),
    }
    for field in ("overhead_fraction", "swap_shortfall_pages",
                  "emergency_onlines", "swap_stall_s"):
        if hasattr(result, field):
            out[field] = _hexify(getattr(result, field))
    if hasattr(result, "overhead_by_profile"):
        out["overhead_by_profile"] = _hexify(result.overhead_by_profile)
    injector = sim.system.fault_injector
    if injector is not None:
        out["fault_stats"] = _hexify(injector.stats.as_dict())
    return out


def _run_workload(fast: bool, churn: bool, plan=None) -> Dict[str, Any]:
    sim = ServerSimulator(small_system(fault_plan=plan), seed=5,
                          fast_forward=fast)
    result = sim.run_workload(profile_by_name("429.mcf"), epoch_s=1.0,
                              pinned_churn=churn)
    return canonicalize(sim, result)


def _run_vm_trace(fast: bool, churn: bool, duration_s: float,
                  epoch_s: float) -> Dict[str, Any]:
    system, trace = trace_setup(duration_s)
    sim = ServerSimulator(system, seed=5, fast_forward=fast)
    result = sim.run_vm_trace(trace, epoch_s=epoch_s, pinned_churn=churn)
    return canonicalize(sim, result)


def _run_mix(fast: bool, churn: bool) -> Dict[str, Any]:
    sim = ServerSimulator(small_system(), seed=5, fast_forward=fast)
    profiles = [profile_by_name(name) for name in ("403.gcc", "429.mcf")]
    result = sim.run_mix(profiles, epoch_s=2.0, pinned_churn=churn)
    return canonicalize(sim, result)


def _storm():
    return storm_plan(303, intensity=4.0, duration_s=120.0, num_blocks=64)


#: name -> callable(fast) producing the canonical run encoding.
SCENARIOS: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "workload_nochurn": lambda fast: _run_workload(fast, churn=False),
    "workload_churn": lambda fast: _run_workload(fast, churn=True),
    "workload_storm": lambda fast: _run_workload(fast, churn=False,
                                                 plan=_storm()),
    "vmtrace_nochurn": lambda fast: _run_vm_trace(fast, churn=False,
                                                  duration_s=24 * 3600.0,
                                                  epoch_s=5.0),
    "vmtrace_churn": lambda fast: _run_vm_trace(fast, churn=True,
                                                duration_s=12 * 3600.0,
                                                epoch_s=2.0),
    "mix_nochurn": lambda fast: _run_mix(fast, churn=False),
    "mix_churn": lambda fast: _run_mix(fast, churn=True),
}


def record_goldens() -> Dict[str, Dict[str, Any]]:
    """Run the whole matrix and return {scenario: {path: encoding}}."""
    goldens: Dict[str, Dict[str, Any]] = {}
    for name, runner in SCENARIOS.items():
        goldens[name] = {"slow": runner(False), "fast": runner(True)}
    return goldens


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    goldens = record_goldens()
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=1, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
