"""DRAM power model: structure and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.organization import spec_server_memory
from repro.errors import ConfigurationError
from repro.power.idd import AccessEnergies, IDDValues
from repro.power.model import (
    DRAMPowerBreakdown,
    DRAMPowerModel,
    RankPowerProfile,
    uniform_profile,
)
from repro.power.states import PowerState

ORG = spec_server_memory()
MODEL = DRAMPowerModel(ORG)


class TestBreakdown:
    def test_total_is_sum(self):
        b = DRAMPowerBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert b.total_w == 15.0
        assert b.static_w == 3.0

    def test_background_fraction(self):
        b = DRAMPowerBreakdown(6.0, 4.0, 0.0, 0.0, 10.0)
        assert b.background_fraction == pytest.approx(0.5)

    def test_add_and_scale(self):
        b = DRAMPowerBreakdown(1.0, 1.0, 1.0, 1.0, 1.0)
        assert (b + b).total_w == 10.0
        assert b.scaled(2.0).refresh_w == 2.0


class TestProfiles:
    def test_residency_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            RankPowerProfile(state_residency={PowerState.PRECHARGE_STANDBY: 0.5})

    def test_dpd_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            RankPowerProfile(dpd_fraction=1.5)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            RankPowerProfile(bandwidth_bytes_per_s=-1.0)

    def test_uniform_profile_covers_all_ranks(self):
        profiles = uniform_profile(ORG, 16e9)
        assert len(profiles) == ORG.total_ranks
        assert profiles[0].bandwidth_bytes_per_s == pytest.approx(1e9)


class TestStateOrdering:
    """Deeper states must draw strictly less background power."""

    def test_background_power_monotonic(self):
        dev = MODEL.device_model
        act = dev.background_power_w(PowerState.ACTIVE_STANDBY)
        pre = dev.background_power_w(PowerState.PRECHARGE_STANDBY)
        pd = dev.background_power_w(PowerState.POWER_DOWN)
        sr = dev.background_power_w(PowerState.SELF_REFRESH)
        dpd = dev.background_power_w(PowerState.DEEP_POWER_DOWN)
        assert act >= pre > pd > sr > dpd

    def test_powerdown_in_paper_band(self):
        # Section 2.2: power-down consumes 40-70% of the standby power.
        dev = MODEL.device_model
        ratio = (dev.background_power_w(PowerState.POWER_DOWN)
                 / dev.background_power_w(PowerState.PRECHARGE_STANDBY))
        assert 0.3 <= ratio <= 0.7

    def test_selfrefresh_near_10_percent(self):
        # Section 2.2: self-refresh goes down to ~10% of active power.
        dev = MODEL.device_model
        ratio = (dev.background_power_w(PowerState.SELF_REFRESH)
                 / dev.background_power_w(PowerState.ACTIVE_STANDBY))
        assert ratio <= 0.2

    def test_no_refresh_power_in_self_or_deep_states(self):
        dev = MODEL.device_model
        assert dev.refresh_power_w(PowerState.SELF_REFRESH) == 0.0
        assert dev.refresh_power_w(PowerState.DEEP_POWER_DOWN) == 0.0
        assert dev.refresh_power_w(PowerState.PRECHARGE_STANDBY) > 0.0


class TestDPDAccounting:
    def test_full_gating_leaves_small_residual(self):
        gated = MODEL.idle_power(dpd_fraction=1.0)
        idle = MODEL.idle_power(dpd_fraction=0.0)
        assert gated.static_w < 0.08 * idle.static_w

    def test_gating_is_roughly_proportional(self):
        idle = MODEL.idle_power(dpd_fraction=0.0).static_w
        half = MODEL.idle_power(dpd_fraction=0.5).static_w
        assert half == pytest.approx(idle * 0.525, rel=0.05)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_gating_monotonic(self, fraction):
        some = MODEL.idle_power(dpd_fraction=fraction).total_w
        none = MODEL.idle_power(dpd_fraction=0.0).total_w
        assert some <= none + 1e-9

    def test_dynamic_power_unaffected_by_gating(self):
        busy = MODEL.busy_power(10e9, dpd_fraction=0.0)
        gated = MODEL.busy_power(10e9, dpd_fraction=0.5)
        assert gated.rw_w == pytest.approx(busy.rw_w)
        assert gated.io_w == pytest.approx(busy.io_w)
        assert gated.activate_w == pytest.approx(busy.activate_w)


class TestDynamicPower:
    def test_scales_with_bandwidth(self):
        low = MODEL.busy_power(5e9)
        high = MODEL.busy_power(20e9)
        assert high.rw_w == pytest.approx(4 * low.rw_w)

    def test_row_misses_cost_activates(self):
        hits = MODEL.busy_power(10e9, row_miss_rate=0.1)
        misses = MODEL.busy_power(10e9, row_miss_rate=0.9)
        assert misses.activate_w > 5 * hits.activate_w

    def test_power_requires_profile_per_rank(self):
        with pytest.raises(ConfigurationError):
            MODEL.power([RankPowerProfile()])


class TestIDDValidation:
    def test_rejects_inverted_standby_currents(self):
        with pytest.raises(ConfigurationError):
            IDDValues(vdd=1.2, idd0=0.05, idd2n=0.01, idd2p=0.02,
                      idd3n=0.03, idd4r=0.1, idd4w=0.1, idd5b=0.2,
                      idd6=0.003)

    def test_rejects_hot_selfrefresh(self):
        with pytest.raises(ConfigurationError):
            IDDValues(vdd=1.2, idd0=0.05, idd2n=0.02, idd2p=0.01,
                      idd3n=0.03, idd4r=0.1, idd4w=0.1, idd5b=0.2,
                      idd6=0.5)

    def test_access_energy_monotone_in_miss_rate(self):
        energies = AccessEnergies(act_j=1e-9, rw_j=1e-9, io_j=1e-9)
        assert (energies.energy_per_access_j(1.0)
                > energies.energy_per_access_j(0.0))

    def test_access_energy_rejects_bad_rate(self):
        energies = AccessEnergies(act_j=1e-9, rw_j=1e-9, io_j=1e-9)
        with pytest.raises(ConfigurationError):
            energies.energy_per_access_j(1.5)
