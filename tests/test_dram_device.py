"""DRAM device geometry (the paper's Figure 5 example)."""

import pytest

from repro.dram.device import (
    DDR4_4GB_X8,
    DDR4_8GB_X4,
    DDR4_8GB_X8,
    DRAMDeviceConfig,
)
from repro.errors import ConfigurationError


class TestFigure5Device:
    """The DDR4 x8 4Gb device of Section 4.1 / Figure 5."""

    def test_row_bits_is_15(self):
        assert DDR4_4GB_X8.row_bits == 15

    def test_subarray_bits_is_6(self):
        assert DDR4_4GB_X8.subarray_bits == 6

    def test_local_row_bits_is_9(self):
        # 512 rows per sub-array -> 9 local bits.
        assert DDR4_4GB_X8.local_row_bits == 9
        assert DDR4_4GB_X8.rows_per_subarray == 512

    def test_64_subarrays_per_bank(self):
        assert DDR4_4GB_X8.subarrays_per_bank == 64

    def test_subarray_is_4mb(self):
        assert DDR4_4GB_X8.subarray_bits_capacity == 4 * (1 << 20)

    def test_16_banks(self):
        assert DDR4_4GB_X8.banks == 16

    def test_capacity_is_512mb(self):
        assert DDR4_4GB_X8.capacity_bytes == 512 * (1 << 20)

    def test_row_size_is_8kb(self):
        assert DDR4_4GB_X8.row_size_bits == 8192

    def test_columns_per_row(self):
        assert DDR4_4GB_X8.columns_per_row == 1024

    def test_mats_per_subarray(self):
        assert DDR4_4GB_X8.mats_per_subarray == 16


class TestOtherDevices:
    def test_8gb_x4_capacity(self):
        assert DDR4_8GB_X4.capacity_bytes == 1 << 30
        assert DDR4_8GB_X4.width == 4

    def test_8gb_x8_capacity(self):
        assert DDR4_8GB_X8.capacity_bytes == 1 << 30
        assert DDR4_8GB_X8.width == 8

    def test_rows_per_bank_consistency(self):
        for device in (DDR4_4GB_X8, DDR4_8GB_X4, DDR4_8GB_X8):
            assert (device.rows_per_bank
                    == device.subarrays_per_bank * device.rows_per_subarray)

    def test_capacity_decomposition(self):
        for device in (DDR4_4GB_X8, DDR4_8GB_X4, DDR4_8GB_X8):
            total_bits = (device.banks * device.rows_per_bank
                          * device.row_size_bits)
            assert total_bits == device.density_bits


class TestValidation:
    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            DRAMDeviceConfig(name="bad", density_bits=1 << 32, width=5)

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ConfigurationError):
            DRAMDeviceConfig(name="bad", density_bits=1 << 32, width=8, banks=12)

    def test_rejects_all_subarray_rows(self):
        # One-row sub-arrays: the global decoder consumes every row bit,
        # leaving nothing for the local decoder.
        with pytest.raises(ConfigurationError):
            DRAMDeviceConfig(name="bad", density_bits=1 << 32, width=8,
                             subarrays_per_bank=64, rows_per_subarray=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DDR4_4GB_X8.width = 4  # type: ignore[misc]
