"""The parallel experiment engine: jobs, cache, metrics, aggregation."""

import json

import pytest

from repro.analysis.aggregate import SuiteAggregator
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.runner import (
    ExperimentJob,
    JobOutcome,
    MetricsBus,
    ParallelRunner,
    ResultCache,
    code_version,
    fan_out,
    suite_jobs,
)

FAST_PAIR = ["tab1", "fig3"]  # two cheap, deterministic experiments


class TestJobs:
    def test_suite_jobs_default_is_whole_registry(self):
        from repro.experiments.registry import runners

        jobs = suite_jobs(fast=True)
        assert [j.experiment for j in jobs] == list(runners())
        assert all(j.fast for j in jobs)

    def test_all_keyword_expands(self):
        assert len(suite_jobs(["all"])) == len(suite_jobs())

    def test_unknown_name_rejected_before_running(self):
        with pytest.raises(ConfigurationError):
            suite_jobs(["tab1", "fig99"])

    def test_job_seed_is_stable(self):
        assert (ExperimentJob("tab1").job_seed
                == ExperimentJob("tab1").job_seed)
        assert (ExperimentJob("tab1").job_seed
                != ExperimentJob("fig3").job_seed)
        assert ExperimentJob("tab1", seed=7).job_seed == 7

    def test_config_hash_covers_fast_flag(self):
        assert (ExperimentJob("tab1", fast=True).config_hash()
                != ExperimentJob("tab1", fast=False).config_hash())

    def test_config_hash_covers_fast_forward(self):
        # The two simulation paths are bit-for-bit identical by
        # contract, but a cached fast run must never alias a
        # ``--no-fast-forward`` verification run.
        fast = ExperimentJob("tab1", fast=True)
        reference = ExperimentJob("tab1", fast=True, fast_forward=False)
        assert fast.config_hash() != reference.config_hash()
        assert reference.describe() == "tab1 (fast, no-ff)"

    def test_suite_jobs_stamp_fast_forward(self):
        assert all(not j.fast_forward
                   for j in suite_jobs(FAST_PAIR, fast_forward=False))
        assert all(j.fast_forward for j in suite_jobs(FAST_PAIR))

    def test_config_hash_covers_fault_plan(self):
        from repro.faults import storm_plan

        bare = ExperimentJob("tab1", fast=True)
        storm_a = ExperimentJob("tab1", fast=True,
                                fault_plan=storm_plan(1).canonical())
        storm_b = ExperimentJob("tab1", fast=True,
                                fault_plan=storm_plan(2).canonical())
        assert len({bare.config_hash(), storm_a.config_hash(),
                    storm_b.config_hash()}) == 3

    def test_suite_jobs_stamp_fault_plan(self):
        from repro.faults import storm_plan

        plan_json = storm_plan(5).canonical()
        jobs = suite_jobs(FAST_PAIR, fast=True, fault_plan=plan_json)
        assert all(j.fault_plan == plan_json for j in jobs)


class TestCache:
    def test_key_stable_across_instances(self, tmp_path):
        job = ExperimentJob("tab1", fast=True)
        first = ResultCache(tmp_path / "a").key(job)
        second = ResultCache(tmp_path / "b").key(job)
        assert first == second

    def test_key_changes_with_code_version(self, tmp_path):
        job = ExperimentJob("tab1", fast=True)
        assert (ResultCache(tmp_path, version="v1").key(job)
                != ResultCache(tmp_path, version="v2").key(job))

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = ExperimentJob("tab1", fast=True)
        result = ExperimentResult(experiment="tab1", description="d",
                                  measured={"x": 1.0})
        assert cache.get(job) is None
        cache.put(job, result, wall_s=0.5)
        loaded = cache.get(job)
        assert loaded == result
        entries = cache.entries()
        assert len(entries) == 1
        assert entries[0]["experiment"] == "tab1"
        assert entries[0]["code_version"] == code_version()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = ExperimentJob("tab1", fast=True)
        cache.put(job, ExperimentResult("tab1", "d"), wall_s=0.0)
        (tmp_path / f"{cache.key(job)}.pkl").write_bytes(b"not a pickle")
        assert cache.get(job) is None

    def test_torn_meta_is_a_miss(self, tmp_path):
        # Regression: the meta JSON used to be written directly, so a
        # crash mid-write left a valid pickle beside torn metadata —
        # and get() replayed the entry while entries() silently skipped
        # it.  A torn meta must poison the whole entry instead.
        cache = ResultCache(tmp_path)
        job = ExperimentJob("tab1", fast=True)
        cache.put(job, ExperimentResult("tab1", "d"), wall_s=0.0)
        meta = tmp_path / f"{cache.key(job)}.json"
        meta.write_text(meta.read_text()[:17])  # torn mid-write
        assert cache.get(job) is None
        assert not (tmp_path / f"{cache.key(job)}.pkl").exists()
        assert not meta.exists()

    def test_missing_meta_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = ExperimentJob("tab1", fast=True)
        cache.put(job, ExperimentResult("tab1", "d"), wall_s=0.0)
        (tmp_path / f"{cache.key(job)}.json").unlink()
        assert cache.get(job) is None

    def test_put_is_atomic(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = ExperimentJob("tab1", fast=True)
        cache.put(job, ExperimentResult("tab1", "d"), wall_s=0.0)
        assert cache.get(job) is not None
        assert list(tmp_path.glob("*.tmp")) == []

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(ExperimentJob("tab1"), ExperimentResult("tab1", "d"))
        assert cache.clear() == 1
        assert cache.entries() == []


class TestEngine:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(workers=0)

    def test_serial_and_parallel_agree_bitwise(self, tmp_path):
        jobs = suite_jobs(FAST_PAIR, fast=True)
        serial = ParallelRunner(workers=1).run(jobs)
        parallel = ParallelRunner(workers=2).run(jobs)
        assert [o.job for o in serial] == [o.job for o in parallel]
        for left, right in zip(serial, parallel):
            assert left.ok and right.ok
            assert left.result == right.result
            assert left.result.render() == right.result.render()

    def test_warm_cache_skips_every_job(self, tmp_path):
        jobs = suite_jobs(FAST_PAIR, fast=True)
        cache = ResultCache(tmp_path)
        cold_metrics = MetricsBus()
        cold = ParallelRunner(workers=2, cache=cache,
                              metrics=cold_metrics).run(jobs)
        assert cold_metrics.cache_misses == len(jobs)
        assert cold_metrics.cache_hits == 0

        warm_metrics = MetricsBus()
        warm = ParallelRunner(workers=2, cache=cache,
                              metrics=warm_metrics).run(jobs)
        assert warm_metrics.cache_hits == len(jobs)
        assert warm_metrics.cache_misses == 0
        for before, after in zip(cold, warm):
            assert after.cached
            assert before.result == after.result

    def test_code_version_invalidates_cache(self, tmp_path):
        jobs = suite_jobs(["tab1"], fast=True)
        ParallelRunner(workers=1, cache=ResultCache(tmp_path)).run(jobs)
        stale = ResultCache(tmp_path, version="other-code")
        metrics = MetricsBus()
        ParallelRunner(workers=1, cache=stale, metrics=metrics).run(jobs)
        assert metrics.cache_misses == 1

    def test_failures_are_contained(self, monkeypatch):
        jobs = [ExperimentJob("tab1", fast=True)]
        import repro.runner.engine as engine

        def boom(job):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(engine, "_timed_execute", boom)
        outcomes = ParallelRunner(workers=1).run(jobs)
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        assert "injected failure" in outcomes[0].error

    def test_metrics_jsonl_file(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        metrics = MetricsBus(path=path)
        ParallelRunner(workers=1, metrics=metrics).run(
            suite_jobs(["tab1"], fast=True))
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds == ["job_start", "job_end", "suite_end"]
        summary = events[-1]
        assert summary["jobs"] == 1
        assert summary["cache_misses"] == 1
        assert 0.0 <= summary["utilization"] <= 1.0


class TestFanOut:
    def test_preserves_item_order(self):
        import math

        assert fan_out(math.sqrt, [16, 9, 4], workers=1) == [4, 3, 2]

    def test_parallel_matches_serial(self):
        import math

        items = list(range(1, 12))
        assert (fan_out(math.factorial, items, workers=3)
                == fan_out(math.factorial, items, workers=1))


def _outcome(name, ok=True, cached=False, wall=0.1):
    result = ExperimentResult(experiment=name, description="d") if ok else None
    return JobOutcome(job=ExperimentJob(name), result=result, wall_s=wall,
                      cached=cached, error=None if ok else "boom")


class TestAggregator:
    def test_out_of_order_completion_renders_canonically(self):
        shuffled = SuiteAggregator(canonical_order=["tab1", "fig3", "fig8"])
        ordered = SuiteAggregator(canonical_order=["tab1", "fig3", "fig8"])
        for name in ("fig8", "tab1", "fig3"):
            shuffled.add(_outcome(name))
        for name in ("tab1", "fig3", "fig8"):
            ordered.add(_outcome(name))
        assert shuffled.render() == ordered.render()
        assert list(shuffled.results()) == ["tab1", "fig3", "fig8"]

    def test_measured_counters(self):
        agg = SuiteAggregator(canonical_order=["a", "b", "c"])
        agg.add(_outcome("a", cached=True, wall=0.0))
        agg.add(_outcome("b", wall=0.5))
        agg.add(_outcome("c", ok=False))
        measured = agg.measured()
        assert measured["jobs"] == 3
        assert measured["succeeded"] == 2
        assert measured["failed"] == 1
        assert measured["cache_hits"] == 1
        assert agg.failures() == {"c": "boom"}
        assert "FAILED" in agg.render()

    def test_unknown_experiments_sort_last_by_name(self):
        agg = SuiteAggregator(canonical_order=["tab1"])
        agg.add(_outcome("zzz-extension"))
        agg.add(_outcome("aaa-extension"))
        agg.add(_outcome("tab1"))
        assert list(agg.results()) == ["tab1", "aaa-extension",
                                       "zzz-extension"]


class TestErrorPathDraining:
    """A failed job's counters must land on *its* outcome, not leak
    into the next job that runs in the same process."""

    def test_failed_job_keeps_its_counters(self, monkeypatch, tmp_path):
        import repro.runner.engine as engine
        from repro import perfcounters

        def fake_execute(job):
            if job.experiment == "tab1":
                perfcounters.GLOBAL.epochs_stepped += 7
                raise RuntimeError("mid-job failure")
            return ExperimentResult(experiment=job.experiment,
                                    description="d")

        monkeypatch.setattr(engine, "execute_job", fake_execute)
        metrics = MetricsBus(path=tmp_path / "metrics.jsonl")
        outcomes = ParallelRunner(workers=1, metrics=metrics).run(
            [ExperimentJob("tab1", fast=True),
             ExperimentJob("fig3", fast=True)])

        failed, clean = outcomes
        assert not failed.ok and clean.ok
        assert failed.perf == {"epochs_stepped": 7}
        assert not clean.perf  # nothing leaked forward

        ends = {e["experiment"]: e for e in metrics.events
                if e["event"] == "job_end"}
        assert ends["tab1"]["perf"] == {"epochs_stepped": 7}
        assert "mid-job failure" in ends["tab1"]["error"]
        assert "perf" not in ends["fig3"]

    def test_harness_failure_still_drains(self, monkeypatch):
        import repro.runner.engine as engine
        from repro import perfcounters

        def boom(job):
            perfcounters.GLOBAL.power_cache_hits += 3
            raise RuntimeError("harness broke")

        monkeypatch.setattr(engine, "_timed_execute", boom)
        ParallelRunner(workers=1).run([ExperimentJob("tab1", fast=True)])
        from repro.perfcounters import drain_perf_counters

        assert drain_perf_counters() == {}  # nothing left loaded


class TestTimestamps:
    def test_events_carry_wall_and_monotonic_clocks(self):
        metrics = MetricsBus()
        first = metrics.emit("a")
        second = metrics.emit("b")
        for event in (first, second):
            assert "ts" in event and "ts_mono" in event
            assert event["ts_mono"] >= 0.0
        assert second["ts_mono"] >= first["ts_mono"]

    def test_report_orders_on_the_monotonic_clock(self):
        from repro.obs.report import build_report

        # Wall clock stepped backwards mid-suite (NTP): ``ts`` says
        # late-job ran first, ``ts_mono`` knows better.
        events = [
            {"event": "job_end", "experiment": "late-job", "ts": 50.0,
             "ts_mono": 2.0, "wall_s": 0.1, "cached": False},
            {"event": "job_end", "experiment": "early-job", "ts": 100.0,
             "ts_mono": 1.0, "wall_s": 0.1, "cached": False},
        ]
        report = build_report(events)
        assert report.index("early-job") < report.index("late-job")

    def test_report_falls_back_to_wall_clock(self):
        from repro.obs.report import build_report

        events = [
            {"event": "job_end", "experiment": "second", "ts": 2.0,
             "wall_s": 0.1, "cached": False},
            {"event": "job_end", "experiment": "first", "ts": 1.0,
             "wall_s": 0.1, "cached": False},
        ]
        report = build_report(events)
        assert report.index("first") < report.index("second")


class TestInterrupt:
    def test_runner_emits_interrupted_suite_end(self, monkeypatch):
        import repro.runner.engine as engine

        def boom(job):
            raise KeyboardInterrupt

        monkeypatch.setattr(engine, "_timed_execute", boom)
        metrics = MetricsBus()
        with pytest.raises(KeyboardInterrupt):
            ParallelRunner(workers=1, metrics=metrics).run(
                [ExperimentJob("tab1", fast=True)])
        last = metrics.events[-1]
        assert last["event"] == "suite_end"
        assert last["interrupted"] is True

    def test_fan_out_emits_interrupted_suite_end(self):
        def boom(item):
            raise KeyboardInterrupt

        bus = MetricsBus()
        with pytest.raises(KeyboardInterrupt):
            fan_out(boom, [1, 2, 3], workers=1, metrics=bus)
        last = bus.events[-1]
        assert last["event"] == "suite_end"
        assert last["interrupted"] is True

    def test_clean_suite_end_is_not_interrupted(self):
        import math

        bus = MetricsBus()
        fan_out(math.sqrt, [4.0], workers=1, metrics=bus)
        assert bus.events[-1]["interrupted"] is False

    def test_cli_maps_interrupt_to_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_run", boom)
        assert cli.main(["run", "tab1"]) == 130
        assert "interrupted" in capsys.readouterr().err


_SWEEP_SCRIPT = '''
import sys
import time

from repro.runner import MetricsBus, fan_out


def crawl(x):
    time.sleep(30)
    return x


if __name__ == "__main__":
    bus = MetricsBus(path=sys.argv[1])
    try:
        fan_out(crawl, list(range(8)), workers=2, metrics=bus)
    except KeyboardInterrupt:
        sys.exit(130)
    sys.exit(0)
'''


class TestInterruptedSweepSubprocess:
    def test_sigint_cancels_a_two_worker_sweep(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        script = tmp_path / "sweep.py"
        script.write_text(_SWEEP_SCRIPT)
        metrics_path = tmp_path / "metrics.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")]))
        proc = subprocess.Popen(
            [sys.executable, str(script), str(metrics_path)],
            cwd="/root/repo", env=env)
        try:
            # Wait until the sweep has actually started jobs, then
            # interrupt it mid-flight.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if metrics_path.exists() \
                        and "job_start" in metrics_path.read_text():
                    break
                time.sleep(0.1)
            else:
                pytest.fail("sweep never started")
            time.sleep(0.5)
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # 8 jobs x 30 s on 2 workers would run for minutes; the
        # interrupt must stop the sweep promptly, exit non-zero, and
        # close the metrics stream with an interrupted suite_end.
        assert returncode == 130
        events = [json.loads(line)
                  for line in metrics_path.read_text().splitlines()]
        assert events[-1]["event"] == "suite_end"
        assert events[-1]["interrupted"] is True


class TestUtilization:
    def test_raw_is_unclamped_and_clamp_is_visible(self):
        metrics = MetricsBus()
        # Over-accounted: 3 s of job wall in a 1-worker, 2 s suite.
        metrics.job_end("a", 3.0, cached=False)
        summary = metrics.suite_end(workers=1, elapsed_s=2.0)
        assert summary["utilization"] == 1.0
        assert summary["utilization_raw"] == pytest.approx(1.5)
        assert metrics.utilization_raw(1, 2.0) == pytest.approx(1.5)

    def test_degenerate_inputs_are_zero(self):
        metrics = MetricsBus()
        assert metrics.utilization_raw(0, 1.0) == 0.0
        assert metrics.utilization_raw(2, 0.0) == 0.0


class TestCLIIntegration:
    def test_run_two_experiments_parallel_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["run", "tab1", "fig3", "--fast", "--parallel", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--metrics", str(tmp_path / "metrics.jsonl")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Experiment suite summary" in out
        assert "2 cached, 0 executed" not in out  # cold run executes

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cached, 0 executed" in out  # warm run is all hits

    def test_run_unknown_in_list_rejected(self, capsys):
        from repro.cli import main

        assert main(["run", "tab1", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
