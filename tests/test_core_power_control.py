"""GreenDIMMPowerControl: gating follows the offline block set."""

import pytest

from repro.core.mapping import PowerBlockMap
from repro.core.power_control import GreenDIMMPowerControl
from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.units import GIB, MIB

ORG = spec_server_memory()
MAPPING = AddressMapping(ORG, interleaved=True)


def control(block_bytes=GIB, pair_gating=False):
    return GreenDIMMPowerControl(PowerBlockMap(MAPPING, block_bytes),
                                 pair_gating=pair_gating)


class TestGatingOnOffline:
    def test_whole_group_block_gates_immediately(self):
        ctl = control()
        gated = ctl.block_offlined(5)
        assert gated == [5]
        assert ctl.register.is_gated(5)
        assert ctl.gated_capacity_fraction() == pytest.approx(1 / 64)

    def test_partial_group_waits_for_all_blocks(self):
        ctl = GreenDIMMPowerControl(PowerBlockMap(MAPPING, 128 * MIB),
                                    pair_gating=False)
        for block in range(8, 15):
            assert ctl.block_offlined(block) == []
        assert ctl.block_offlined(15) == [1]

    def test_pair_gating_needs_partner(self):
        ctl = control(pair_gating=True)
        assert ctl.block_offlined(2) == []
        assert ctl.block_offlined(3) == [2, 3]

    def test_offline_fraction_vs_gated_fraction(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)
        assert ctl.offline_capacity_fraction() == pytest.approx(1 / 64)
        assert ctl.gated_capacity_fraction() == 0.0


class TestOnlinePath:
    def test_prepare_online_wakes_and_waits(self):
        ctl = control()
        ctl.block_offlined(5)
        wait = ctl.prepare_online(5, now_s=1.0)
        assert wait == pytest.approx(18e-9)
        assert not ctl.register.is_gated(5)
        assert ctl.wakeup_wait_s == pytest.approx(18e-9)

    def test_prepare_online_of_ungated_block_is_free(self):
        ctl = control()
        assert ctl.prepare_online(7, now_s=0.0) == 0.0

    def test_block_onlined_updates_set(self):
        ctl = control()
        ctl.block_offlined(5)
        ctl.prepare_online(5, now_s=0.0)
        ctl.block_onlined(5, now_s=1.0)
        assert 5 not in ctl.offline_blocks
        assert ctl.offline_capacity_fraction() == 0.0

    def test_onlining_breaks_partner_gating(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)
        ctl.block_offlined(3)
        assert ctl.register.is_gated(2) and ctl.register.is_gated(3)
        ctl.prepare_online(3, now_s=1.0)
        broken = ctl.block_onlined(3, now_s=1.0)
        # Group 2 is still offline but lost its sense-amp partner.
        assert broken == [2]
        assert not ctl.register.is_gated(2)

    def test_roundtrip_can_regate(self):
        ctl = control()
        ctl.block_offlined(5)
        ctl.prepare_online(5, now_s=0.0)
        ctl.block_onlined(5, now_s=1.0)
        gated = ctl.block_offlined(5, now_s=2.0)
        assert gated == [5]


class TestPairRegating:
    """``block_onlined`` un-gating partner-broken groups, and the re-gate
    path once the pairing constraint is restored."""

    def test_partner_broken_group_stays_offline_but_ungated(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)
        ctl.block_offlined(3)
        ctl.prepare_online(3, now_s=1.0)
        broken = ctl.block_onlined(3, now_s=1.0)
        assert broken == [2]
        # Group 2 is *fully offline* but can no longer be held gated:
        # its capacity stays out of service yet draws background power.
        assert 2 in ctl.offline_blocks
        assert ctl.offline_capacity_fraction() == pytest.approx(1 / 64)
        assert ctl.gated_capacity_fraction() == 0.0

    def test_reoffline_partner_regates_both(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)
        ctl.block_offlined(3)
        ctl.prepare_online(3, now_s=1.0)
        assert ctl.block_onlined(3, now_s=1.0) == [2]
        # Bringing the partner back offline restores the pairing
        # constraint: both groups gate again in one event.
        assert ctl.block_offlined(3, now_s=2.0) == [2, 3]
        assert ctl.register.is_gated(2) and ctl.register.is_gated(3)

    def test_partial_group_breaks_partner_gating(self):
        # 128 MiB blocks: group g covers blocks 8g..8g+7.  On-lining a
        # single block out of group 3 leaves group 2 fully offline but
        # partner-broken — both must wake.
        ctl = GreenDIMMPowerControl(PowerBlockMap(MAPPING, 128 * MIB),
                                    pair_gating=True)
        for block in range(16, 32):  # all of groups 2 and 3
            ctl.block_offlined(block)
        assert ctl.register.is_gated(2) and ctl.register.is_gated(3)
        # prepare_online already woke group 3 (the block's own group);
        # block_onlined then reports the *partner* group as broken.
        ctl.prepare_online(24, now_s=1.0)
        broken = ctl.block_onlined(24, now_s=1.0)
        assert broken == [2]
        assert not ctl.register.is_gated(2)
        assert not ctl.register.is_gated(3)
        # Group 2's eight blocks are all still offline.
        assert all(b in ctl.offline_blocks for b in range(16, 24))

    def test_regate_syncs_mode_registers(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)
        ctl.block_offlined(3)
        after_gate = ctl.mrs_time_ns
        ctl.prepare_online(3, now_s=1.0)
        ctl.block_onlined(3, now_s=1.0)
        after_break = ctl.mrs_time_ns
        # Un-gating the broken partner is an MRS broadcast too.
        assert after_break > after_gate
        ctl.block_offlined(3, now_s=2.0)
        assert ctl.mrs_time_ns > after_break

    def test_online_of_unpaired_block_breaks_nothing(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)  # partner 3 never offlined -> never gated
        assert ctl.block_onlined(2, now_s=1.0) == []
        assert ctl.offline_capacity_fraction() == 0.0
