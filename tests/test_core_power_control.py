"""GreenDIMMPowerControl: gating follows the offline block set."""

import pytest

from repro.core.mapping import PowerBlockMap
from repro.core.power_control import GreenDIMMPowerControl
from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.units import GIB, MIB

ORG = spec_server_memory()
MAPPING = AddressMapping(ORG, interleaved=True)


def control(block_bytes=GIB, pair_gating=False):
    return GreenDIMMPowerControl(PowerBlockMap(MAPPING, block_bytes),
                                 pair_gating=pair_gating)


class TestGatingOnOffline:
    def test_whole_group_block_gates_immediately(self):
        ctl = control()
        gated = ctl.block_offlined(5)
        assert gated == [5]
        assert ctl.register.is_gated(5)
        assert ctl.gated_capacity_fraction() == pytest.approx(1 / 64)

    def test_partial_group_waits_for_all_blocks(self):
        ctl = GreenDIMMPowerControl(PowerBlockMap(MAPPING, 128 * MIB),
                                    pair_gating=False)
        for block in range(8, 15):
            assert ctl.block_offlined(block) == []
        assert ctl.block_offlined(15) == [1]

    def test_pair_gating_needs_partner(self):
        ctl = control(pair_gating=True)
        assert ctl.block_offlined(2) == []
        assert ctl.block_offlined(3) == [2, 3]

    def test_offline_fraction_vs_gated_fraction(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)
        assert ctl.offline_capacity_fraction() == pytest.approx(1 / 64)
        assert ctl.gated_capacity_fraction() == 0.0


class TestOnlinePath:
    def test_prepare_online_wakes_and_waits(self):
        ctl = control()
        ctl.block_offlined(5)
        wait = ctl.prepare_online(5, now_s=1.0)
        assert wait == pytest.approx(18e-9)
        assert not ctl.register.is_gated(5)
        assert ctl.wakeup_wait_s == pytest.approx(18e-9)

    def test_prepare_online_of_ungated_block_is_free(self):
        ctl = control()
        assert ctl.prepare_online(7, now_s=0.0) == 0.0

    def test_block_onlined_updates_set(self):
        ctl = control()
        ctl.block_offlined(5)
        ctl.prepare_online(5, now_s=0.0)
        ctl.block_onlined(5, now_s=1.0)
        assert 5 not in ctl.offline_blocks
        assert ctl.offline_capacity_fraction() == 0.0

    def test_onlining_breaks_partner_gating(self):
        ctl = control(pair_gating=True)
        ctl.block_offlined(2)
        ctl.block_offlined(3)
        assert ctl.register.is_gated(2) and ctl.register.is_gated(3)
        ctl.prepare_online(3, now_s=1.0)
        broken = ctl.block_onlined(3, now_s=1.0)
        # Group 2 is still offline but lost its sense-amp partner.
        assert broken == [2]
        assert not ctl.register.is_gated(2)

    def test_roundtrip_can_regate(self):
        ctl = control()
        ctl.block_offlined(5)
        ctl.prepare_online(5, now_s=0.0)
        ctl.block_onlined(5, now_s=1.0)
        gated = ctl.block_offlined(5, now_s=2.0)
        assert gated == [5]
