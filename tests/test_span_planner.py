"""The span planner's bit-for-bit contract.

The planner (:mod:`repro.sim.kernel`) batches *stable stepped* spans —
runs of epochs where the workload provably no-ops and the monitor timer
cannot fire — on top of the older quiescent fast-forward.  Its promise
is the same: callers cannot tell which path executed.  Every test here
runs one seeded scenario twice, span planning on and off (``fast_forward``
False forces the reference per-epoch loop), and demands exact equality
of samples, energies, daemon statistics, and fault-injector streams.

The scenarios are chosen so spans actually form: the monitor period
stays at its 1 s default while epochs shrink to 0.2 s, and a staircase
footprint (big flat drop) keeps the monitor *armed* for long stretches —
precisely the regime quiescent fast-forward cannot touch (its windows
require ``monitor_is_noop``) but stable spans batch.
"""

import math
import random

import pytest

from repro import perfcounters
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import DDR4_4GB_X8, MemoryOrganization
from repro.faults.plan import FaultPlan, FaultRule, storm_plan
from repro.sim.server import ServerSimulator
from repro.soa import (
    accumulate_energy,
    batched_times,
    monitor_timer_after,
)
from repro.sim.calendar import intersect_horizons
from repro.units import GIB, MIB
from repro.workloads.profiles import Suite, WorkloadProfile
from repro.workloads.trace import FootprintTrace


def small_system(**kwargs):
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    defaults = dict(organization=organization,
                    config=GreenDIMMConfig(block_bytes=128 * MIB),
                    kernel_boot_bytes=512 * MIB,
                    transient_failure_probability=0.5, seed=7)
    defaults.update(kwargs)
    return GreenDIMMSystem(**defaults)


def staircase_profile(levels=((0.0, 4.5), (60.0, 4.5), (70.0, 1.5),
                              (300.0, 1.5)), name="staircase"):
    """A big flat drop: the monitor spends tens of periods off-lining the
    surplus one block at a time, keeping itself armed (not no-op) while
    the workload is perfectly stable — the span planner's home turf."""
    return WorkloadProfile(
        name=name, suite=Suite.SPEC2006, duration_s=levels[-1][0],
        footprint=FootprintTrace.of(
            [(t, gib * GIB) for t, gib in levels]),
        mpki=15.0)


def run_pair(profile, epoch_s, churn, plan=None, mix_with=None,
             system_kwargs=None):
    """Run the scenario with the planner on and off; returns
    ``[(result, sim), (result, sim)]`` as (slow, fast)."""
    runs = []
    for fast in (False, True):
        kwargs = dict(system_kwargs or {})
        if plan is not None:
            kwargs["fault_plan"] = plan
        sim = ServerSimulator(small_system(**kwargs), seed=5,
                              fast_forward=fast)
        if mix_with is not None:
            result = sim.run_mix([profile, mix_with], epoch_s=epoch_s,
                                 pinned_churn=churn)
        else:
            result = sim.run_workload(profile, epoch_s=epoch_s,
                                      pinned_churn=churn)
        runs.append((result, sim))
    return runs


def assert_identical(slow, fast):
    result_a, sim_a = slow
    result_b, sim_b = fast
    assert result_a.samples == result_b.samples
    assert result_a.dram_energy_j == result_b.dram_energy_j
    assert result_a.baseline_dram_energy_j == result_b.baseline_dram_energy_j
    assert sim_a.system.daemon.stats == sim_b.system.daemon.stats
    assert (list(sim_a.system.daemon.event_log)
            == list(sim_b.system.daemon.event_log))
    inj_a = sim_a.system.fault_injector
    inj_b = sim_b.system.fault_injector
    if inj_a is not None or inj_b is not None:
        assert inj_a.stats.as_dict() == inj_b.stats.as_dict()
        assert inj_a.events == inj_b.events
    # The reference path must never have batched anything.
    assert sim_a.ff_stats.epochs_batched == 0
    assert sim_a.ff_stats.epochs_fast_forwarded == 0


class TestStableSpans:
    def test_staircase_batches_and_is_identical(self):
        slow, fast = run_pair(staircase_profile(), epoch_s=0.2, churn=False)
        assert_identical(slow, fast)
        stats = fast[1].ff_stats
        assert stats.spans_stable > 0
        assert stats.epochs_batched > 0
        # Batched epochs are stepped epochs: fast-path coverage (skipped
        # plus stepped) must equal the reference path's epoch count.
        assert (stats.epochs_fast_forwarded + stats.epochs_stepped
                == slow[1].ff_stats.epochs_stepped)

    def test_span_counters_reach_process_counters(self):
        perfcounters.drain_perf_counters()
        _, fast = run_pair(staircase_profile(), epoch_s=0.2, churn=False)
        drained = perfcounters.drain_perf_counters()
        stats = fast[1].ff_stats
        assert stats.epochs_batched > 0
        # Both runs of the pair published; the fast one contributed all
        # batched epochs and stable spans.
        assert drained["epochs_batched"] == stats.epochs_batched
        assert drained["stable_spans"] == stats.spans_stable
        assert stats.span_counters() == {
            "spans_quiescent": stats.windows,
            "spans_stable": stats.spans_stable,
            "epochs_batched": stats.epochs_batched,
            "epochs_dynamic": stats.epochs_stepped - stats.epochs_batched,
        }

    def test_churn_spans_preserve_rng_stream(self):
        # Pinned churn runs for real inside a span; the arrival/expiry
        # RNG draws must land on the same epochs either way.
        slow, fast = run_pair(staircase_profile(), epoch_s=0.2, churn=True)
        assert_identical(slow, fast)
        assert fast[1].ff_stats.epochs_batched > 0

    def test_mix_small_epoch_identical(self):
        # A second staircase whose flat runs overlap the first one's:
        # the mix is only stable where *every* owner is, so overlapping
        # flats are what lets spans form at all.
        partner = staircase_profile(levels=((0.0, 2.0), (60.0, 2.0),
                                            (70.0, 1.0), (300.0, 1.0)),
                                    name="staircase-b")
        slow, fast = run_pair(staircase_profile(),
                              epoch_s=0.2, churn=False,
                              mix_with=partner)
        assert_identical(slow, fast)
        assert fast[1].ff_stats.epochs_batched > 0

    def test_fault_window_opening_mid_span_truncates(self):
        # The fault-free run batches one span at t=70.2..70.8, between
        # the ramp's end and the monitor pass that offlines the surplus.
        # This rule opens at 70.5 — inside that would-be span — so the
        # planner must cut the span at the window edge and the blocked
        # offline attempts must land on identical epochs in both paths.
        plan = FaultPlan(name="mid-span", seed=11, rules=(
            FaultRule(op="offline", error="EBUSY",
                      start_s=70.5, end_s=76.0),))
        slow, fast = run_pair(staircase_profile(), epoch_s=0.2,
                              churn=False, plan=plan)
        assert_identical(slow, fast)
        assert fast[1].ff_stats.epochs_batched > 0
        assert fast[1].system.fault_injector.stats.total > 0

    def test_tracer_toggled_mid_run_emits_span_events(self):
        from repro.obs.tracer import GLOBAL_TRACER

        sim = ServerSimulator(small_system(), seed=5, fast_forward=True)
        original = sim._pinned_churn

        def churn_then_enable(t, epoch_s):
            result = original(t, epoch_s)
            if t > 40.0 and not GLOBAL_TRACER.enabled:
                GLOBAL_TRACER.enable()
            return result

        sim._pinned_churn = churn_then_enable
        try:
            result = sim.run_workload(staircase_profile(), epoch_s=0.2,
                                      pinned_churn=True)
            assert GLOBAL_TRACER.enabled
            events = GLOBAL_TRACER.snapshot()["events"]
            enters = [e for e in events if e["kind"] == "span.enter"]
            exits = [e for e in events if e["kind"] == "span.exit"]
        finally:
            GLOBAL_TRACER.disable()
            GLOBAL_TRACER.drain()
        assert result.samples
        assert sim.ff_stats.epochs_batched > 0
        # Spans kept forming after the mid-run toggle, and every traced
        # entry saw its exit.
        assert enters and len(enters) == len(exits)


class TestRandomizedEquivalence:
    """Randomized scenario sweep: footprint staircases, churn, fault
    storms, and sub-period epochs drawn per seed; every draw must be
    bit-for-bit identical across the two paths."""

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_runs_identical(self, seed):
        rng = random.Random(0xC0FFEE + seed)
        levels = [(0.0, rng.uniform(3.0, 5.0))]
        t = 0.0
        for _ in range(rng.randint(2, 4)):
            t += rng.uniform(20.0, 60.0)
            levels.append((t, levels[-1][1]))  # flat run
            t += rng.uniform(5.0, 15.0)
            levels.append((t, rng.uniform(1.0, 5.0)))  # ramp to new level
        t += rng.uniform(40.0, 80.0)
        levels.append((t, levels[-1][1]))
        profile = staircase_profile(levels=levels, name=f"rand{seed}")
        epoch_s = rng.choice((0.2, 0.25, 0.125))
        churn = rng.random() < 0.5
        plan = (storm_plan(seed, intensity=rng.choice((0.5, 1.0)),
                           duration_s=100.0, num_blocks=60)
                if rng.random() < 0.5 else None)
        slow, fast = run_pair(profile, epoch_s=epoch_s, churn=churn,
                              plan=plan)
        assert_identical(slow, fast)


class TestBatchedHelpers:
    """The soa batching helpers against their scalar references."""

    @pytest.mark.parametrize("seed", range(8))
    def test_monitor_timer_after_matches_scalar_chain(self, seed):
        rng = random.Random(seed)
        period = rng.choice((1.0, 2.0, 0.7))
        step = rng.choice((0.2, 0.25, 1.0 / 3.0, 0.5))
        since = rng.uniform(0.0, period)
        n = rng.randint(1, 400)
        expected = since
        for _ in range(n):
            expected += step
            if expected >= period:
                expected = 0.0
        got = monitor_timer_after(since, step, period, n)
        assert got.hex() == expected.hex()

    @pytest.mark.parametrize("seed", range(4))
    def test_batched_times_and_energy_match_scalar_chains(self, seed):
        rng = random.Random(100 + seed)
        start = rng.uniform(0.0, 500.0)
        step = rng.choice((0.2, 0.25, 0.1))
        n = rng.randint(1, 300)
        times, final = batched_times(start, step, n)
        now = start
        for k in range(n):
            assert times[k].hex() == now.hex()
            now += step
        assert final.hex() == now.hex()
        initial = rng.uniform(0.0, 1e4)
        inc = rng.uniform(0.1, 30.0)
        expected = initial
        for _ in range(n):
            expected += inc
        assert accumulate_energy(initial, inc, n).hex() == expected.hex()

    def test_intersect_horizons_veto_and_min(self):
        assert intersect_horizons(10.0) == math.inf
        assert intersect_horizons(10.0, 20.0, 15.0, 30.0) == 15.0
        assert intersect_horizons(10.0, 20.0, 10.0) == 10.0  # veto
        assert intersect_horizons(10.0, 5.0, 20.0) == 10.0   # past veto
