"""Unit helpers."""

import pytest

from repro import units
from repro.units import (
    GIB,
    KIB,
    MIB,
    PAGE_SIZE,
    format_bytes,
    gib,
    is_power_of_two,
    log2_int,
    mib,
    pages_of,
    to_gib,
    to_mib,
)


def test_binary_prefixes_are_powers_of_1024():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB
    assert units.TIB == 1024 * GIB


def test_page_size_is_4k():
    assert PAGE_SIZE == 4096


def test_default_memory_block_is_128mib():
    assert units.DEFAULT_MEMORY_BLOCK_SIZE == 128 * MIB


def test_mib_gib_constructors():
    assert mib(128) == 128 * MIB
    assert gib(2) == 2 * GIB
    assert mib(0.5) == MIB // 2


def test_to_gib_roundtrip():
    assert to_gib(gib(64)) == 64.0
    assert to_mib(mib(3)) == 3.0


def test_pages_of_exact():
    assert pages_of(128 * MIB) == 32768


def test_pages_of_rejects_misaligned():
    with pytest.raises(ValueError):
        pages_of(PAGE_SIZE + 1)


@pytest.mark.parametrize("n,expected", [
    (1, True), (2, True), (1024, True), (0, False), (3, False), (-4, False),
])
def test_is_power_of_two(n, expected):
    assert is_power_of_two(n) is expected


def test_log2_int():
    assert log2_int(1) == 0
    assert log2_int(65536) == 16


def test_log2_int_rejects_non_power():
    with pytest.raises(ValueError):
        log2_int(12)


@pytest.mark.parametrize("n,text", [
    (128 * MIB, "128MiB"),
    (GIB, "1GiB"),
    (512, "512B"),
    (3 * units.TIB, "3TiB"),
])
def test_format_bytes_exact(n, text):
    assert format_bytes(n) == text


def test_format_bytes_prefers_exact_smaller_unit():
    assert format_bytes(GIB + GIB // 2) == "1536MiB"


def test_format_bytes_fractional():
    assert format_bytes(int(2.5 * GIB) + 7) == "2.50GiB"


def test_time_units():
    assert units.MILLISECOND == 1e-3
    assert units.MICROSECOND == 1e-6
    assert units.NANOSECOND == 1e-9
    assert units.HOUR == 3600.0
