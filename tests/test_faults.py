"""The fault-injection layer: plans, injector, wrappers, determinism."""

import json
import math

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import MemoryOrganization
from repro.errors import (
    AllocationError,
    ConfigurationError,
    OfflineBusyError,
    OnlineError,
    WakeupTimeoutError,
)
from repro.faults import (
    STICKY,
    FaultInjector,
    FaultPlan,
    FaultRule,
    storm_plan,
)
from repro.faults.context import (
    active_plan,
    drain_fault_counts,
    get_active_plan,
)
from repro.policies.registry import policy_names
from repro.units import MIB


def make_system(plan=None, **kwargs) -> GreenDIMMSystem:
    org = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                             dimms_per_channel=1, ranks_per_dimm=1)
    defaults = dict(organization=org,
                    config=GreenDIMMConfig(block_bytes=64 * MIB),
                    kernel_boot_bytes=256 * MIB,
                    transient_failure_probability=0.0,
                    fault_plan=plan, seed=3)
    defaults.update(kwargs)
    return GreenDIMMSystem(**defaults)


class TestFaultRule:
    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(op="reboot", error="EBUSY")

    def test_mismatched_error_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(op="offline", error="ENOMEM")

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(op="offline", error="EBUSY", count=0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(op="offline", error="EBUSY", start_s=5.0, end_s=5.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(op="migration", error="STALL", extra_latency_s=-1.0)

    def test_matching_semantics(self):
        rule = FaultRule(op="offline", error="EAGAIN", target=7,
                         start_s=10.0, end_s=20.0, count=STICKY)
        assert rule.sticky
        assert rule.matches("offline", 7, 10.0)
        assert rule.matches("offline", 7, 19.999)
        assert not rule.matches("offline", 7, 20.0)  # end exclusive
        assert not rule.matches("offline", 7, 9.999)
        assert not rule.matches("offline", 8, 15.0)
        assert not rule.matches("online", 7, 15.0)

    def test_untargeted_rule_matches_any_block(self):
        rule = FaultRule(op="offline", error="EBUSY")
        assert rule.matches("offline", 0, 0.0)
        assert rule.matches("offline", 999, 0.0)
        assert rule.matches("offline", None, 0.0)

    def test_dict_roundtrip(self):
        rule = FaultRule(op="prepare_online", error="ETIMEDOUT", target=3,
                         start_s=1.0, end_s=9.0, count=2,
                         extra_latency_s=2e-4, label="x")
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule.from_dict({"op": "offline", "error": "EBUSY",
                                 "blast_radius": 4})


class TestFaultPlan:
    def test_json_roundtrip_is_canonical(self):
        plan = storm_plan(11, intensity=1.5, duration_s=40.0)
        again = FaultPlan.from_json(plan.canonical())
        assert again == plan
        assert again.canonical() == plan.canonical()

    def test_compose_keeps_left_precedence(self):
        left = FaultPlan("l", rules=(FaultRule(op="offline", error="EBUSY"),))
        right = FaultPlan("r", rules=(FaultRule(op="offline", error="EAGAIN"),))
        both = left + right
        assert len(both) == 2
        assert both.rules[0].error == "EBUSY"
        injector = FaultInjector(both)
        assert injector.should_fail("offline", 0).error == "EBUSY"
        assert injector.should_fail("offline", 0).error == "EAGAIN"

    def test_shifted_moves_windows(self):
        plan = FaultPlan(rules=(
            FaultRule(op="offline", error="EBUSY", start_s=1.0, end_s=2.0),
            FaultRule(op="offline", error="EAGAIN", start_s=0.0),))
        moved = plan.shifted(10.0)
        assert moved.rules[0].start_s == 11.0
        assert moved.rules[0].end_s == 12.0
        assert math.isinf(moved.rules[1].end_s)

    def test_file_roundtrip(self, tmp_path):
        plan = storm_plan(5, intensity=0.5, duration_s=20.0)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.from_file(path) == plan

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_file(tmp_path / "nope.json")

    def test_malformed_file_raises_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_file(path)


class TestStormPlan:
    def test_same_seed_same_plan(self):
        assert (storm_plan(99, intensity=3.0).canonical()
                == storm_plan(99, intensity=3.0).canonical())

    def test_different_seed_different_plan(self):
        assert (storm_plan(1).canonical() != storm_plan(2).canonical())

    def test_intensity_scales_rule_count(self):
        calm = storm_plan(7, intensity=0.5, duration_s=120.0)
        wild = storm_plan(7, intensity=6.0, duration_s=120.0)
        assert len(wild) > len(calm)

    def test_rules_are_valid_and_windowed(self):
        plan = storm_plan(13, intensity=4.0, duration_s=60.0, num_blocks=32)
        assert plan.rules
        for rule in plan.rules:
            assert 0.0 <= rule.start_s < 60.0
            assert rule.end_s > rule.start_s
            if rule.target is not None:
                assert 0 <= rule.target < 32

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            storm_plan(1, intensity=-1.0)


class TestInjector:
    def test_budget_exhausts(self):
        plan = FaultPlan(rules=(
            FaultRule(op="offline", error="EBUSY", count=2),))
        injector = FaultInjector(plan)
        assert injector.should_fail("offline", 0) is not None
        assert injector.should_fail("offline", 1) is not None
        assert injector.should_fail("offline", 2) is None
        assert injector.exhausted()
        assert injector.stats.as_dict() == {"offline:EBUSY": 2}

    def test_sticky_never_exhausts(self):
        plan = FaultPlan(rules=(
            FaultRule(op="offline", error="EAGAIN", target=4, count=STICKY),
            FaultRule(op="online", error="EINVAL", count=1),))
        injector = FaultInjector(plan)
        for _ in range(50):
            assert injector.should_fail("offline", 4) is not None
        assert injector.should_fail("offline", 5) is None
        # exhausted() tracks non-sticky budgets only.
        assert not injector.exhausted()
        injector.should_fail("online", 0)
        assert injector.exhausted()
        assert injector.should_fail("offline", 4) is not None  # still firing

    def test_window_respects_clock(self):
        plan = FaultPlan(rules=(
            FaultRule(op="allocate", error="ENOMEM",
                      start_s=10.0, end_s=20.0, count=STICKY),))
        injector = FaultInjector(plan)
        assert injector.should_fail("allocate") is None
        injector.advance(15.0)
        assert injector.should_fail("allocate") is not None
        injector.advance(25.0)
        assert injector.should_fail("allocate") is None

    def test_events_record_each_firing(self):
        plan = FaultPlan(rules=(
            FaultRule(op="online", error="EINVAL", label="boom"),))
        injector = FaultInjector(plan)
        injector.advance(3.0)
        injector.should_fail("online", 9)
        assert injector.events == [{"op": "online", "error": "EINVAL",
                                    "target": 9, "time_s": 3.0,
                                    "rule": "boom"}]


class TestWrappers:
    def test_injected_ebusy_counts_and_carries_model_latency(self):
        plan = FaultPlan(rules=(
            FaultRule(op="offline", error="EBUSY", count=1),))
        system = make_system(plan)
        result = system.hotplug.try_offline_block(system.mm.num_blocks - 1)
        assert not result.success
        assert result.errno_name == "EBUSY"
        latency_model = system.hotplug.latency
        assert result.latency_s == pytest.approx(
            latency_model.failure_ebusy_s)
        assert system.hotplug.stats.ebusy_failures == 1
        assert system.fault_injector.stats.as_dict() == {"offline:EBUSY": 1}

    def test_injected_eagain_raises_through_raising_api(self):
        plan = FaultPlan(rules=(
            FaultRule(op="offline", error="EBUSY", target=5, count=STICKY),))
        system = make_system(plan)
        with pytest.raises(OfflineBusyError):
            system.hotplug.offline_block(5)

    def test_injected_enomem_raises_allocation_error(self):
        plan = FaultPlan(rules=(
            FaultRule(op="allocate", error="ENOMEM", count=1),))
        system = make_system(plan)
        with pytest.raises(AllocationError):
            system.mm.allocate("app", 10)
        # Budget spent: the next allocation goes through.
        system.mm.allocate("app", 10)

    def test_injected_wakeup_timeout_charges_wait(self):
        plan = FaultPlan(rules=(
            FaultRule(op="prepare_online", error="ETIMEDOUT",
                      extra_latency_s=2e-4, count=1),))
        system = make_system(plan)
        system.hotplug.offline_block(system.mm.num_blocks - 1)
        system.power_control.block_offlined(system.mm.num_blocks - 1, 0.0)
        with pytest.raises(WakeupTimeoutError) as excinfo:
            system.power_control.prepare_online(system.mm.num_blocks - 1, 1.0)
        assert excinfo.value.wait_s == pytest.approx(2e-4)
        assert system.power_control.wakeup_wait_s == pytest.approx(2e-4)

    def test_injected_online_failure(self):
        plan = FaultPlan(rules=(
            FaultRule(op="online", error="EINVAL", count=1),))
        system = make_system(plan)
        block = system.mm.num_blocks - 1
        system.hotplug.offline_block(block)
        with pytest.raises(OnlineError):
            system.hotplug.online_block(block)
        # Budget spent: the retry succeeds.
        assert system.hotplug.online_block(block) > 0

    def test_migration_stall_extends_offline_latency(self):
        plan = FaultPlan(rules=(
            FaultRule(op="migration", error="STALL",
                      extra_latency_s=5e-3, count=1),))
        faulty = make_system(plan)
        clean = make_system()
        block = faulty.mm.num_blocks - 1
        stalled = faulty.hotplug.try_offline_block(block)
        plain = clean.hotplug.try_offline_block(block)
        assert stalled.success and plain.success
        assert stalled.latency_s == pytest.approx(plain.latency_s + 5e-3)

    def test_wrappers_delegate_everything_else(self):
        system = make_system(storm_plan(1, intensity=0.1))
        assert system.mm.total_pages == system.mm.inner.total_pages
        assert system.hotplug.offline_blocks() == []


class TestContext:
    def test_context_plan_reaches_new_systems(self):
        plan = FaultPlan(rules=(
            FaultRule(op="allocate", error="ENOMEM", count=1),))
        with active_plan(plan):
            assert get_active_plan() is plan
            system = make_system()  # no explicit plan: inherits the context
            assert system.fault_plan is plan
            with pytest.raises(AllocationError):
                system.mm.allocate("app", 1)
        assert get_active_plan() is None
        counts = drain_fault_counts()
        assert counts == {"allocate:ENOMEM": 1}
        assert drain_fault_counts() == {}  # drained exactly once

    def test_explicit_plan_beats_context(self):
        explicit = FaultPlan(name="explicit")
        ambient = FaultPlan(name="ambient")
        with active_plan(ambient):
            system = make_system(explicit)
        assert system.fault_plan is explicit


class TestDeterminism:
    def _drive(self, plan):
        """An oscillating footprint: hot-plug traffic across the whole
        storm window, with injected ENOMEM handled the way the server
        model handles it (emergency on-line, then move on)."""
        system = make_system(plan, transient_failure_probability=0.9,
                             seed=21)
        app_pages = 0
        for t in range(40):
            try:
                if t % 6 < 3:
                    system.mm.allocate("app", 2 * system.mm.block_pages)
                    app_pages += 2 * system.mm.block_pages
                elif app_pages:
                    system.mm.free_pages_of("app", 2 * system.mm.block_pages)
                    app_pages -= 2 * system.mm.block_pages
            except AllocationError:
                system.daemon.emergency_online(2 * system.mm.block_pages,
                                               float(t))
            system.step(float(t))
        return (list(system.daemon.event_log),
                system.daemon.stats,
                system.fault_injector.stats.as_dict(),
                system.fault_injector.events)

    def test_same_plan_same_seed_bitwise_identical(self):
        plan = storm_plan(42, intensity=8.0, duration_s=40.0, num_blocks=64)
        first = self._drive(plan)
        second = self._drive(FaultPlan.from_json(plan.canonical()))
        assert first == second
        assert first[2], "the storm must actually inject faults"

    def test_runner_parallel_matches_inline_with_fault_plan(self):
        from repro.runner import ExperimentJob, ParallelRunner

        plan_json = storm_plan(7, intensity=2.0, duration_s=60.0,
                               num_blocks=128).canonical()
        jobs = [ExperimentJob("tab2", fast=True, fault_plan=plan_json)]
        inline = ParallelRunner(workers=1).run(jobs)
        # Forked pool workers inherit this process's memoized matrix;
        # clear it so the worker genuinely re-executes the experiment.
        from repro.experiments.blocksize_study import _cached_matrix

        _cached_matrix.cache_clear()
        pooled = ParallelRunner(workers=2).run(jobs)
        assert inline[0].ok and pooled[0].ok
        assert inline[0].result == pooled[0].result
        assert inline[0].result.render() == pooled[0].result.render()
        assert inline[0].faults == pooled[0].faults
        assert inline[0].faults, "fault counters must survive the pool trip"

    def test_job_without_plan_reports_no_faults(self):
        from repro.runner import ExperimentJob, ParallelRunner

        outcome = ParallelRunner(workers=1).run(
            [ExperimentJob("tab1", fast=True)])[0]
        assert outcome.ok
        assert not outcome.faults


class TestPoliciesUnderStorm:
    """Every in-kernel power policy must survive a seeded fault storm.

    The storm batters the hot-plug and allocation paths; policies that
    never off-line blocks still face the allocation-pressure spikes.
    The run must complete (no wedged online/offline loops), faults must
    actually be injected, and the policy's power view must stay sane.
    """

    @pytest.mark.parametrize("policy", policy_names())
    def test_storm_run_completes(self, policy):
        import dataclasses

        from repro.sim.server import ServerSimulator
        from repro.workloads.registry import profile_by_name

        plan = storm_plan(303, intensity=4.0, duration_s=60.0,
                          num_blocks=32)
        org = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                 dimms_per_channel=1, ranks_per_dimm=2)
        system = make_system(plan=plan, policy=policy, organization=org)
        simulator = ServerSimulator(system, seed=5)
        profile = dataclasses.replace(profile_by_name("429.mcf"),
                                      duration_s=60.0)
        result = simulator.run_workload(profile, epoch_s=1.0)

        assert result.samples, "the run must produce epoch samples"
        assert system.fault_injector is not None
        assert system.fault_injector.stats.total > 0, \
            "the storm must actually inject faults"
        assert 0.0 <= system.policy.dpd_fraction() <= 1.0
        assert result.dram_energy_j > 0.0
        assert result.baseline_dram_energy_j >= result.dram_energy_j > 0.0 \
            or system.policy.extra_power_w() > 0.0
        # The policy's stats surface stays live after the storm and no
        # emergency/online loop wedged the daemon mid-transition.
        assert math.isfinite(system.policy.stats.busy_s)
        assert isinstance(system.policy.monitor_is_noop(), bool)
