"""Swap-space model and its integration with the server simulator."""

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.errors import ConfigurationError
from repro.experiments.blocksize_study import study_organization
from repro.os.swap import SwapDeviceModel, SwapSpace
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads import profile_by_name


class TestSwapSpace:
    def test_swap_out_and_in_roundtrip(self):
        swap = SwapSpace(size_bytes=GIB)
        stall_out = swap.swap_out("app", 1000)
        assert stall_out > 0
        assert swap.held_for("app") == 1000
        stall_in = swap.swap_in("app", 400)
        assert stall_in > 0
        assert swap.held_for("app") == 600
        assert swap.stats.pages_swapped_out == 1000
        assert swap.stats.pages_swapped_in == 400

    def test_swap_in_caps_at_held(self):
        swap = SwapSpace(size_bytes=GIB)
        swap.swap_out("app", 10)
        swap.swap_in("app", 1000)
        assert swap.held_for("app") == 0

    def test_exhaustion_raises(self):
        swap = SwapSpace(size_bytes=1 * MIB)
        with pytest.raises(ConfigurationError):
            swap.swap_out("app", 10_000)

    def test_drop_discards_without_io(self):
        swap = SwapSpace(size_bytes=GIB)
        swap.swap_out("app", 100)
        io_before = swap.stats.total_io_pages
        assert swap.drop("app", 40) == 40
        assert swap.held_for("app") == 60
        assert swap.stats.total_io_pages == io_before

    def test_release_clears_owner(self):
        swap = SwapSpace(size_bytes=GIB)
        swap.swap_out("vm1", 100)
        assert swap.release("vm1") == 100
        assert swap.held_for("vm1") == 0
        assert swap.free_pages == swap.size_pages

    def test_device_time_model(self):
        device = SwapDeviceModel(bandwidth_bytes_per_s=100e6,
                                 per_op_latency_s=1e-3)
        # 1000 pages = 4.096MB at 100MB/s -> ~41ms + 1ms op latency.
        assert device.transfer_time_s(1000) == pytest.approx(0.042, rel=0.02)
        assert device.transfer_time_s(0) == 0.0

    def test_zero_pages_are_noops(self):
        swap = SwapSpace(size_bytes=GIB)
        assert swap.swap_out("a", 0) == 0.0
        assert swap.swap_in("a", 10) == 0.0
        assert swap.drop("a", 5) == 0


class TestThrashingMechanism:
    """Section 4.2: reserves below ~10% make allocation bursts spill to
    swap because the monitor cannot on-line blocks fast enough."""

    def _run(self, off_thr: float, on_thr: float):
        config = GreenDIMMConfig(off_thr_fraction=off_thr,
                                 on_thr_fraction=on_thr,
                                 block_bytes=128 * MIB)
        system = GreenDIMMSystem(organization=study_organization(),
                                 config=config,
                                 kernel_boot_bytes=512 * MIB,
                                 transient_failure_probability=0.5, seed=3)
        simulator = ServerSimulator(system, seed=3)
        result = simulator.run_workload(profile_by_name("470.lbm"),
                                        epoch_s=1.0)
        return result, simulator.swap.stats

    def test_tiny_reserve_thrashes(self):
        _result, stats = self._run(0.03, 0.02)
        assert stats.pages_swapped_out > 0
        assert stats.stall_s > 0

    def test_paper_reserve_does_not(self):
        _result, stats = self._run(0.12, 0.105)
        assert stats.pages_swapped_out == 0

    def test_swap_stall_appears_in_overhead(self):
        thrashing, stats = self._run(0.03, 0.02)
        healthy, _ = self._run(0.12, 0.105)
        assert stats.stall_s > 0
        assert thrashing.overhead_fraction > healthy.overhead_fraction

    def test_swapped_pages_recover(self):
        result, stats = self._run(0.03, 0.02)
        # Everything swapped out eventually came back (or was dropped
        # when the footprint shrank); the run ends with swap near-empty.
        assert stats.pages_swapped_in + result.swap_shortfall_pages >= 0
