"""Cross-cutting coverage: fallbacks, wiring, and secondary platforms."""

import pytest

from repro.core.config import SelectionPolicy
from repro.core.mapping import PowerBlockMap
from repro.core.selector import BlockSelector
from repro.core.system import GreenDIMMSystem
from repro.dram.address import AddressMapping
from repro.dram.device import DRAMDeviceConfig
from repro.dram.organization import (
    MemoryOrganization,
    azure_server_memory,
    scaled_server_memory,
)
from repro.errors import (
    HotplugError,
    OfflineAgainError,
    OfflineBusyError,
    ReproError,
)
from repro.power.idd import _idd_for
from repro.power.model import DRAMPowerModel
from repro.units import GIB, MIB, PAGE_SIZE


class TestErrorHierarchy:
    def test_everything_is_reproerror(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not ReproError:
                    assert issubclass(obj, ReproError), name

    def test_errno_names(self):
        assert OfflineBusyError.errno_name == "EBUSY"
        assert OfflineAgainError.errno_name == "EAGAIN"
        assert HotplugError.errno_name == "EIO"


class TestIDDFallback:
    def test_unknown_density_scales_generically(self):
        exotic = DRAMDeviceConfig(name="DDR4-16Gb-x8",
                                  density_bits=16 * (1 << 30), width=8)
        idd = _idd_for(exotic)
        reference = _idd_for(DRAMDeviceConfig(
            name="DDR4-4Gb-x8", density_bits=4 * (1 << 30), width=8))
        assert idd.idd2n == pytest.approx(reference.idd2n * 4)
        assert idd.idd6 == pytest.approx(reference.idd6 * 4)

    def test_fallback_powers_a_model(self):
        exotic = DRAMDeviceConfig(name="DDR4-16Gb-x8",
                                  density_bits=16 * (1 << 30), width=8)
        org = MemoryOrganization(device=exotic, channels=2,
                                 dimms_per_channel=1, ranks_per_dimm=1)
        model = DRAMPowerModel(org)
        assert model.idle_power().total_w > 0


class TestAzurePlatformMapping:
    def test_1gb_blocks_are_group_slices(self):
        """256GB platform: a 4GB group spans four 1GB blocks."""
        org = azure_server_memory()
        block_map = PowerBlockMap(AddressMapping(org), GIB)
        assert block_map.num_blocks == 256
        assert block_map.group_bytes == 4 * GIB
        assert block_map.blocks_per_group == 4
        assert block_map.fully_offline_groups({0, 1, 2}) == []
        assert block_map.fully_offline_groups({0, 1, 2, 3}) == [0]

    def test_scaled_orgs_keep_group_invariant(self):
        for capacity in (128, 512, 1024):
            org = scaled_server_memory(capacity)
            assert org.num_subarray_groups == 64
            mapping = AddressMapping(org)
            assert mapping.group_is_contiguous()


class TestSystemWiring:
    def test_system_exposes_sysfs(self, small_system):
        size = int(small_system.sysfs.read("block_size_bytes"), 16)
        assert size == 64 * MIB

    def test_ksm_disabled_by_default(self, small_system):
        assert small_system.ksm is None

    def test_ksm_enabled_wiring(self):
        system = GreenDIMMSystem(enable_ksm=True, seed=2)
        assert system.ksm is not None
        assert system.daemon.ksm is system.ksm

    def test_kernel_boot_allocation(self, small_system):
        assert small_system.mm.owner_pages("kernel") == 256 * MIB // PAGE_SIZE

    def test_step_is_idempotent_when_idle(self, small_system):
        for t in range(30):
            small_system.step(float(t))
        before = small_system.daemon.offline_block_count
        for t in range(30, 40):
            small_system.step(float(t))
        assert small_system.daemon.offline_block_count == before


class TestSelectorStaleness:
    def test_fresh_view_sees_current_state(self, small_system):
        selector = BlockSelector(small_system.hotplug,
                                 SelectionPolicy.REMOVABLE_FIRST,
                                 stale_view=False)
        first = selector.candidates(4)
        small_system.mm.allocate("late", 128)
        second = selector.candidates(4)
        assert all(small_system.hotplug.removable(b) for b in second)
        assert first  # sanity

    def test_stale_view_lags_one_pass(self, small_system):
        selector = BlockSelector(small_system.hotplug,
                                 SelectionPolicy.REMOVABLE_FIRST,
                                 stale_view=True)
        first = selector.candidates(small_system.mm.num_blocks)
        # Dirty the top block after the snapshot.
        from repro.os.page import OwnerKind

        top = max(first)
        start, _count = small_system.mm.block_range(top)
        # Fill lower blocks so an allocation lands in `top`: instead just
        # verify the stale snapshot still offers `top` as free.
        second = selector.candidates(small_system.mm.num_blocks)
        assert top in second  # from the stale (previous) snapshot

    def test_random_policy_ignores_flags(self, small_system):
        selector = BlockSelector(small_system.hotplug,
                                 SelectionPolicy.RANDOM)
        small_system.mm.allocate("drv", 8, kind=__import__(
            "repro.os.page", fromlist=["OwnerKind"]).OwnerKind.PINNED)
        pool = selector.candidates(small_system.mm.num_blocks)

        unremovable = [b for b in pool
                       if not small_system.hotplug.removable(b)]
        assert unremovable  # random proposes blocks removable-first skips
