"""Golden equivalence: the kernel reproduces the pre-refactor loops.

``tests/golden/kernel_golden.json`` was recorded from the hand-rolled
``run_workload``/``run_vm_trace``/``run_mix`` loops *before* they were
rebuilt on :mod:`repro.sim.kernel`.  Every scenario (workload, vm-trace,
mix; pinned churn on and off; a fault storm) must still produce the
identical sample stream, energies, daemon statistics, and fast-forward
accounting — with the fast path on and off.  Floats are compared via
their ``float.hex()`` encodings, so this really is bit-for-bit.

Regenerate (only when intentionally changing simulation semantics):
``PYTHONPATH=src python tests/kernel_scenarios.py``
"""

import json

import pytest

from tests.kernel_scenarios import GOLDEN_PATH, SCENARIOS

GOLDENS = json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("path", ["slow", "fast"])
def test_kernel_matches_pre_refactor_golden(name, path):
    recorded = GOLDENS[name][path]
    current = SCENARIOS[name](path == "fast")
    for key in recorded:
        assert current[key] == recorded[key], (
            f"{name}/{path}: {key} diverged from the pre-kernel recording")
    assert set(current) == set(recorded)
