"""Trace/result serialization round trips."""

import pytest

from repro.errors import ConfigurationError
from repro.io import (
    load_azure_trace,
    load_epoch_samples,
    load_footprint_trace,
    save_azure_trace,
    save_epoch_samples,
    save_footprint_trace,
)
from repro.sim.server import EpochSample
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.trace import FootprintTrace, oscillating_trace


class TestFootprintRoundTrip:
    def test_roundtrip(self, tmp_path):
        trace = oscillating_trace(600.0, 100, 500, cycles=3)
        path = tmp_path / "trace.json"
        save_footprint_trace(trace, path)
        loaded = load_footprint_trace(path)
        assert loaded.points == trace.points
        assert loaded.at(123.0) == trace.at(123.0)

    def test_wrong_kind_rejected(self, tmp_path):
        trace = FootprintTrace.of([(0, 1)])
        path = tmp_path / "trace.json"
        save_footprint_trace(trace, path)
        with pytest.raises(ConfigurationError):
            load_azure_trace(path)


class TestAzureRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = AzureTraceGenerator(duration_s=2 * 3600.0, seed=3).generate()
        path = tmp_path / "azure.json"
        save_azure_trace(trace, path)
        loaded = load_azure_trace(path)
        assert loaded.capacity_bytes == trace.capacity_bytes
        assert len(loaded.events) == len(trace.events)
        assert len(loaded.samples) == len(trace.samples)
        assert loaded.mean_utilization == pytest.approx(
            trace.mean_utilization)
        for original, copy in zip(trace.events, loaded.events):
            assert copy.time_s == original.time_s
            assert copy.kind == original.kind
            assert copy.instance.vm_id == original.instance.vm_id
            assert (copy.instance.vm_type.memory_bytes
                    == original.instance.vm_type.memory_bytes)

    def test_instances_shared_between_events(self, tmp_path):
        trace = AzureTraceGenerator(duration_s=4 * 3600.0, seed=4).generate()
        path = tmp_path / "azure.json"
        save_azure_trace(trace, path)
        loaded = load_azure_trace(path)
        by_id = {}
        for event in loaded.events:
            vm = event.instance
            assert by_id.setdefault(vm.vm_id, vm) is vm

    def test_replayable(self, tmp_path):
        """A loaded trace drives the simulator identically to a fresh one."""
        from repro.core.config import GreenDIMMConfig
        from repro.core.system import GreenDIMMSystem
        from repro.dram.device import DDR4_4GB_X8
        from repro.dram.organization import MemoryOrganization
        from repro.sim.server import ServerSimulator
        from repro.units import GIB, MIB

        trace = AzureTraceGenerator(capacity_bytes=24 * GIB,
                                    duration_s=3600.0, seed=5).generate()
        path = tmp_path / "azure.json"
        save_azure_trace(trace, path)
        loaded = load_azure_trace(path)

        def replay(t):
            org = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                     dimms_per_channel=2, ranks_per_dimm=2)
            system = GreenDIMMSystem(
                organization=org, config=GreenDIMMConfig(block_bytes=512 * MIB),
                kernel_boot_bytes=GIB, transient_failure_probability=0.5,
                seed=6)
            return ServerSimulator(system, seed=6).run_vm_trace(t, epoch_s=10.0)

        first = replay(trace)
        second = replay(loaded)
        assert [s.offline_blocks for s in first.samples] == [
            s.offline_blocks for s in second.samples]


class TestEpochSamples:
    def test_roundtrip(self, tmp_path):
        samples = [EpochSample(time_s=float(t), used_pages=100 + t,
                               free_pages=900 - t, offline_blocks=t % 5,
                               dpd_fraction=t / 100.0, dram_power_w=4.2)
                   for t in range(20)]
        path = tmp_path / "samples.json"
        save_epoch_samples(samples, path)
        assert load_epoch_samples(path) == samples
