"""Mode-register file: the MRS path behind gating updates."""

import pytest

from repro.core.mapping import PowerBlockMap
from repro.core.power_control import GreenDIMMPowerControl
from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.errors import ConfigurationError
from repro.memctrl.moderegister import (
    MRS_PAYLOAD_BITS,
    ModeRegisterFile,
    TMRD_NS,
)
from repro.units import GIB


class TestModeRegisterFile:
    def test_initial_state(self):
        mrf = ModeRegisterFile(total_ranks=4)
        assert mrf.consistent()
        assert mrf.rank_state(0).subarray_gate_mask == 0
        assert mrf.command_counts() == {0: 0, 1: 0, 2: 0, 3: 0}

    def test_single_slice_update_costs_one_mrs(self):
        mrf = ModeRegisterFile(total_ranks=1)
        latency = mrf.program_gate_mask(0, 1)
        assert latency == pytest.approx(TMRD_NS)
        assert mrf.rank_state(0).mrs_commands == 1

    def test_multi_slice_update(self):
        mrf = ModeRegisterFile(total_ranks=1)
        # Bits in slices 0 and 3 -> two MRS writes.
        mask = 1 | (1 << (3 * MRS_PAYLOAD_BITS))
        latency = mrf.program_gate_mask(0, mask)
        assert latency == pytest.approx(2 * TMRD_NS)

    def test_unchanged_mask_is_free(self):
        mrf = ModeRegisterFile(total_ranks=1)
        mrf.program_gate_mask(0, 0xFF)
        assert mrf.program_gate_mask(0, 0xFF) == 0.0

    def test_incremental_update_touches_changed_slice_only(self):
        mrf = ModeRegisterFile(total_ranks=1)
        mrf.program_gate_mask(0, 0x1)
        latency = mrf.program_gate_mask(0, 0x3)  # same slice
        assert latency == pytest.approx(TMRD_NS)

    def test_broadcast_keeps_ranks_lockstep(self):
        mrf = ModeRegisterFile(total_ranks=16)
        mrf.broadcast_gate_mask((1 << 40) | 1)
        assert mrf.consistent()
        assert all(state == 2 for state in mrf.command_counts().values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModeRegisterFile(total_ranks=0)
        with pytest.raises(ConfigurationError):
            ModeRegisterFile(total_ranks=1, mask_bits=30)
        mrf = ModeRegisterFile(total_ranks=1)
        with pytest.raises(ConfigurationError):
            mrf.program_gate_mask(0, 1 << 64)
        with pytest.raises(ConfigurationError):
            mrf.program_gate_mask(5, 1)


class TestPowerControlIntegration:
    def test_gating_programs_every_rank(self):
        org = spec_server_memory()
        control = GreenDIMMPowerControl(
            PowerBlockMap(AddressMapping(org), GIB), pair_gating=False)
        control.block_offlined(7)
        assert control.mode_registers.consistent()
        state = control.mode_registers.rank_state(0)
        assert state.subarray_gate_mask == control.register.raw_value()
        assert control.mrs_time_ns > 0

    def test_ungating_syncs_too(self):
        org = spec_server_memory()
        control = GreenDIMMPowerControl(
            PowerBlockMap(AddressMapping(org), GIB), pair_gating=False)
        control.block_offlined(7)
        control.prepare_online(7)
        assert control.mode_registers.rank_state(3).subarray_gate_mask == 0
        assert control.mode_registers.consistent()
