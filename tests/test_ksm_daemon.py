"""ksmd: scanning, merging, CoW, and registration."""

import pytest

from repro.errors import ConfigurationError
from repro.ksm.content import RegionContent, chunk_fingerprint, unique_fingerprint
from repro.ksm.daemon import KSMConfig, KSMDaemon
from repro.ksm.madvise import MADV_UNMERGEABLE, MadviseRegistry
from repro.os.mm import PhysicalMemoryManager
from repro.units import GIB, PAGE_SIZE


def make_setup(total=8 * GIB):
    mm = PhysicalMemoryManager(total_bytes=total)
    return mm, KSMDaemon(mm)


def add_vm(mm, ksm, name, image_id, gib=1, zero=0.15, image=0.35):
    pages = gib * GIB // PAGE_SIZE
    mm.allocate(name, pages)
    ksm.register(RegionContent(owner_id=name, total_pages=pages,
                               image_id=image_id, zero_fraction=zero,
                               image_fraction=image))
    return pages


class TestConfig:
    def test_paper_parameters(self):
        # Section 5.3: 1000 pages per scan, 50ms period, ~10% of a core.
        config = KSMConfig()
        assert config.pages_to_scan == 1000
        assert config.scan_period_s == 0.050
        assert config.cpu_utilization == pytest.approx(0.10)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            KSMConfig(pages_to_scan=0)


class TestFingerprints:
    def test_chunk_fingerprints_shared_across_vms(self):
        assert chunk_fingerprint(3, 7) == chunk_fingerprint(3, 7)
        assert chunk_fingerprint(3, 7) != chunk_fingerprint(4, 7)

    def test_unique_fingerprints_differ(self):
        assert unique_fingerprint("a", 0) != unique_fingerprint("b", 0)

    def test_fingerprints_never_zero(self):
        assert chunk_fingerprint(0, 0) != 0
        assert unique_fingerprint("a", 0) != 0


class TestContentRegion:
    def test_composition_sums(self):
        region = RegionContent(owner_id="v", total_pages=10000, image_id=1)
        stats = region.stats()
        assert stats.total_pages == 10000

    def test_scan_progress(self):
        region = RegionContent(owner_id="v", total_pages=1000, image_id=1)
        zero, chunks = region.advance_scan(500)
        assert zero == pytest.approx(75, abs=1)
        assert region.scanned_pages == 500
        assert not region.pass_complete
        region.advance_scan(500)
        assert region.pass_complete

    def test_scan_caps_at_region_end(self):
        region = RegionContent(owner_id="v", total_pages=100, image_id=1)
        region.advance_scan(1000)
        zero, chunks = region.advance_scan(10)
        assert zero == 0 and chunks == ()

    def test_reset_pass(self):
        region = RegionContent(owner_id="v", total_pages=100, image_id=1)
        region.advance_scan(100)
        region.reset_pass()
        assert region.scanned_pages == 0


class TestMerging:
    def test_zero_pages_merge_within_one_vm(self):
        mm, ksm = make_setup()
        add_vm(mm, ksm, "vm0", image_id=0, zero=0.3, image=0.0)
        before = mm.used_pages
        for _ in range(60):
            ksm.step(1.0)
        saved = before - mm.used_pages
        # ~30% of the region is zero pages; nearly all should merge.
        assert saved > 0.25 * before

    def test_same_image_vms_share_chunks(self):
        mm, ksm = make_setup()
        add_vm(mm, ksm, "vm0", image_id=1, zero=0.0, image=0.5)
        add_vm(mm, ksm, "vm1", image_id=1, zero=0.0, image=0.5)
        for _ in range(120):
            ksm.step(1.0)
        # One VM's worth of image pages should be deduplicated.
        assert ksm.stats.pages_merged > 0.2 * (GIB // PAGE_SIZE)

    def test_different_images_do_not_merge(self):
        mm, ksm = make_setup()
        add_vm(mm, ksm, "vm0", image_id=1, zero=0.0, image=0.5)
        add_vm(mm, ksm, "vm1", image_id=2, zero=0.0, image=0.5)
        for _ in range(120):
            ksm.step(1.0)
        assert ksm.stats.pages_merged == 0

    def test_unique_pages_never_merge(self):
        mm, ksm = make_setup()
        add_vm(mm, ksm, "vm0", image_id=1, zero=0.0, image=0.0)
        add_vm(mm, ksm, "vm1", image_id=1, zero=0.0, image=0.0)
        for _ in range(60):
            ksm.step(1.0)
        assert ksm.stats.pages_merged == 0

    def test_pass_completion_flag(self):
        mm, ksm = make_setup()
        add_vm(mm, ksm, "vm0", image_id=1)
        completed = False
        for _ in range(120):
            ksm.step(1.0)
            completed = completed or ksm.pass_just_completed
        assert completed
        assert ksm.stats.passes_completed >= 1

    def test_saved_pages_accounting(self):
        mm, ksm = make_setup()
        add_vm(mm, ksm, "vm0", image_id=1, zero=0.3)
        for _ in range(60):
            ksm.step(1.0)
        assert ksm.saved_pages("vm0") == ksm.total_saved_pages
        assert ksm.saved_pages("vm0") > 0


class TestUnregister:
    def test_exit_releases_shares(self):
        mm, ksm = make_setup()
        add_vm(mm, ksm, "vm0", image_id=1)
        add_vm(mm, ksm, "vm1", image_id=1)
        for _ in range(120):
            ksm.step(1.0)
        ksm.unregister("vm1")
        mm.free_all("vm1")
        assert ksm.saved_pages("vm1") == 0
        # vm0's shares survive.
        assert ksm.saved_pages("vm0") >= 0

    def test_unregister_unknown_is_noop(self):
        _mm, ksm = make_setup()
        ksm.unregister("ghost")

    def test_step_with_no_regions(self):
        _mm, ksm = make_setup()
        assert ksm.step(1.0) == 0


class TestMadvise:
    def test_registry_rejects_duplicates(self):
        registry = MadviseRegistry()
        region = RegionContent(owner_id="a", total_pages=10, image_id=0)
        registry.madvise(region)
        with pytest.raises(ConfigurationError):
            registry.madvise(region)

    def test_unmergeable_removes(self):
        registry = MadviseRegistry()
        region = RegionContent(owner_id="a", total_pages=10, image_id=0)
        registry.madvise(region)
        registry.madvise(region, advice=MADV_UNMERGEABLE)
        assert "a" not in registry

    def test_total_pages(self):
        registry = MadviseRegistry()
        registry.madvise(RegionContent(owner_id="a", total_pages=10, image_id=0))
        registry.madvise(RegionContent(owner_id="b", total_pages=32, image_id=0))
        assert registry.total_pages == 42

    def test_region_lookup(self):
        registry = MadviseRegistry()
        with pytest.raises(ConfigurationError):
            registry.region_of("nope")


class TestChecksumStability:
    """ksmd only trusts pages whose checksum held across passes."""

    def test_volatile_content_never_merges(self):
        mm, ksm = make_setup()
        pages = GIB // PAGE_SIZE
        for name in ("vm0", "vm1"):
            mm.allocate(name, pages)
            ksm.register(RegionContent(owner_id=name, total_pages=pages,
                                       image_id=1, zero_fraction=0.0,
                                       image_fraction=0.5,
                                       volatile_fraction=1.0))
        for _ in range(120):
            ksm.step(1.0)
        assert ksm.stats.pages_merged == 0

    def test_partial_volatility_reduces_merging(self):
        def merged_with(volatile):
            mm, ksm = make_setup()
            pages = GIB // PAGE_SIZE
            for name in ("vm0", "vm1"):
                mm.allocate(name, pages)
                ksm.register(RegionContent(
                    owner_id=name, total_pages=pages, image_id=1,
                    zero_fraction=0.2, image_fraction=0.4,
                    volatile_fraction=volatile))
            for _ in range(120):
                ksm.step(1.0)
            return ksm.stats.pages_merged

        quiet = merged_with(0.0)
        hot = merged_with(0.5)
        assert 0 < hot < quiet

    def test_volatility_is_content_deterministic(self):
        a = RegionContent(owner_id="a", total_pages=1000, image_id=3,
                          volatile_fraction=0.4)
        b = RegionContent(owner_id="b", total_pages=9999, image_id=3,
                          volatile_fraction=0.4)
        for chunk in range(64):
            assert a.chunk_is_volatile(chunk) == b.chunk_is_volatile(chunk)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegionContent(owner_id="a", total_pages=10, image_id=0,
                          volatile_fraction=1.5)
