"""Memory on/off-lining: success paths, EBUSY/EAGAIN, latencies (Table 3)."""

import random

import pytest

from repro.errors import OfflineAgainError, OfflineBusyError, OnlineError
from repro.os.hotplug import (
    HotplugLatencyModel,
    MemoryBlockManager,
    MemoryBlockState,
    MIGRATION_ATTEMPTS,
)
from repro.os.mm import PhysicalMemoryManager
from repro.os.page import OwnerKind
from repro.units import GIB, MIB, MICROSECOND, MILLISECOND


def managed(total=4 * GIB, fail_p=0.0, seed=0):
    mm = PhysicalMemoryManager(total_bytes=total, block_bytes=128 * MIB,
                               movable_fraction=0.75)
    return mm, MemoryBlockManager(mm, transient_failure_probability=fail_p,
                                  rng=random.Random(seed))


def top_free_block(mm):
    return max(i for i in range(mm.num_blocks) if mm.block_is_free(i))


class TestOfflineSuccess:
    def test_free_block_offlines_without_migration(self):
        mm, mgr = managed()
        block = top_free_block(mm)
        result = mgr.offline_block(block)
        assert result.success and result.migrated_pages == 0
        assert mgr.state(block) is MemoryBlockState.OFFLINE
        assert result.latency_s == pytest.approx(1.58 * MILLISECOND)

    def test_offline_shrinks_memtotal(self):
        mm, mgr = managed()
        before = mm.meminfo().total_pages
        mgr.offline_block(top_free_block(mm))
        after = mm.meminfo().total_pages
        assert before - after == mm.block_pages

    def test_offlined_block_cannot_serve_allocations(self):
        mm, mgr = managed()
        for block in sorted(range(mm.num_blocks), reverse=True):
            if mm.block_is_free(block):
                mgr.offline_block(block)
        free = mm.free_pages
        if free:
            extents = mm.allocate("a", free)
            offline = set(mgr.offline_blocks())
            for extent in extents:
                assert extent.pfn // mm.block_pages not in offline

    def test_offline_with_migration(self):
        mm, mgr = managed(fail_p=0.0)
        mm.allocate("app", mm.block_pages // 2)
        used_block = next(i for i in range(mm.num_blocks)
                          if not mm.block_is_free(i)
                          and mm.block_is_removable(i))
        result = mgr.offline_block(used_block)
        assert result.success
        assert result.migrated_pages > 0
        assert result.latency_s > 1.58 * MILLISECOND
        assert mm.owner_pages("app") == mm.block_pages // 2

    def test_double_offline_rejected(self):
        mm, mgr = managed()
        block = top_free_block(mm)
        mgr.offline_block(block)
        with pytest.raises(OnlineError):
            mgr.offline_block(block)


class TestEBUSY:
    def test_unmovable_pages_give_ebusy(self):
        mm, mgr = managed()
        extents = mm.allocate("drv", 8, kind=OwnerKind.PINNED)
        block = extents[0].pfn // mm.block_pages
        with pytest.raises(OfflineBusyError) as excinfo:
            mgr.offline_block(block)
        assert excinfo.value.latency_s == pytest.approx(6 * MICROSECOND)
        assert excinfo.value.errno_name == "EBUSY"
        assert mgr.state(block) is MemoryBlockState.ONLINE

    def test_ebusy_counted(self):
        mm, mgr = managed()
        extents = mm.allocate("drv", 8, kind=OwnerKind.PINNED)
        block = extents[0].pfn // mm.block_pages
        mgr.try_offline_block(block)
        assert mgr.stats.ebusy_failures == 1


class TestEAGAIN:
    def test_migration_failures_give_eagain(self):
        mm, mgr = managed(fail_p=1.0)
        mm.allocate("app", 64)
        block = next(i for i in range(mm.num_blocks)
                     if not mm.block_is_free(i) and mm.block_is_removable(i))
        with pytest.raises(OfflineAgainError) as excinfo:
            mgr.offline_block(block)
        assert excinfo.value.latency_s == pytest.approx(4.37 * MILLISECOND)
        assert excinfo.value.errno_name == "EAGAIN"

    def test_eagain_leaves_block_usable(self):
        mm, mgr = managed(fail_p=1.0)
        mm.allocate("app", 64)
        block = next(i for i in range(mm.num_blocks) if not mm.block_is_free(i))
        free_before = mm.free_pages
        mgr.try_offline_block(block)
        assert mgr.state(block) is MemoryBlockState.ONLINE
        assert mm.free_pages == free_before

    def test_eagain_costs_about_3x_success(self):
        # Table 3: 4.37ms vs 1.58ms — three failed migration attempts.
        latency = HotplugLatencyModel()
        assert latency.failure_eagain_s / latency.offline_success_s == (
            pytest.approx(4.37 / 1.58, rel=1e-6))
        assert MIGRATION_ATTEMPTS == 3

    def test_full_memory_migration_eagain(self):
        mm, mgr = managed(fail_p=0.0)
        mm.allocate("fill", mm.total_pages - 64)
        block = next(i for i in range(mm.num_blocks)
                     if not mm.block_is_free(i) and mm.block_is_removable(i))
        with pytest.raises(OfflineAgainError):
            mgr.offline_block(block)


class TestOnline:
    def test_online_restores_capacity(self):
        mm, mgr = managed()
        block = top_free_block(mm)
        mgr.offline_block(block)
        latency = mgr.online_block(block)
        assert latency == pytest.approx(3.44 * MILLISECOND)
        assert mgr.state(block) is MemoryBlockState.ONLINE
        assert mm.meminfo().total_pages == mm.total_pages

    def test_online_of_online_block_rejected(self):
        mm, mgr = managed()
        with pytest.raises(OnlineError):
            mgr.online_block(0)

    def test_offline_online_cycle_preserves_free_pages(self):
        mm, mgr = managed()
        before = mm.free_pages
        block = top_free_block(mm)
        mgr.offline_block(block)
        mgr.online_block(block)
        assert mm.free_pages == before


class TestStats:
    def test_counters_accumulate(self):
        mm, mgr = managed()
        a = top_free_block(mm)
        mgr.offline_block(a)
        mgr.online_block(a)
        mgr.offline_block(a)
        assert mgr.stats.offline_success == 2
        assert mgr.stats.online_success == 1
        assert mgr.offline_count == 1
        assert mgr.stats.total_latency_s > 0

    def test_mean_latency(self):
        mm, mgr = managed()
        block = top_free_block(mm)
        mgr.offline_block(block)
        mean = mgr.stats.mean_latency_s("offline", mgr.stats.offline_success)
        assert mean == pytest.approx(1.58 * MILLISECOND)

    def test_removable_view(self):
        mm, mgr = managed()
        extents = mm.allocate("drv", 4, kind=OwnerKind.PINNED)
        bad = extents[0].pfn // mm.block_pages
        assert not mgr.removable(bad)
        assert mgr.removable(top_free_block(mm))
