"""The sysfs facade mirrors /sys/devices/system/memory semantics."""

import pytest

from repro.errors import HotplugError, OfflineBusyError
from repro.os.page import OwnerKind
from repro.os.sysfs import SysfsMemoryInterface
from repro.units import MIB


@pytest.fixture
def sysfs(reliable_hotplug):
    return SysfsMemoryInterface(reliable_hotplug)


def top_free_block(mm):
    return max(i for i in range(mm.num_blocks) if mm.block_is_free(i))


class TestReads:
    def test_block_size_bytes_hex(self, sysfs):
        assert int(sysfs.read("block_size_bytes"), 16) == 128 * MIB

    def test_state_file(self, sysfs):
        assert sysfs.read("memory0/state") == "online"

    def test_phys_index(self, sysfs):
        assert int(sysfs.read("memory5/phys_index"), 16) == 5

    def test_removable_flag(self, sysfs, reliable_hotplug):
        mm = reliable_hotplug.mm
        extents = mm.allocate("drv", 4, kind=OwnerKind.PINNED)
        bad = extents[0].pfn // mm.block_pages
        assert sysfs.read(f"memory{bad}/removable") == "0"
        good = top_free_block(mm)
        assert sysfs.read(f"memory{good}/removable") == "1"

    def test_unknown_path(self, sysfs):
        with pytest.raises(FileNotFoundError):
            sysfs.read("memory0/bogus")
        with pytest.raises(FileNotFoundError):
            sysfs.read("memory9999/state")


class TestWrites:
    def test_offline_online_roundtrip(self, sysfs, reliable_hotplug):
        block = top_free_block(reliable_hotplug.mm)
        sysfs.write(f"memory{block}/state", "offline")
        assert sysfs.read(f"memory{block}/state") == "offline"
        sysfs.write(f"memory{block}/state", "online")
        assert sysfs.read(f"memory{block}/state") == "online"

    def test_write_propagates_errno(self, sysfs, reliable_hotplug):
        mm = reliable_hotplug.mm
        extents = mm.allocate("drv", 4, kind=OwnerKind.PINNED)
        bad = extents[0].pfn // mm.block_pages
        with pytest.raises(OfflineBusyError):
            sysfs.write(f"memory{bad}/state", "offline")

    def test_invalid_value_rejected(self, sysfs):
        with pytest.raises(HotplugError):
            sysfs.write("memory0/state", "hibernate")

    def test_write_to_read_only_file(self, sysfs):
        with pytest.raises(FileNotFoundError):
            sysfs.write("memory0/removable", "1")

    def test_block_indices(self, sysfs, reliable_hotplug):
        assert list(sysfs.block_indices()) == list(
            range(reliable_hotplug.mm.num_blocks))
