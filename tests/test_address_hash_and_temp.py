"""XOR bank hashing and high-temperature refresh."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.dram.timing import DDR4_2133, at_high_temperature
from repro.power.model import DRAMPowerModel

ORG = spec_server_memory()
HASHED = AddressMapping(ORG, interleaved=True, xor_bank_hash=True)
PLAIN = AddressMapping(ORG, interleaved=True, xor_bank_hash=False)


class TestXorBankHash:
    @given(st.integers(min_value=0, max_value=ORG.total_capacity_bytes - 1))
    @settings(max_examples=200, deadline=None)
    def test_still_bijective(self, address):
        assert HASHED.encode(HASHED.decode(address)) == address

    @given(st.integers(min_value=0, max_value=ORG.total_capacity_bytes - 1))
    @settings(max_examples=100, deadline=None)
    def test_subarray_groups_untouched(self, address):
        """The GreenDIMM-critical property survives the hash."""
        assert (HASHED.subarray_group_of(address)
                == PLAIN.subarray_group_of(address))

    def test_hash_spreads_row_strides_over_banks(self):
        """A row-sized stride hits one bank unhashed, many banks hashed."""
        row_stride = 1 << (6 + 2 + 7 + 4 + 2)  # one local-row step
        plain_banks = {PLAIN.decode(i * row_stride).bank for i in range(16)}
        hashed_banks = {HASHED.decode(i * row_stride).bank for i in range(16)}
        assert len(hashed_banks) > len(plain_banks)

    def test_hash_changes_only_banks(self):
        d_plain = PLAIN.decode(123456789)
        d_hash = HASHED.decode(123456789)
        assert (d_plain.channel, d_plain.rank, d_plain.subarray,
                d_plain.local_row, d_plain.column) == (
            d_hash.channel, d_hash.rank, d_hash.subarray,
            d_hash.local_row, d_hash.column)


class TestHighTemperature:
    def test_refresh_interval_halves(self):
        hot = at_high_temperature(DDR4_2133)
        assert hot.trefi_ns == DDR4_2133.trefi_ns / 2
        assert hot.refresh_duty_cycle == pytest.approx(
            2 * DDR4_2133.refresh_duty_cycle)

    def test_refresh_power_doubles(self):
        cold = DRAMPowerModel(ORG, timing=DDR4_2133)
        hot = DRAMPowerModel(ORG, timing=at_high_temperature(DDR4_2133))
        assert hot.idle_power().refresh_w == pytest.approx(
            2 * cold.idle_power().refresh_w, rel=1e-6)
        # Background (non-refresh) power is unchanged.
        assert hot.idle_power().background_w == pytest.approx(
            cold.idle_power().background_w)

    def test_gating_saves_more_when_hot(self):
        """GreenDIMM's absolute savings grow with refresh pressure."""
        cold = DRAMPowerModel(ORG, timing=DDR4_2133)
        hot = DRAMPowerModel(ORG, timing=at_high_temperature(DDR4_2133))
        cold_saving = (cold.idle_power().total_w
                       - cold.idle_power(dpd_fraction=0.8).total_w)
        hot_saving = (hot.idle_power().total_w
                      - hot.idle_power(dpd_fraction=0.8).total_w)
        assert hot_saving > cold_saving
