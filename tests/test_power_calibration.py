"""Calibration against the paper's measured operating points.

Figure 2 / Section 3.2: ~18W idle and ~26W busy at 256GB, ~9W busy at
64GB, background fraction rising from ~44% (64GB) toward ~78% (1TB).
Table 1: DRAM power is flat in *utilization* without power management.
"""

import pytest

from repro.dram.organization import (
    azure_server_memory,
    scaled_server_memory,
    spec_server_memory,
)
from repro.power.model import DRAMPowerModel
from repro.power.system import LinearDRAMCapacityModel

#: Bandwidth of 16 copies of mcf on the 16-core platform.
MCF_BANDWIDTH = 14e9


class TestFigure2OperatingPoints:
    def test_azure_idle_near_18w(self):
        model = DRAMPowerModel(azure_server_memory())
        assert model.idle_power().total_w == pytest.approx(18.0, rel=0.10)

    def test_azure_busy_near_26w(self):
        model = DRAMPowerModel(azure_server_memory())
        busy = model.busy_power(MCF_BANDWIDTH, active_residency=0.6)
        assert busy.total_w == pytest.approx(26.0, rel=0.12)

    def test_spec_busy_near_9w(self):
        model = DRAMPowerModel(spec_server_memory())
        busy = model.busy_power(MCF_BANDWIDTH, active_residency=0.6)
        assert busy.total_w == pytest.approx(9.0, rel=0.15)

    def test_spec_background_fraction_near_44pct(self):
        model = DRAMPowerModel(spec_server_memory())
        busy = model.busy_power(MCF_BANDWIDTH, active_residency=0.6)
        assert busy.background_fraction == pytest.approx(0.44, abs=0.08)

    def test_azure_background_fraction_near_70pct(self):
        model = DRAMPowerModel(azure_server_memory())
        busy = model.busy_power(MCF_BANDWIDTH, active_residency=0.6)
        assert busy.background_fraction == pytest.approx(0.70, abs=0.07)

    def test_background_fraction_grows_with_capacity(self):
        fractions = []
        for capacity in (64, 256, 1024):
            model = DRAMPowerModel(scaled_server_memory(capacity))
            busy = model.busy_power(MCF_BANDWIDTH, active_residency=0.6)
            fractions.append(busy.background_fraction)
        assert fractions[0] < fractions[1] < fractions[2]

    def test_1tb_background_near_78pct(self):
        model = DRAMPowerModel(scaled_server_memory(1024))
        busy = model.busy_power(MCF_BANDWIDTH, active_residency=0.6)
        assert busy.background_fraction == pytest.approx(0.78, abs=0.12)


class TestTable1Flatness:
    """Without power management, using more of the capacity barely moves
    DRAM power: unused sub-arrays still refresh and leak."""

    def test_power_flat_across_capacity_utilization(self):
        """Table 1 varies how much of the 256GB is *allocated* while the
        same workload runs; without per-capacity power management the
        model's power has no dependence on allocated capacity at all —
        every sub-array refreshes and leaks regardless."""
        model = DRAMPowerModel(azure_server_memory())
        # Allocated-capacity utilization is not an input to the power
        # model precisely because unused sub-arrays cost the same as used
        # ones; the Table-1 operating point is one busy configuration.
        powers = [model.busy_power(MCF_BANDWIDTH, active_residency=0.6).total_w
                  for _utilization in (0.10, 0.25, 0.50, 0.75, 1.00)]
        assert max(powers) - min(powers) < 1e-9
        assert powers[0] == pytest.approx(26.0, rel=0.12)

    def test_only_dpd_breaks_the_flatness(self):
        """GreenDIMM's whole point: gating unused capacity is what finally
        makes power track utilization."""
        model = DRAMPowerModel(azure_server_memory())
        managed = [
            model.busy_power(MCF_BANDWIDTH, active_residency=0.6,
                             dpd_fraction=1.0 - util).total_w
            for util in (0.10, 0.5, 1.0)
        ]
        assert managed[0] < managed[1] < managed[2]


class TestLinearExtrapolation:
    """Section 6.3's 'simple linear model' from measured points."""

    def test_fit_through_paper_points_gives_91w_at_1tb(self):
        model = LinearDRAMCapacityModel.fit(64, 9.0, 256, 26.0)
        assert model.power_w(1024) == pytest.approx(94.0, rel=0.05)

    def test_fit_recovers_inputs(self):
        model = LinearDRAMCapacityModel.fit(64, 9.0, 256, 26.0)
        assert model.power_w(64) == pytest.approx(9.0)
        assert model.power_w(256) == pytest.approx(26.0)

    def test_fit_rejects_degenerate(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            LinearDRAMCapacityModel.fit(64, 9.0, 64, 26.0)

    def test_model_built_points_roughly_linear(self):
        """Our bottom-up model should itself be roughly linear in capacity."""
        points = {}
        for capacity in (64, 256, 1024):
            model = DRAMPowerModel(scaled_server_memory(capacity))
            points[capacity] = model.busy_power(
                MCF_BANDWIDTH, active_residency=0.6).total_w
        fit = LinearDRAMCapacityModel.fit(64, points[64], 256, points[256])
        assert points[1024] == pytest.approx(fit.power_w(1024), rel=0.30)
