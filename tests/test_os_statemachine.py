"""Stateful property testing of the OS substrate.

A hypothesis rule-based state machine drives random interleavings of
allocation, freeing, off-lining, and on-lining against a small memory
manager, and checks the global invariants after every step:

* page conservation: online = free + used, always;
* no allocation ever lands in an off-lined block;
* per-block accounting matches the extent table;
* owners never lose pages to daemon activity;
* off-lined blocks hold no extents at all.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.errors import (
    AllocationError,
    OfflineAgainError,
    OfflineBusyError,
    OnlineError,
)
from repro.os.hotplug import MemoryBlockManager, MemoryBlockState
from repro.os.mm import PhysicalMemoryManager
from repro.os.page import OwnerKind
from repro.units import GIB, MIB


class MemoryMachine(RuleBasedStateMachine):
    OWNERS = ("a", "b", "c")

    @initialize()
    def setup(self) -> None:
        self.mm = PhysicalMemoryManager(total_bytes=1 * GIB,
                                        block_bytes=128 * MIB,
                                        movable_fraction=0.75)
        self.hotplug = MemoryBlockManager(
            self.mm, transient_failure_probability=0.3,
            rng=random.Random(0))
        self.expected_pages = {owner: 0 for owner in self.OWNERS}
        self.pinned_count = 0

    # --- rules ------------------------------------------------------------

    @rule(owner=st.sampled_from(OWNERS),
          pages=st.integers(min_value=1, max_value=20_000))
    def allocate(self, owner, pages):
        try:
            self.mm.allocate(owner, pages)
            self.expected_pages[owner] += pages
        except AllocationError:
            pass  # legitimately out of online memory

    @rule(owner=st.sampled_from(OWNERS),
          pages=st.integers(min_value=1, max_value=20_000))
    def free_some(self, owner, pages):
        freed = self.mm.free_pages_of(owner, pages)
        assert freed == min(pages, self.expected_pages[owner])
        self.expected_pages[owner] -= freed

    @rule(pages=st.integers(min_value=1, max_value=64))
    def pin(self, pages):
        try:
            self.mm.allocate(f"pin{self.pinned_count}", pages,
                             kind=OwnerKind.PINNED)
            self.pinned_count += 1
        except AllocationError:
            pass

    @rule(block=st.integers(min_value=0, max_value=7))
    def offline(self, block):
        try:
            self.hotplug.offline_block(block)
        except (OfflineBusyError, OfflineAgainError, OnlineError):
            pass

    @rule(block=st.integers(min_value=0, max_value=7))
    def online(self, block):
        try:
            self.hotplug.online_block(block)
        except OnlineError:
            pass

    # --- invariants -----------------------------------------------------------

    @invariant()
    def page_conservation(self):
        if not hasattr(self, "mm"):
            return
        assert self.mm.online_pages == self.mm.free_pages + self.mm.used_pages
        offline_blocks = sum(
            1 for s in self.hotplug.states if s is MemoryBlockState.OFFLINE)
        assert self.mm.online_pages == (self.mm.total_pages
                                        - offline_blocks * self.mm.block_pages)

    @invariant()
    def owners_keep_their_pages(self):
        if not hasattr(self, "mm"):
            return
        for owner, expected in self.expected_pages.items():
            assert self.mm.owner_pages(owner) == expected

    @invariant()
    def offline_blocks_are_empty(self):
        if not hasattr(self, "mm"):
            return
        for block, state in enumerate(self.hotplug.states):
            if state is MemoryBlockState.OFFLINE:
                acct = self.mm.block_accounting(block)
                assert acct.used_pages == 0
                assert not acct.extents

    @invariant()
    def block_accounting_matches_extents(self):
        if not hasattr(self, "mm"):
            return
        for block in range(self.mm.num_blocks):
            acct = self.mm.block_accounting(block)
            pages = sum(e.pages for e in self.mm.block_extents(block))
            unmovable = sum(e.pages for e in self.mm.block_extents(block)
                            if not e.movable)
            assert acct.used_pages == pages
            assert acct.unmovable_pages == unmovable


MemoryMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
TestMemoryMachine = MemoryMachine.TestCase
