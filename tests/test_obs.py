"""The observability layer: tracer, residency accounting, reports, gate."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    GLOBAL_TRACER,
    ResidencyStats,
    Tracer,
    drain_residency,
    drain_trace,
    trace_scope,
)
from repro.obs.report import build_report, load_jsonl, markdown_to_html
from repro.runner import MetricsBus, ParallelRunner, suite_jobs


@pytest.fixture(autouse=True)
def _clean_process_accounts():
    """Obs globals must not leak between tests (or from earlier ones)."""
    GLOBAL_TRACER.disable()
    drain_trace()
    drain_residency()
    yield
    GLOBAL_TRACER.disable()
    drain_trace()
    drain_residency()


class TestTracer:
    def test_disabled_by_default_and_free(self):
        tracer = Tracer()
        tracer.event("daemon.offline", t_s=1.0, block=3)
        tracer.counter("memctrl.wakeups.power_down")
        tracer.gauge("blocks.offline", 12.0)
        assert tracer.snapshot() == {}

    def test_event_counter_gauge_roundtrip(self):
        tracer = Tracer(enabled=True)
        tracer.event("daemon.offline", t_s=1.5, block=3)
        tracer.counter("wakeups", delta=2)
        tracer.counter("wakeups")
        tracer.gauge("offline_blocks", 7.0)
        snap = tracer.snapshot()
        assert snap["events"] == [
            {"kind": "daemon.offline", "t_s": 1.5, "block": 3}]
        assert snap["counters"] == {"wakeups": 3}
        assert snap["gauges"] == {"offline_blocks": 7.0}

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=4, enabled=True)
        for i in range(10):
            tracer.event("tick", t_s=float(i))
        snap = tracer.snapshot()
        assert [e["t_s"] for e in snap["events"]] == [6.0, 7.0, 8.0, 9.0]
        assert snap["dropped"] == 6

    def test_span_emits_enter_exit_with_wall(self):
        tracer = Tracer(enabled=True)
        with tracer.span("ff", t_s=10.0, window=1):
            pass
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["ff.enter", "ff.exit"]
        exit_event = tracer.events[-1].as_dict()
        assert exit_event["wall_s"] >= 0.0
        assert exit_event["window"] == 1

    def test_drain_clears_everything(self):
        tracer = Tracer(enabled=True)
        tracer.event("x")
        tracer.counter("c")
        first = tracer.drain()
        assert first["events"] and first["counters"]
        assert tracer.drain() == {}

    def test_trace_scope_restores_enablement(self):
        assert not GLOBAL_TRACER.enabled
        with trace_scope():
            assert GLOBAL_TRACER.enabled
            GLOBAL_TRACER.event("inside")
        assert not GLOBAL_TRACER.enabled
        assert drain_trace()["events"] == [
            {"kind": "inside", "t_s": None}]

    def test_dump_appends_jsonl(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.event("a", t_s=1.0)
        tracer.event("b", t_s=2.0)
        path = tmp_path / "trace.jsonl"
        assert tracer.dump(path) == 2
        assert tracer.dump(path) == 2  # append, not truncate
        assert len(load_jsonl(path)) == 4


class TestResidencyStats:
    def test_add_span_buckets_sum_to_span(self):
        stats = ResidencyStats()
        stats.add_span(10.0, active_residency=0.25, dpd_fraction=0.6)
        assert stats.total_s == pytest.approx(10.0)
        assert stats.deep_power_down_s == pytest.approx(6.0)
        assert stats.active_standby_s == pytest.approx(1.0)
        assert stats.precharge_standby_s == pytest.approx(3.0)

    def test_fractions_normalize(self):
        stats = ResidencyStats()
        stats.add_span(4.0, active_residency=0.0, dpd_fraction=0.5)
        fractions = stats.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["deep_power_down"] == pytest.approx(0.5)

    def test_empty_fractions(self):
        assert ResidencyStats().fractions() == {}

    def test_marginally_out_of_range_inputs_are_clamped(self):
        # Upstream vectorized paths can hand over fractions a few ulps
        # outside [0, 1]; unclamped, those booked *negative* seconds.
        stats = ResidencyStats()
        stats.add_span(10.0, active_residency=1.0 + 1e-15,
                       dpd_fraction=-1e-15)
        assert stats.active_standby_s == pytest.approx(10.0)
        assert stats.precharge_standby_s >= 0.0
        assert stats.deep_power_down_s >= 0.0
        assert stats.total_s == pytest.approx(10.0)

    def test_gross_overshoot_cannot_corrupt_fractions(self):
        stats = ResidencyStats()
        stats.add_span(5.0, active_residency=1.5, dpd_fraction=-0.5)
        fractions = stats.fractions()
        assert all(share >= 0.0 for share in fractions.values())
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_negative_span_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="negative residency span"):
            ResidencyStats().add_span(-1e-9, active_residency=0.5,
                                      dpd_fraction=0.0)

    @given(span_s=st.floats(min_value=0.0, max_value=1e6),
           active=st.floats(min_value=-0.25, max_value=1.25),
           dpd=st.floats(min_value=-0.25, max_value=1.25))
    @settings(max_examples=200, deadline=None)
    def test_buckets_never_negative_and_sum_to_span(self, span_s, active,
                                                    dpd):
        stats = ResidencyStats()
        stats.add_span(span_s, active_residency=active, dpd_fraction=dpd)
        for seconds in stats.as_dict().values():
            assert seconds >= 0.0
        assert stats.total_s == pytest.approx(span_s, abs=1e-6 * (span_s + 1))


def _residency_of(fast: bool):
    from tests.kernel_scenarios import small_system
    from repro.sim.server import ServerSimulator
    from repro.workloads.registry import profile_by_name

    sim = ServerSimulator(small_system(), seed=5, fast_forward=fast)
    result = sim.run_workload(profile_by_name("429.mcf"), epoch_s=1.0,
                              pinned_churn=True)
    return sim, result


class TestKernelResidency:
    @pytest.mark.parametrize("fast", [False, True])
    def test_buckets_sum_to_run_duration(self, fast):
        sim, result = _residency_of(fast)
        duration = sim.ff_stats.epochs_total * 1.0  # epoch_s
        assert result.residency.total_s == pytest.approx(duration)

    def test_fast_forward_matches_slow_path_closely(self):
        # The ff window accounts its no-churn span in closed form; the
        # slow path epoch by epoch.  Same operating points, so the
        # buckets agree up to float rounding.
        slow = _residency_of(False)[1].residency
        fast = _residency_of(True)[1].residency
        for state, seconds in slow.as_dict().items():
            assert fast.as_dict()[state] == pytest.approx(seconds)

    def test_runs_publish_to_process_account(self):
        drain_residency()
        _residency_of(True)
        account = drain_residency()
        assert account["runs"] == 1
        assert account["duration_s"] > 0.0
        assert sum(account["states"].values()) == pytest.approx(
            account["duration_s"])


class TestDrainAcrossWorkers:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_job_end_carries_trace_from_the_worker(self, tmp_path, workers):
        path = tmp_path / "metrics.jsonl"
        metrics = MetricsBus(path=path)
        with trace_scope():
            # fault-storm drives the epoch kernel (tab1/fig3 are
            # analytic), so its trace carries kernel run markers.
            ParallelRunner(workers=workers, metrics=metrics).run(
                suite_jobs(["fault-storm"], fast=True))
        events = load_jsonl(path)
        (job_end,) = [e for e in events if e["event"] == "job_end"]
        trace = job_end.get("trace") or {}
        kinds = {e["kind"] for e in trace.get("events", [])}
        assert any(kind.startswith("daemon.") for kind in kinds)
        assert any(kind.startswith("hotplug.") for kind in kinds)
        # ...and nothing lingers in this process afterwards: whichever
        # process ran the job drained it at the source.
        assert drain_trace() == {}


class TestUtilizationEdgeCases:
    def test_zero_elapsed_suite_reports_zero_utilization(self):
        # A sub-millisecond suite on a fast machine can measure
        # elapsed_s == 0; the busy ratio must degrade to 0.0, not
        # raise ZeroDivisionError.
        metrics = MetricsBus()
        metrics.job_end("exp", wall_s=0.5, cached=False)
        assert metrics.utilization(4, 0.0) == 0.0
        assert metrics.utilization_raw(4, 0.0) == 0.0
        summary = metrics.suite_end(4, 0.0)
        assert summary["utilization"] == 0.0

    def test_zero_workers_reports_zero_utilization(self):
        metrics = MetricsBus()
        metrics.job_end("exp", wall_s=0.5, cached=False)
        assert metrics.utilization_raw(0, 10.0) == 0.0


class TestReport:
    @pytest.fixture(scope="class")
    def fleet_metrics(self, tmp_path_factory):
        from repro.sim.fleet import FleetSource, run_fleet

        path = tmp_path_factory.mktemp("obs") / "metrics.jsonl"
        metrics = MetricsBus(path=path)
        source = FleetSource(num_servers=2, duration_s=2 * 3600.0, seed=7)
        with trace_scope():
            run_fleet(source, metrics=metrics)
        drain_trace()
        return load_jsonl(path)

    def test_fleet_report_has_every_section(self, fleet_metrics):
        report = build_report(fleet_metrics, title="fleet test")
        for heading in ("# fleet test", "## Suite summary", "## Jobs",
                        "## Energy & savings", "## Power-state residencies",
                        "## Daemon decision timeline", "## Fleet servers"):
            assert heading in report
        assert "daemon.offline" in report

    def test_report_residencies_cover_both_servers(self, fleet_metrics):
        job_ends = [e for e in fleet_metrics if e["event"] == "job_end"]
        assert len(job_ends) == 2
        for event in job_ends:
            residency = event["residency"]
            assert residency["duration_s"] > 0.0
            assert sum(residency["states"].values()) == pytest.approx(
                residency["duration_s"])

    def test_cli_report_writes_markdown_and_html(self, fleet_metrics,
                                                 tmp_path):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.jsonl"
        with metrics_path.open("w") as handle:
            for event in fleet_metrics:
                handle.write(json.dumps(event) + "\n")
        md_out = tmp_path / "report.md"
        assert main(["report", str(metrics_path), "--out",
                     str(md_out)]) == 0
        assert "## Power-state residencies" in md_out.read_text()
        html_out = tmp_path / "report.html"
        assert main(["report", str(metrics_path), "--out",
                     str(html_out)]) == 0
        assert html_out.read_text().startswith("<!doctype html>")

    def test_markdown_to_html_renders_tables(self):
        html = markdown_to_html("# T\n\n| a | b |\n| --- | --- |\n"
                                "| 1 | **2** |\n")
        assert "<h1>T</h1>" in html
        assert "<td>1</td>" in html
        assert "<strong>2</strong>" in html


class TestBenchGate:
    def _doc(self, cal, walls, mode="quick", identical=True):
        scenarios = {
            name: {"wall_s_fast": fast, "wall_s_slow": slow,
                   "identical": identical}
            for name, (fast, slow) in walls.items()}
        return {"benchmark": "perf_core", "mode": mode,
                "calibration_s": cal, "scenarios": scenarios}

    def test_clean_run_passes(self):
        from repro.bench import compare_perf_core

        doc = self._doc(1.0, {"vm_trace": (0.5, 2.0)})
        regressions, rows = compare_perf_core(doc, doc)
        assert regressions == []
        assert all(not r["regressed"] for r in rows)

    def test_real_slowdown_fails(self):
        from repro.bench import compare_perf_core

        base = self._doc(1.0, {"vm_trace": (0.5, 2.0)})
        fresh = self._doc(1.0, {"vm_trace": (0.5, 2.6)})
        regressions, rows = compare_perf_core(fresh, base)
        assert any("vm_trace.wall_s_slow" in r for r in regressions)

    def test_calibration_cancels_machine_speed(self):
        from repro.bench import compare_perf_core

        base = self._doc(1.0, {"vm_trace": (0.5, 2.0)})
        # Uniformly 2x slower machine: walls and calibration both double.
        fresh = self._doc(2.0, {"vm_trace": (1.0, 4.0)})
        regressions, rows = compare_perf_core(fresh, base)
        assert regressions == []
        assert all(r["ratio"] == pytest.approx(1.0) for r in rows)

    def test_noise_floor_forgives_tiny_walls(self):
        from repro.bench import compare_perf_core

        # 30% up on a 20 ms wall is scheduler noise, not a regression.
        base = self._doc(1.0, {"workload": (0.020, 0.020)})
        fresh = self._doc(1.0, {"workload": (0.026, 0.026)})
        regressions, _ = compare_perf_core(fresh, base)
        assert regressions == []

    def test_mode_mismatch_is_terminal(self):
        from repro.bench import compare_perf_core

        base = self._doc(1.0, {"vm_trace": (0.5, 2.0)}, mode="full")
        fresh = self._doc(1.0, {"vm_trace": (0.5, 2.0)}, mode="quick")
        regressions, rows = compare_perf_core(fresh, base)
        assert rows == []
        assert "mode mismatch" in regressions[0]

    def test_missing_scenario_and_broken_identity_fail(self):
        from repro.bench import compare_perf_core

        base = self._doc(1.0, {"vm_trace": (0.5, 2.0),
                               "mix": (0.1, 0.1)})
        fresh = self._doc(1.0, {"vm_trace": (0.5, 2.0)},
                          identical=False)
        regressions, _ = compare_perf_core(fresh, base)
        assert any("missing" in r for r in regressions)
        assert any("identical" in r for r in regressions)

    def test_zero_fast_wall_reports_infinite_speedup(self, monkeypatch):
        # On a fast machine in quick mode a sub-resolution wall used to
        # serialize "speedup": 0.0 — which trend tooling reads as a
        # catastrophic regression rather than an unmeasurably fast run.
        import math

        import repro.bench as bench

        class _Stats:
            epochs_total = 1
            epochs_fast_forwarded = 1
            epochs_stepped = 0
            epochs_batched = 0
            windows = 1
            spans_stable = 0

        class _Cache:
            hit_rate = 1.0

        class _System:
            power_cache_stats = _Cache()

        class _Sim:
            ff_stats = _Stats()
            system = _System()

        monkeypatch.setattr(bench.time, "perf_counter", lambda: 0.0)
        row = bench._time_scenario(lambda fast, full: (_Sim(), "same"),
                                   full=False)
        assert row["speedup"] == math.inf
        # ...and the JSON writer turns it into null, never "Infinity".
        assert bench._json_safe(row)["speedup"] is None
        assert bench._json_safe({"a": [math.nan, 1.0]}) == {"a": [None, 1.0]}

    def test_rows_carry_basis_and_render_flags_mixing(self):
        from repro.bench import compare_perf_core, render_compare

        calibrated = self._doc(1.0, {"mix": (0.5, 2.0)})
        uncalibrated = self._doc(0.0, {"mix": (0.5, 2.0)})
        _, rows_cal = compare_perf_core(calibrated, calibrated)
        assert all(r["basis"] == "calibrated" for r in rows_cal)
        _, rows_raw = compare_perf_core(calibrated, uncalibrated)
        assert all(r["basis"] == "raw" for r in rows_raw)
        assert "calibrated ratios" in render_compare([], rows_cal)
        assert "raw wall-time ratios" in render_compare([], rows_raw)
        # When rows genuinely mix bases the render says so per row
        # instead of silently labelling everything with one basis.
        mixed = render_compare([], rows_cal + rows_raw)
        assert "mixed-basis ratios" in mixed
        assert "(calibrated)" in mixed and "(raw)" in mixed

    def test_fresh_only_scenario_is_visible_not_silent(self):
        # Pre-fix blindness: compare_perf_core iterated only the
        # baseline's scenarios, so a scenario added since the bless was
        # invisible — no row rendered, identical never enforced.
        from repro.bench import compare_perf_core

        base = self._doc(1.0, {"mix": (0.5, 2.0)})
        fresh = self._doc(1.0, {"mix": (0.5, 2.0),
                                "soa_sweep": (0.3, 1.0)})
        regressions, rows = compare_perf_core(fresh, base)
        assert regressions == []  # presence alone is non-fatal
        new_rows = [r for r in rows if r["basis"] == "new"]
        assert {r["scenario"] for r in new_rows} == {"soa_sweep"}
        assert len(new_rows) == 2  # one per gated metric
        assert all("re-bless" in r["note"] for r in new_rows)
        assert all(not r["regressed"] for r in new_rows)

    def test_fresh_only_scenario_identical_is_enforced(self):
        from repro.bench import compare_perf_core

        base = self._doc(1.0, {"mix": (0.5, 2.0)})
        fresh = self._doc(1.0, {"mix": (0.5, 2.0)})
        fresh["scenarios"]["soa_sweep"] = {
            "wall_s_fast": 0.3, "wall_s_slow": 1.0, "identical": False}
        regressions, _ = compare_perf_core(fresh, base)
        assert any("soa_sweep" in r and "identical" in r
                   for r in regressions)

    def test_render_compare_new_basis_rows(self):
        from repro.bench import compare_perf_core, render_compare

        base = self._doc(1.0, {"mix": (0.5, 2.0)})
        fresh = self._doc(1.0, {"mix": (0.5, 2.0),
                                "soa_sweep": (0.3, 1.0)})
        regressions, rows = compare_perf_core(fresh, base)
        rendered = render_compare(regressions, rows)
        assert "soa_sweep" in rendered
        assert "note: scenario 'soa_sweep' absent from baseline" in rendered
        # New rows must not drag the header basis to "mixed".
        assert "calibrated ratios" in rendered
        assert "OK: no regressions" in rendered

    def test_render_compare_mixed_basis_with_new_rows(self):
        from repro.bench import compare_perf_core, render_compare

        calibrated = self._doc(1.0, {"mix": (0.5, 2.0)})
        uncalibrated = self._doc(0.0, {"mix": (0.5, 2.0)})
        _, rows_cal = compare_perf_core(calibrated, calibrated)
        _, rows_raw = compare_perf_core(calibrated, uncalibrated)
        base = self._doc(1.0, {"mix": (0.5, 2.0)})
        fresh = self._doc(1.0, {"mix": (0.5, 2.0),
                                "soa_sweep": (0.3, 1.0)})
        _, rows = compare_perf_core(fresh, base)
        new_rows = [r for r in rows if r["basis"] == "new"]
        rendered = render_compare([], rows_cal + rows_raw + new_rows)
        assert "mixed-basis ratios" in rendered
        assert "(calibrated)" in rendered and "(raw)" in rendered
        assert "soa_sweep" in rendered

    def test_cli_gate_exit_codes(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        missing = main(["bench", "--compare",
                        "--baseline", str(tmp_path / "nope.json")])
        assert missing == 2
        assert "not found" in capsys.readouterr().err
