"""Smoke + shape tests for every experiment module (fast mode).

The benchmark harness runs these for timing and row output; here we pin
the structural contract (tables present, paper/measured keys aligned)
and the headline shape of each reproduction.
"""

import pytest

from repro.experiments import (
    daemon_overhead,
    fig02_idle_busy,
    fig03_interleaving,
    fig08_failures,
    tab01_power_vs_util,
    tab03_latency,
    tail_latency,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.fig06_07_tab02_blocksize import (
    run_fig06,
    run_fig07,
    run_tab02,
)

FAST_RUNNERS = {
    "tab1": tab01_power_vs_util.run,
    "fig2": fig02_idle_busy.run,
    "fig3": fig03_interleaving.run,
    "fig6": run_fig06,
    "fig7": run_fig07,
    "tab2": run_tab02,
    "tab3": tab03_latency.run,
    "fig8": fig08_failures.run,
    "tail_latency": tail_latency.run,
}


@pytest.fixture(scope="module")
def results():
    return {name: runner(fast=True)
            for name, runner in FAST_RUNNERS.items()}


class TestContract:
    def test_all_return_experiment_results(self, results):
        for name, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.tables, f"{name} rendered no tables"
            assert result.measured, f"{name} reported nothing"

    def test_renders_are_complete(self, results):
        for result in results.values():
            text = result.render()
            assert result.description in text
            for key in result.measured:
                assert str(key) in text

    def test_paper_keys_subset_of_measured(self, results):
        for name, result in results.items():
            for key in result.paper:
                assert key in result.measured, f"{name}: {key}"


class TestShapes:
    def test_tab1_flat_without_management(self, results):
        assert results["tab1"].measured["spread_w"] < 1e-6

    def test_fig2_power_grows_with_capacity(self, results):
        measured = results["fig2"].measured
        assert (measured["busy_w_64gb"] < measured["busy_w_256gb"]
                < measured["busy_w_1tb"])

    def test_fig3_interleaving_tradeoff(self, results):
        measured = results["fig3"].measured
        assert measured["max_speedup"] > 2.5
        assert (measured["selfrefresh_fraction_non_interleaved"]
                > measured["selfrefresh_fraction_interleaved"] + 0.3)

    def test_fig6_small_blocks_offline_more(self, results):
        assert results["fig6"].measured["gcc_ratio_128_over_512"] > 1.0

    def test_fig7_overhead_within_paper_band(self, results):
        assert results["fig7"].measured["worst_overhead"] <= 0.035

    def test_tab2_event_ordering(self, results):
        measured = results["tab2"].measured
        assert measured["gcc_events_128"] > measured["mcf_events_128"]

    def test_tab3_latencies_exact(self, results):
        measured = results["tab3"].measured
        assert measured["offline_ms"] == pytest.approx(1.58, rel=0.05)
        assert measured["online_ms"] == pytest.approx(3.44, rel=0.05)

    def test_fig8_removable_first_helps(self, results):
        assert results["fig8"].measured["failure_reduction"] > 0.3

    def test_tail_latency_structural_immunity(self, results):
        measured = results["tail_latency"].measured
        assert measured["greendimm_p99_inflation"] == 1.0
        assert measured["rank_policy_p99_inflation"] > 1.02


class TestDaemonOverheadFast:
    def test_core_shares_negligible(self):
        result = daemon_overhead.run(fast=True)
        assert result.measured["online_core_fraction"] < 0.01
        assert result.measured["offline_core_fraction"] < 0.01


class TestRegistry:
    def test_every_experiment_registered(self):
        from repro.experiments.registry import runners

        table = runners()
        for name in ("fig1", "tab1", "fig2", "fig3", "fig6", "fig7",
                     "tab2", "tab3", "fig8", "fig9", "fig10", "fig11",
                     "fig12", "fig13", "daemon-overhead", "tail-latency"):
            assert name in table

    def test_run_experiment_by_name(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("tab1", fast=True)
        assert result.experiment == "tab1"

    def test_unknown_name_rejected(self):
        from repro.errors import ConfigurationError
        from repro.experiments.registry import run_experiment

        with pytest.raises(ConfigurationError):
            run_experiment("fig99")
