"""gem5-style idle/power-down staircase validation of repro.memctrl."""

import pytest

from repro.errors import ConfigurationError
from repro.memctrl.lowpower import LowPowerConfig
from repro.memctrl.moderegister import TMRD_NS
from repro.memctrl.staircase import (
    BURST_NS,
    DEFAULT_IDLE_SWEEP_NS,
    detect_entry_threshold,
    run_mrs_sweep,
    run_pasr_sweep,
    run_staircase,
    validate_pasr_sweep,
    validate_staircase,
)
from repro.power.states import PowerState, exit_latency_ns


class TestStaircase:
    def test_default_sweep_passes_the_contract(self):
        points = run_staircase()
        validation = validate_staircase(points)
        assert validation.passed, validation.violations

    def test_states_step_down_at_the_configured_thresholds(self):
        config = LowPowerConfig()
        states = {p.idle_ns: p.state for p in run_staircase(config=config)}
        assert states[999.0] is PowerState.PRECHARGE_STANDBY
        assert states[1_000.0] is PowerState.POWER_DOWN
        assert states[63_999.0] is PowerState.POWER_DOWN
        assert states[64_000.0] is PowerState.SELF_REFRESH

    def test_wakeups_pay_published_exit_latencies(self):
        for point in run_staircase():
            assert point.wake_penalty_ns == exit_latency_ns(point.state)
        by_state = {p.state: p for p in run_staircase()}
        assert by_state[PowerState.POWER_DOWN].wake_penalty_ns == 18.0
        assert by_state[PowerState.SELF_REFRESH].wake_penalty_ns == 768.0

    def test_residency_accounting_closes_every_window(self):
        for point in run_staircase():
            accounted = sum(point.residency_ns.values())
            assert accounted == pytest.approx(BURST_NS + point.idle_ns)
            assert point.residency_ns[PowerState.ACTIVE_STANDBY] == \
                pytest.approx(BURST_NS)
            assert all(t >= 0.0 for t in point.residency_ns.values())

    def test_energy_curve_is_a_monotone_staircase(self):
        points = sorted(run_staircase(), key=lambda p: p.idle_ns)
        energies = [p.idle_energy_nj for p in points]
        assert energies == sorted(energies)
        slopes = [(b.idle_energy_nj - a.idle_energy_nj)
                  / (b.idle_ns - a.idle_ns)
                  for a, b in zip(points, points[1:])]
        # Marginal idle power never rises: each deeper state flattens
        # the curve — the staircase the gem5 paper plots.
        assert all(b <= a * (1 + 1e-9)
                   for a, b in zip(slopes, slopes[1:]))
        # And it genuinely steps: self-refresh spans burn less marginal
        # power than precharge-standby spans.
        assert slopes[-1] < slopes[0] * 0.5

    def test_mean_idle_power_is_non_increasing(self):
        points = sorted(run_staircase(), key=lambda p: p.idle_ns)
        powers = [p.idle_power_w for p in points]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(powers, powers[1:]))

    def test_disabled_policy_never_demotes(self):
        config = LowPowerConfig(enabled=False)
        points = run_staircase(config=config)
        assert all(p.state is PowerState.PRECHARGE_STANDBY for p in points)
        assert all(p.wake_penalty_ns == 0.0 for p in points)
        assert validate_staircase(points, config=config).passed

    def test_validation_catches_a_broken_ladder(self):
        # A policy that self-refreshes too eagerly must be flagged when
        # judged against the default thresholds.
        eager = LowPowerConfig(selfrefresh_idle_ns=2_000.0)
        points = run_staircase(config=eager)
        validation = validate_staircase(points, config=LowPowerConfig())
        assert not validation.passed
        assert any("expected power_down" in v for v in validation.violations)

    def test_rejects_non_positive_idle_gaps(self):
        with pytest.raises(ConfigurationError):
            run_staircase(idle_sweep_ns=(0.0,))

    def test_sweep_brackets_both_thresholds(self):
        config = LowPowerConfig()
        below_pd = [t for t in DEFAULT_IDLE_SWEEP_NS
                    if t < config.powerdown_idle_ns]
        above_sr = [t for t in DEFAULT_IDLE_SWEEP_NS
                    if t >= config.selfrefresh_idle_ns]
        assert below_pd and above_sr


class TestEntryThresholdDetection:
    def test_detects_configured_thresholds_by_bisection(self):
        assert detect_entry_threshold(PowerState.POWER_DOWN) == \
            pytest.approx(1_000.0, abs=1e-6)
        assert detect_entry_threshold(PowerState.SELF_REFRESH) == \
            pytest.approx(64_000.0, abs=1e-6)

    def test_tracks_a_retuned_policy(self):
        config = LowPowerConfig(powerdown_idle_ns=500.0,
                                selfrefresh_idle_ns=10_000.0)
        assert detect_entry_threshold(PowerState.POWER_DOWN, config) == \
            pytest.approx(500.0, abs=1e-6)
        assert detect_entry_threshold(PowerState.SELF_REFRESH, config) == \
            pytest.approx(10_000.0, abs=1e-6)

    def test_unreachable_state_is_an_error(self):
        config = LowPowerConfig(enabled=False)
        with pytest.raises(ConfigurationError, match="never entered"):
            detect_entry_threshold(PowerState.SELF_REFRESH, config)


class TestPASRSweep:
    def test_refreshing_fraction_falls_one_bank_per_step(self):
        steps = run_pasr_sweep()
        assert validate_pasr_sweep(steps) == []
        assert steps[0][1] == 1.0
        assert steps[-1][1] == 0.0

    def test_validation_catches_a_non_monotone_sweep(self):
        steps = [(0, 1.0), (1, 1.0)]  # gating a bank changed nothing
        assert validate_pasr_sweep(steps)


class TestMRSSweep:
    def test_slice_updates_cost_one_tmrd_each(self):
        sweep = run_mrs_sweep()
        assert sweep["slice_update_ns"] == TMRD_NS
        assert sweep["slice_updates_uniform"] == 1.0

    def test_full_update_costs_all_slices_and_idempotent_is_free(self):
        sweep = run_mrs_sweep()
        assert sweep["full_update_ns"] == sweep["expected_full_update_ns"]
        assert sweep["idempotent_update_ns"] == 0.0

    def test_ranks_stay_lock_step_consistent(self):
        sweep = run_mrs_sweep()
        assert sweep["consistent"] == 1.0
        assert sweep["commands_uniform"] == 1.0
        assert sweep["commands_per_rank"] == 4.0


class TestStaircaseExperiment:
    def test_experiment_is_registered_and_clean(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("gem5-staircase", fast=True)
        assert result.measured["staircase_violations"] == 0
        assert result.measured["pasr_violations"] == 0
        assert result.measured["mrs_lockstep_consistent"] is True
        assert result.measured["powerdown_entry_ns"] == \
            pytest.approx(1_000.0, abs=1e-6)
        assert result.measured["selfrefresh_entry_ns"] == \
            pytest.approx(64_000.0, abs=1e-6)
        # Deeper states save real background power.
        assert 0.0 < result.measured["powerdown_power_reduction"] \
            < result.measured["selfrefresh_power_reduction"] < 1.0
        assert "staircase" in result.render()

    def test_full_mode_sweep_is_denser_and_still_clean(self):
        from repro.experiments.registry import run_experiment

        fast = run_experiment("gem5-staircase", fast=True)
        full = run_experiment("gem5-staircase", fast=False)
        assert len(full.tables[0].rows) > len(fast.tables[0].rows)
        assert full.measured["staircase_violations"] == 0

    def test_validate_cli_includes_staircase_checks(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "staircase power-down entry" in out
        assert "staircase contract violations" in out
        assert "PASR gating sweep violations" in out
