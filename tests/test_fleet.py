"""Fleet-scale runs: trace sharding, per-server isolation, aggregation."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.fleet import (
    FleetSource,
    fleet_server_memory,
    run_fleet,
    run_fleet_server,
    server_by_index,
)


@pytest.fixture(scope="module")
def source():
    # 2 hours keeps the replays cheap while still carrying VM events.
    return FleetSource(num_servers=3, duration_s=2 * 3600.0, seed=7)


@pytest.fixture(scope="module")
def fleet_result(source):
    return run_fleet(source)


class TestFleetSource:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            FleetSource(num_servers=0)

    def test_shards_partition_the_trace(self, source):
        shards = [source.shard(i) for i in range(source.num_servers)]
        assert sum(len(s.events) for s in shards) == len(source.trace.events)
        for index, shard in enumerate(shards):
            assert all(e.instance.vm_id % source.num_servers == index
                       for e in shard.events)

    def test_jobs_are_deterministic(self, source):
        again = FleetSource(num_servers=3, duration_s=2 * 3600.0, seed=7)
        assert source.jobs() == again.jobs()

    def test_seeds_differ_across_servers(self, source):
        jobs = source.jobs()
        seeds = {j.system_seed for j in jobs} | {j.simulator_seed
                                                 for j in jobs}
        assert len(seeds) == 2 * len(jobs)


class TestFleetRun:
    def test_one_result_per_server(self, source, fleet_result):
        assert sorted(s.index for s in fleet_result.servers) == [0, 1, 2]
        assert set(server_by_index(fleet_result)) == {0, 1, 2}

    def test_servers_match_standalone_runs(self, source, fleet_result):
        """The fleet is exactly its servers run alone: same seeds, same
        shard, same numbers — fleet membership must not perturb anyone."""
        by_index = server_by_index(fleet_result)
        for job in source.jobs():
            standalone = run_fleet_server(job)
            assert standalone == by_index[job.index]

    def test_worker_count_does_not_change_results(self, source,
                                                  fleet_result):
        parallel = run_fleet(source, workers=2)
        assert parallel.servers == fleet_result.servers

    def test_aggregates_are_consistent(self, fleet_result):
        servers = fleet_result.servers
        assert fleet_result.fleet_dram_energy_j == pytest.approx(
            sum(s.dram_energy_j for s in servers))
        assert 0.0 < fleet_result.fleet_dram_energy_saving < 1.0
        assert (fleet_result.worst_server_saving
                <= fleet_result.fleet_dram_energy_saving
                <= fleet_result.best_server_saving)
        peaks = [s.max_offline_blocks for s in servers]
        assert fleet_result.p95_max_offline_blocks in peaks
        blocks = fleet_result.total_blocks_per_server
        assert all(0 <= p <= blocks for p in peaks)

    def test_fast_forward_engaged(self, fleet_result):
        # The sharded replays are mostly quiescent: the fast path must
        # carry the bulk of the epochs or fleet runs do not scale.
        assert all(s.fast_forward_fraction > 0.5
                   for s in fleet_result.servers)

    def test_energy_saving_property_guards_zero_baseline(self):
        from repro.sim.fleet import FleetServerResult

        empty = FleetServerResult(
            index=0, dram_energy_j=0.0, baseline_dram_energy_j=0.0,
            mean_offline_blocks=0.0, max_offline_blocks=0,
            mean_dpd_fraction=0.0, emergency_onlines=0, epochs=0,
            fast_forward_fraction=0.0, vm_events=0)
        assert empty.dram_energy_saving == 0.0


class TestShardSamples:
    def test_shard_samples_partition_the_fleet_samples(self, source):
        """At every sample time the shards' utilization must add back
        up to the fleet trace's — the samples are a decomposition, not
        a re-simulation."""
        shards = [source.shard(i) for i in range(source.num_servers)]
        for shard in shards:
            assert len(shard.samples) == len(source.trace.samples)
        for index, fleet_sample in enumerate(source.trace.samples):
            assert sum(s.samples[index].used_bytes
                       for s in shards) == fleet_sample.used_bytes
            assert sum(s.samples[index].vcpus_used
                       for s in shards) == fleet_sample.vcpus_used
            assert all(s.samples[index].time_s == fleet_sample.time_s
                       for s in shards)

    def test_shard_mean_utilization_reaches_results(self, fleet_result):
        for server in fleet_result.servers:
            assert 0.0 <= server.mean_utilization <= 1.0
        assert any(s.mean_utilization > 0.0 for s in fleet_result.servers)

    def test_fleet_result_carries_fleet_samples(self, source, fleet_result):
        assert fleet_result.fleet_samples == list(source.trace.samples)


class TestFleetMetricsEvents:
    def test_run_fleet_emits_server_and_fleet_events(self, source):
        from repro.runner import MetricsBus

        metrics = MetricsBus()
        result = run_fleet(source, metrics=metrics)
        servers = [e for e in metrics.events if e["event"] == "fleet_server"]
        assert sorted(e["index"] for e in servers) == [0, 1, 2]
        for event in servers:
            assert 0.0 <= event["dram_energy_saving"] <= 1.0
        (end,) = [e for e in metrics.events if e["event"] == "fleet_end"]
        assert end["servers"] == source.num_servers
        assert end["fleet_dram_energy_saving"] == pytest.approx(
            result.fleet_dram_energy_saving)


class TestFleetExperiment:
    def test_registered_and_runs_fast(self):
        from repro.experiments.registry import run_experiment, runners

        assert "fleet" in runners()
        result = run_experiment("fleet", fast=True)
        assert 0.0 < result.measured["fleet_dram_energy_saving"] < 1.0
        blocks = (fleet_server_memory().total_capacity_bytes
                  // FleetSource(num_servers=1,
                                 duration_s=3600.0).block_bytes)
        assert 0 <= result.measured["p95_max_offline_blocks"] <= blocks
