"""The shipped examples must run and print what they promise."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "DRAM energy saved" in out
    assert "execution-time cost" in out
    assert "deep power-down" in out


def test_interleaving_study():
    out = run_example("interleaving_study.py")
    assert "self-refresh residency" in out
    assert "w/o interleaving" in out
    assert "speeds 462.libquantum up" in out


def test_sysfs_admin_tour():
    out = run_example("sysfs_admin_tour.py")
    assert "-EBUSY" in out
    assert "-EAGAIN" in out
    assert "MemTotal shrank" in out
    assert "sub-array groups gated" in out


@pytest.mark.slow
def test_vm_consolidation():
    out = run_example("vm_consolidation.py", timeout=600)
    assert "mean off-lined blocks" in out
    assert "KSM pages currently merged" in out


def test_fault_injection_demo():
    out = run_example("fault_injection_demo.py")
    assert "injected faults:" in out
    assert "offline:EAGAIN" in out
    assert "blocks quarantined:" in out
    assert "replay is bit-identical: True" in out


def test_capacity_planning():
    out = run_example("capacity_planning.py")
    assert "DRAM-saving" in out
    assert "per-component reduction" in out
    assert "background" in out


def test_api_doc_generator():
    """docs/API.md regenerates cleanly and covers the core classes."""
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(__file__).parent.parent
    result = subprocess.run(
        [sys.executable, str(root / "benchmarks" / "generate_api_md.py")],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    text = (root / "docs" / "API.md").read_text()
    for name in ("GreenDIMMDaemon", "PhysicalMemoryManager",
                 "DRAMPowerModel", "KSMDaemon", "ServerSimulator",
                 "FaultPlan", "FaultInjector", "storm_plan"):
        assert name in text
