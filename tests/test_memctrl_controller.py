"""Cycle-approximate controller: the Figure 3 mechanism.

With interleaving a tiny footprint keeps every rank awake (zero
self-refresh residency); without it, idle ranks sleep.
"""

import random

import pytest

from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.errors import ConfigurationError
from repro.memctrl.controller import MemoryController
from repro.memctrl.lowpower import LowPowerConfig
from repro.workloads.trace import AccessTraceGenerator, merged_streams

ORG = spec_server_memory()


def run_trace(interleaved: bool, footprint=64 << 20, count=4000,
              rate=50e6, locality=0.6, seed=7):
    mapping = AddressMapping(ORG, interleaved=interleaved)
    controller = MemoryController(ORG, mapping=mapping,
                                  lowpower=LowPowerConfig(
                                      powerdown_idle_ns=500.0,
                                      selfrefresh_idle_ns=5_000.0))
    gen = AccessTraceGenerator(footprint, rate_per_s=rate, locality=locality,
                               rng=random.Random(seed))
    return controller.run(gen.generate(count))


class TestBasicOperation:
    def test_all_requests_complete(self):
        stats = run_trace(interleaved=True)
        assert stats.requests == 4000
        assert stats.reads + stats.writes == 4000
        assert stats.total_time_ns > 0
        assert stats.latencies_ns.size == 4000

    def test_latency_at_least_device_minimum(self):
        from repro.dram.timing import DDR4_2133
        stats = run_trace(interleaved=True)
        assert stats.latencies_ns.min() >= (
            DDR4_2133.cl_ns + DDR4_2133.burst_duration_ns - 1e-9)

    def test_percentiles_ordered(self):
        stats = run_trace(interleaved=True)
        assert (stats.mean_latency_ns
                <= stats.percentile_latency_ns(95) + 1e-9)
        assert (stats.percentile_latency_ns(95)
                <= stats.percentile_latency_ns(99) + 1e-9)

    def test_bandwidth_positive(self):
        stats = run_trace(interleaved=True)
        assert stats.bandwidth_bytes_per_s > 0

    def test_locality_raises_row_hits(self):
        low = run_trace(interleaved=True, locality=0.05)
        high = run_trace(interleaved=True, locality=0.95)
        assert high.row_hit_rate > low.row_hit_rate

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryController(ORG, window=0)


class TestFigure3Mechanism:
    def test_interleaving_kills_selfrefresh(self):
        """64MB footprint (libquantum): no rank ever self-refreshes."""
        stats = run_trace(interleaved=True)
        assert stats.selfrefresh_fraction() < 0.02

    def test_no_interleaving_restores_selfrefresh(self):
        stats = run_trace(interleaved=False)
        assert stats.selfrefresh_fraction() > 0.4

    def test_interleaved_traffic_touches_every_rank(self):
        stats = run_trace(interleaved=True)
        assert all(b > 0 for b in stats.rank_bytes)

    def test_non_interleaved_traffic_stays_local(self):
        stats = run_trace(interleaved=False)
        touched = sum(1 for b in stats.rank_bytes if b > 0)
        assert touched <= 2

    def test_wakeups_occur_without_interleaving(self):
        stats = run_trace(interleaved=False, rate=5e6)
        assert stats.wakeups > 0

    def test_rank_profiles_feed_power_model(self):
        from repro.power.model import DRAMPowerModel
        stats = run_trace(interleaved=False)
        profiles = stats.rank_profiles()
        assert len(profiles) == ORG.total_ranks
        power = DRAMPowerModel(ORG).power(profiles)
        idle = DRAMPowerModel(ORG).idle_power()
        # Sleeping ranks push power below the all-standby idle level.
        assert power.static_w < idle.static_w


class TestMergedStreams:
    def test_merged_streams_sorted(self):
        gens = [AccessTraceGenerator(1 << 20, rate_per_s=1e6,
                                     rng=random.Random(i)) for i in range(4)]
        reqs = merged_streams(gens, 100)
        assert len(reqs) == 400
        arrivals = [r.arrival_ns for r in reqs]
        assert arrivals == sorted(arrivals)
