"""Power states and transitions."""

import pytest

from repro.errors import PowerStateError
from repro.power.states import (
    ALLOWED_TRANSITIONS,
    PowerState,
    check_transition,
    exit_latency_ns,
    is_low_power,
    refreshes_in_state,
)


class TestExitLatencies:
    def test_powerdown_18ns(self):
        assert exit_latency_ns(PowerState.POWER_DOWN) == 18.0

    def test_selfrefresh_768ns(self):
        assert exit_latency_ns(PowerState.SELF_REFRESH) == 768.0

    def test_deep_powerdown_bounded_by_powerdown(self):
        # Section 4.3: the DLL stays on, so exit <= power-down exit.
        assert (exit_latency_ns(PowerState.DEEP_POWER_DOWN)
                <= exit_latency_ns(PowerState.POWER_DOWN))

    def test_standby_states_have_no_exit(self):
        assert exit_latency_ns(PowerState.ACTIVE_STANDBY) == 0.0
        assert exit_latency_ns(PowerState.PRECHARGE_STANDBY) == 0.0


class TestLowPowerClassification:
    @pytest.mark.parametrize("state,expected", [
        (PowerState.ACTIVE_STANDBY, False),
        (PowerState.PRECHARGE_STANDBY, False),
        (PowerState.POWER_DOWN, True),
        (PowerState.SELF_REFRESH, True),
        (PowerState.DEEP_POWER_DOWN, True),
    ])
    def test_is_low_power(self, state, expected):
        assert is_low_power(state) is expected


class TestTransitions:
    def test_standby_to_low_power_legal(self):
        for target in (PowerState.POWER_DOWN, PowerState.SELF_REFRESH,
                       PowerState.DEEP_POWER_DOWN):
            check_transition(PowerState.PRECHARGE_STANDBY, target)

    def test_low_power_to_low_power_illegal(self):
        with pytest.raises(PowerStateError):
            check_transition(PowerState.POWER_DOWN, PowerState.SELF_REFRESH)

    def test_active_cannot_sleep_directly(self):
        # Banks must be precharged before any low-power entry.
        with pytest.raises(PowerStateError):
            check_transition(PowerState.ACTIVE_STANDBY, PowerState.POWER_DOWN)

    def test_self_transitions_allowed(self):
        for state in PowerState:
            assert state in ALLOWED_TRANSITIONS[state]

    def test_every_state_can_reach_standby(self):
        for state in PowerState:
            assert PowerState.PRECHARGE_STANDBY in ALLOWED_TRANSITIONS[state]


class TestRefreshBehaviour:
    def test_only_deep_powerdown_loses_refresh(self):
        for state in PowerState:
            expected = state is not PowerState.DEEP_POWER_DOWN
            assert refreshes_in_state(state) is expected
