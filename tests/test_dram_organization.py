"""Memory topology checks against the paper's two platforms."""

import pytest

from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import (
    MemoryOrganization,
    scaled_server_memory,
)
from repro.errors import ConfigurationError
from repro.units import GIB, MIB


class TestSpecPlatform:
    """Eight 4Gb 2R x8 8GB DIMMs over four channels (Section 6.1)."""

    def test_total_capacity_is_64gb(self, spec_org):
        assert spec_org.total_capacity_bytes == 64 * GIB

    def test_16_ranks(self, spec_org):
        assert spec_org.total_ranks == 16

    def test_8_dimms(self, spec_org):
        assert spec_org.total_dimms == 8

    def test_rank_is_4gb_of_8_devices(self, spec_org):
        assert spec_org.rank_capacity_bytes == 4 * GIB
        assert spec_org.devices_per_rank == 8

    def test_logical_bank_is_256mb(self, spec_org):
        # "a rank ... provides 4GB with 16 256MB (logical) banks"
        assert spec_org.logical_bank_capacity_bytes == 256 * MIB

    def test_subarray_group_slice_is_4mb(self, spec_org):
        # "a 4Mb sub-array (i.e., 4MB across 8 DRAM devices in a rank)"
        assert spec_org.subarray_group_slice_bytes == 4 * MIB

    def test_min_power_unit_is_1gb(self, spec_org):
        # 4MB x 16 banks x 16 ranks = 1024MB, 1.5625% of 64GB.
        assert spec_org.min_power_unit_bytes == 1024 * MIB
        fraction = spec_org.min_power_unit_bytes / spec_org.total_capacity_bytes
        assert fraction == pytest.approx(0.015625)

    def test_always_64_groups(self, spec_org):
        assert spec_org.num_subarray_groups == 64

    def test_describe_mentions_capacity(self, spec_org):
        assert "64GB" in spec_org.describe()


class TestAzurePlatform:
    def test_total_capacity_is_256gb(self, azure_org):
        assert azure_org.total_capacity_bytes == 256 * GIB

    def test_x4_devices_mean_16_per_rank(self, azure_org):
        assert azure_org.devices_per_rank == 16

    def test_dimm_is_32gb(self, azure_org):
        assert azure_org.dimm_capacity_bytes == 32 * GIB

    def test_power_unit_fraction_unchanged(self, azure_org):
        # "the percentage does not change with smaller or larger capacity"
        fraction = (azure_org.min_power_unit_bytes
                    / azure_org.total_capacity_bytes)
        assert fraction == pytest.approx(0.015625)


class TestScaledPlatforms:
    @pytest.mark.parametrize("capacity_gib", [64, 128, 256, 512, 1024])
    def test_scaled_capacity(self, capacity_gib):
        org = scaled_server_memory(capacity_gib)
        assert org.total_capacity_bytes == capacity_gib * GIB

    def test_rejects_non_multiple(self):
        with pytest.raises(ConfigurationError):
            scaled_server_memory(100)

    def test_rejects_non_power_factor(self):
        with pytest.raises(ConfigurationError):
            scaled_server_memory(192)


class TestValidation:
    def test_rejects_non_power_of_two_channels(self):
        with pytest.raises(ConfigurationError):
            MemoryOrganization(device=DDR4_4GB_X8, channels=3)

    def test_total_counts_consistent(self, spec_org):
        assert spec_org.total_devices == (spec_org.total_ranks
                                          * spec_org.devices_per_rank)
        assert spec_org.total_banks == (spec_org.total_ranks
                                        * spec_org.device.banks)
