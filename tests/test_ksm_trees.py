"""KSM stable/unstable trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ksm.trees import StableTree, UnstableTree, _Treap


class TestTreap:
    def test_insert_search(self):
        treap = _Treap()
        treap.insert(10, "a")
        treap.insert(5, "b")
        treap.insert(20, "c")
        assert treap.search(10) == "a"
        assert treap.search(5) == "b"
        assert treap.search(99) is None
        assert len(treap) == 3

    def test_insert_replaces(self):
        treap = _Treap()
        treap.insert(10, "a")
        treap.insert(10, "b")
        assert treap.search(10) == "b"
        assert len(treap) == 1

    def test_remove(self):
        treap = _Treap()
        treap.insert(10, "a")
        assert treap.remove(10)
        assert not treap.remove(10)
        assert treap.search(10) is None
        assert len(treap) == 0

    def test_keys_in_order(self):
        treap = _Treap()
        for key in (5, 3, 9, 1, 7):
            treap.insert(key, key)
        assert list(treap.keys()) == [1, 3, 5, 7, 9]

    def test_clear(self):
        treap = _Treap()
        treap.insert(1, "x")
        treap.clear()
        assert len(treap) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_sorted_iteration_invariant(self, keys):
        treap = _Treap()
        for key in keys:
            treap.insert(key, key)
        out = list(treap.keys())
        assert out == sorted(set(keys))
        assert len(treap) == len(set(keys))

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=64)),
                    max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_mixed_ops_match_dict(self, ops):
        treap = _Treap()
        model = {}
        for is_insert, key in ops:
            if is_insert:
                treap.insert(key, key * 2)
                model[key] = key * 2
            else:
                assert treap.remove(key) == (key in model)
                model.pop(key, None)
        assert list(treap.keys()) == sorted(model)
        for key, value in model.items():
            assert treap.search(key) == value


class TestStableTree:
    def test_insert_and_sharers(self):
        tree = StableTree()
        tree.insert(42, sharers=2)
        assert tree.lookup(42).sharers == 2
        tree.add_sharer(42)
        assert tree.lookup(42).sharers == 3

    def test_drop_sharer_removes_at_one(self):
        tree = StableTree()
        tree.insert(42, sharers=2)
        remaining = tree.drop_sharer(42)
        assert remaining == 0
        assert tree.lookup(42) is None
        assert len(tree) == 0

    def test_drop_keeps_when_shared(self):
        tree = StableTree()
        tree.insert(42, sharers=3)
        assert tree.drop_sharer(42) == 2
        assert tree.lookup(42).sharers == 2

    def test_missing_key_raises(self):
        tree = StableTree()
        with pytest.raises(KeyError):
            tree.add_sharer(1)
        with pytest.raises(KeyError):
            tree.drop_sharer(1)

    def test_fingerprints_sorted(self):
        tree = StableTree()
        for fp in (9, 3, 7):
            tree.insert(fp)
        assert list(tree.fingerprints()) == [3, 7, 9]


class TestUnstableTree:
    def test_first_sighting_inserts(self):
        tree = UnstableTree()
        assert tree.find_or_insert(10, "holder-a") is None
        assert len(tree) == 1

    def test_second_sighting_returns_holder(self):
        tree = UnstableTree()
        tree.find_or_insert(10, "holder-a")
        assert tree.find_or_insert(10, "holder-b") == "holder-a"

    def test_reset_between_passes(self):
        tree = UnstableTree()
        tree.find_or_insert(10, "holder-a")
        tree.reset()
        assert len(tree) == 0
        assert tree.find_or_insert(10, "holder-b") is None
