"""Checkpoint/restore: continuing a snapshot must be bit-for-bit.

The contract under test (``repro.sim.snapshot``): pause a kernel run at
an arbitrary epoch, capture the full simulator state, restore it — into
a fresh object graph here, into a *fresh process* in the subprocess
test — continue, and obtain exactly the floats an uninterrupted run
produces.  Equality is asserted at the ``float.hex()`` level on the
energy sums, the per-epoch sample stream, the residency buckets, and
the swap-stall total, for every registered policy, with pinned churn
running and mid-fault-storm.
"""

from __future__ import annotations

import hashlib
import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import SnapshotError
from repro.faults.plan import storm_plan
from repro.policies.registry import policy_names
from repro.sim.kernel import ProfileSource, TraceSource
from repro.sim.snapshot import (
    SNAPSHOT_VERSION,
    ServerSpec,
    capture,
    load,
    restore,
    save,
)
from repro.units import GIB
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.datacenter import DATACENTER_PROFILES

PROFILE = "ml_linear"

#: A dense failure storm covering the first 200 s of the run; pauses
#: inside [0, 200) land mid-storm with live rules and embargo timers.
STORM = storm_plan(seed=11, intensity=2.0, duration_s=200.0).to_dict()


def _profile_run(spec, pause=None, churn=True):
    """One profile replay; with *pause*, snapshot/restore at that time."""
    sim = spec.build()
    source = ProfileSource(sim, DATACENTER_PROFILES[PROFILE], n_copies=3)
    state = sim.kernel.begin(source, epoch_s=1.0, warmup_s=5.0,
                             pinned_churn=churn)
    if pause is not None:
        sim.kernel.advance(state, until_s=pause)
        blob = capture(sim, run_state=state, spec=spec)
        restored = restore(blob)
        assert restored.sim is not sim
        sim, state = restored.sim, restored.run_state
        assert state.source.sim is sim
    sim.kernel.advance(state)
    return sim.kernel.finish(state)


def _digest(run):
    """Every observable stream, rendered exactly (no float tolerance)."""
    return {
        "dram_energy": run.dram_energy_j.hex(),
        "baseline": run.baseline_dram_energy_j.hex(),
        "swap_stall": run.swap_stall_s.hex(),
        "residency": [v.hex() for v in run.residency.as_dict().values()],
        "samples": hashlib.sha256(json.dumps(
            [[s.time_s.hex(), s.used_pages, s.free_pages, s.offline_blocks,
              s.dpd_fraction.hex(), s.dram_power_w.hex()]
             for s in run.samples]).encode()).hexdigest(),
    }


class TestEveryPolicy:
    """The property, per registered policy: storm + churn + random pause."""

    @pytest.mark.parametrize("policy", policy_names())
    def test_roundtrip_mid_storm_with_churn(self, policy):
        spec = ServerSpec(policy=policy, fault_plan=STORM)
        rng = random.Random(hash(policy) & 0xFFFF)
        pause = rng.uniform(10.0, 190.0)  # inside the storm window
        golden = _digest(_profile_run(spec))
        resumed = _digest(_profile_run(spec, pause=pause))
        assert resumed == golden


class TestRandomPausePoints:
    def test_any_epoch_is_a_valid_pause(self):
        spec = ServerSpec(policy="greendimm", fault_plan=STORM)
        golden = _digest(_profile_run(spec))
        rng = random.Random(7)
        for _ in range(3):
            pause = rng.uniform(1.0, 590.0)
            assert _digest(_profile_run(spec, pause=pause)) == golden, pause

    def test_restore_is_repeatable(self):
        """One blob restores twice to the same continuation (restore
        must not consume or mutate the snapshot)."""
        spec = ServerSpec(policy="greendimm")
        sim = spec.build()
        source = ProfileSource(sim, DATACENTER_PROFILES[PROFILE], n_copies=3)
        state = sim.kernel.begin(source, epoch_s=1.0, warmup_s=5.0)
        sim.kernel.advance(state, until_s=100.0)
        blob = capture(sim, run_state=state, spec=spec)
        digests = []
        for _ in range(2):
            restored = restore(blob)
            restored.sim.kernel.advance(restored.run_state)
            digests.append(_digest(restored.sim.kernel.finish(
                restored.run_state)))
        assert digests[0] == digests[1]


class TestKsmTraceReplay:
    def test_vm_trace_with_ksm(self):
        spec = ServerSpec(policy="greendimm", enable_ksm=True,
                          organization="azure", kernel_boot_bytes=3 * GIB)

        def run(pause=None):
            sim = spec.build()
            trace = AzureTraceGenerator(
                capacity_bytes=sim.system.mm.total_pages * 4096 - 3 * GIB,
                physical_cores=16, duration_s=1800.0, seed=3).generate()
            source = TraceSource(sim, trace)
            state = sim.kernel.begin(source, epoch_s=5.0,
                                     pinned_churn=False)
            if pause is not None:
                sim.kernel.advance(state, until_s=pause)
                restored = restore(capture(sim, run_state=state, spec=spec))
                sim, state = restored.sim, restored.run_state
            sim.kernel.advance(state)
            return sim.kernel.finish(state)

        assert _digest(run(pause=700.0)) == _digest(run())


class TestFreshProcess:
    """Restore in a brand-new interpreter: nothing ambient may leak."""

    def test_subprocess_continuation_matches(self, tmp_path):
        spec = ServerSpec(policy="greendimm", fault_plan=STORM)
        golden = _digest(_profile_run(spec))

        sim = spec.build()
        source = ProfileSource(sim, DATACENTER_PROFILES[PROFILE], n_copies=3)
        state = sim.kernel.begin(source, epoch_s=1.0, warmup_s=5.0,
                                 pinned_churn=True)
        sim.kernel.advance(state, until_s=123.0)
        snap = tmp_path / "mid-run.snap"
        save(snap, sim, run_state=state, spec=spec)

        script = (
            "import hashlib, json, sys\n"
            "from repro.sim.snapshot import load\n"
            "restored = load(sys.argv[1])\n"
            "sim, state = restored.sim, restored.run_state\n"
            "sim.kernel.advance(state)\n"
            "run = sim.kernel.finish(state)\n"
            "print(json.dumps({\n"
            "    'dram_energy': run.dram_energy_j.hex(),\n"
            "    'baseline': run.baseline_dram_energy_j.hex(),\n"
            "    'swap_stall': run.swap_stall_s.hex(),\n"
            "    'residency': [v.hex()\n"
            "                  for v in run.residency.as_dict().values()],\n"
            "    'samples': hashlib.sha256(json.dumps(\n"
            "        [[s.time_s.hex(), s.used_pages, s.free_pages,\n"
            "          s.offline_blocks, s.dpd_fraction.hex(),\n"
            "          s.dram_power_w.hex()] for s in run.samples]\n"
            "    ).encode()).hexdigest(),\n"
            "}))\n")
        out = subprocess.run(
            [sys.executable, "-c", script, str(snap)],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).resolve().parent.parent))
        assert json.loads(out.stdout) == golden


class TestFormat:
    def test_unknown_version_refused(self):
        spec = ServerSpec()
        sim = spec.build()
        blob = capture(sim, spec=spec)
        import pickle

        payload = pickle.loads(blob)
        payload["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            restore(pickle.dumps(payload))

    def test_garbage_refused(self):
        with pytest.raises(SnapshotError):
            restore(b"not a snapshot")
        with pytest.raises(SnapshotError, match="not a simulator snapshot"):
            import pickle

            restore(pickle.dumps({"spam": 1}))

    def test_specless_snapshot_needs_a_simulator(self):
        spec = ServerSpec()
        sim = spec.build()
        blob = capture(sim)  # no spec embedded
        with pytest.raises(SnapshotError, match="no spec"):
            restore(blob)
        # ... but restores fine into a structurally identical sim.
        other = spec.build()
        restored = restore(blob, sim=other)
        assert restored.sim is other

    def test_foreign_run_state_refused(self):
        spec = ServerSpec()
        sim_a, sim_b = spec.build(), spec.build()
        source = ProfileSource(sim_a, DATACENTER_PROFILES[PROFILE])
        state = sim_a.kernel.begin(source, epoch_s=1.0)
        with pytest.raises(SnapshotError, match="different simulator"):
            capture(sim_b, run_state=state)

    def test_spec_json_roundtrip(self):
        spec = ServerSpec(policy="pasr", enable_ksm=True, fault_plan=STORM,
                          config={"off_thr_fraction": 0.15,
                                  "on_thr_fraction": 0.12})
        rendered = json.loads(json.dumps(spec.to_dict()))
        assert ServerSpec.from_dict(rendered) == spec
        with pytest.raises(SnapshotError, match="unknown spec field"):
            ServerSpec.from_dict({"flux_capacitor": True})
        with pytest.raises(SnapshotError, match="unknown organization"):
            ServerSpec(organization="mainframe")

    def test_file_roundtrip_is_atomic(self, tmp_path):
        spec = ServerSpec()
        sim = spec.build()
        source = ProfileSource(sim, DATACENTER_PROFILES[PROFILE], n_copies=3)
        state = sim.kernel.begin(source, epoch_s=1.0)
        sim.kernel.advance(state, until_s=30.0)
        path = tmp_path / "server.snap"
        save(path, sim, run_state=state, spec=spec)
        assert not list(tmp_path.glob("*.tmp"))
        restored = load(path)
        restored.sim.kernel.advance(restored.run_state)
        run = restored.sim.kernel.finish(restored.run_state)
        assert run.duration_s == DATACENTER_PROFILES[PROFILE].duration_s
