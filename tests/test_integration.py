"""End-to-end integration: the full GreenDIMM story on one server.

These tests walk the paper's causal chain at miniature scale:
free capacity -> off-lining -> sub-array gating -> background power drop
-> on-lining under pressure -> power back up, plus the KSM synergy.
"""

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import MemoryOrganization
from repro.ksm.content import RegionContent
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB, PAGE_SIZE
from repro.workloads import profile_by_name


def eight_gb_system(**kwargs):
    org = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                             dimms_per_channel=2, ranks_per_dimm=1)
    defaults = dict(organization=org,
                    config=GreenDIMMConfig(block_bytes=128 * MIB),
                    kernel_boot_bytes=512 * MIB,
                    transient_failure_probability=0.0, seed=7)
    defaults.update(kwargs)
    return GreenDIMMSystem(**defaults)


class TestFullCycle:
    def test_power_tracks_utilization_cycle(self):
        system = eight_gb_system()
        power = []

        def snap():
            power.append(system.dram_power().total_w)

        for t in range(25):
            system.step(float(t))
        snap()  # mostly idle, mostly gated

        # Load up 6GB gradually.
        now = 25.0
        remaining = 6 * GIB // PAGE_SIZE
        while remaining > 0:
            take = min(remaining, max(0, system.mm.free_pages - 2048))
            if take > 0:
                system.mm.allocate("app", take)
                remaining -= take
            else:
                system.daemon.emergency_online(remaining, now)
            system.step(now)
            now += 1.0
        for _ in range(25):
            system.step(now)
            now += 1.0
        snap()  # loaded: most groups awake

        system.mm.free_all("app")
        for _ in range(25):
            system.step(now)
            now += 1.0
        snap()  # empty again: re-gated

        assert power[1] > power[0] * 1.5
        assert power[2] < power[1] * 0.6

    def test_gated_groups_never_back_online_addresses(self):
        """Safety invariant: every gated group's physical range is fully
        off-lined, so no allocation can touch a powered-down sub-array."""
        system = eight_gb_system()
        for t in range(30):
            system.step(float(t))
        system.mm.allocate("app", max(0, system.mm.free_pages - 4096))
        offline = set(system.hotplug.offline_blocks())
        for group in system.power_control.register.gated_groups():
            for block in system.block_map.blocks_of_group(group):
                assert block in offline

    def test_offline_blocks_match_power_control_view(self):
        system = eight_gb_system()
        for t in range(30):
            system.step(float(t))
        assert set(system.hotplug.offline_blocks()) == (
            system.power_control.offline_blocks)

    def test_data_survives_daemon_activity(self):
        system = eight_gb_system()
        system.mm.allocate("app", 3 * GIB // PAGE_SIZE)
        for t in range(40):
            system.step(float(t))
        system.mm.free_pages_of("app", GIB // PAGE_SIZE)
        for t in range(40, 80):
            system.step(float(t))
        assert system.mm.owner_pages("app") == 2 * GIB // PAGE_SIZE


class TestKSMSynergy:
    def test_ksm_enables_more_offlining(self):
        """Section 5.3: merging frees capacity the daemon then off-lines."""
        counts = {}
        for enable_ksm in (False, True):
            system = eight_gb_system(enable_ksm=enable_ksm, seed=11)
            pages = 2 * GIB // PAGE_SIZE
            for vm, image in (("vm0", 1), ("vm1", 1)):
                system.mm.allocate(vm, pages, mergeable=True)
                if system.ksm is not None:
                    system.ksm.register(RegionContent(
                        owner_id=vm, total_pages=pages, image_id=image,
                        zero_fraction=0.25, image_fraction=0.4))
            for t in range(240):
                system.step(float(t))
            counts[enable_ksm] = system.daemon.offline_block_count
        assert counts[True] > counts[False]

    def test_ksm_pass_triggers_prompt_reaction(self):
        system = eight_gb_system(enable_ksm=True,
                                 config=GreenDIMMConfig(
                                     block_bytes=128 * MIB,
                                     monitor_period_s=300.0))
        pages = 2 * GIB // PAGE_SIZE
        system.mm.allocate("vm0", pages, mergeable=True)
        system.ksm.register(RegionContent(owner_id="vm0", total_pages=pages,
                                          image_id=1, zero_fraction=0.3))
        system.step(0.0)  # initial monitor pass
        baseline = system.daemon.stats.offline_events
        # Monitor period is 5 minutes, but a completed KSM pass kicks the
        # daemon anyway.
        kicked = False
        for t in range(1, 200):
            system.step(float(t))
            if system.daemon.stats.offline_events > baseline:
                kicked = True
                break
        assert kicked


class TestServerSimulatorIntegration:
    def test_tail_latency_for_services(self):
        org = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                 dimms_per_channel=2, ranks_per_dimm=2)
        system = GreenDIMMSystem(organization=org,
                                 config=GreenDIMMConfig(block_bytes=512 * MIB),
                                 kernel_boot_bytes=GIB, seed=3)
        sim = ServerSimulator(system, seed=3)
        profile = profile_by_name("web-serving")
        result = sim.run_workload(profile)
        factor = sim.perf.tail_latency_factor(profile,
                                              result.overhead_fraction)
        # Paper: no notable tail degradation for the serving workloads.
        assert factor < 1.01
