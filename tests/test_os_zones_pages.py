"""Zones, extents, and block accounting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.os.page import BlockAccounting, OwnerKind, PageExtent
from repro.os.zones import ZoneKind, ZoneLayout


class TestPageExtent:
    def test_derived_fields(self):
        extent = PageExtent(pfn=64, order=3, owner_id="a")
        assert extent.pages == 8
        assert extent.end_pfn == 72
        assert extent.movable

    def test_kernel_and_pinned_unmovable(self):
        assert not PageExtent(0, 0, "k", kind=OwnerKind.KERNEL).movable
        assert not PageExtent(0, 0, "d", kind=OwnerKind.PINNED).movable

    def test_moved_to(self):
        extent = PageExtent(pfn=64, order=3, owner_id="a", mergeable=True)
        moved = extent.moved_to(128)
        assert moved.pfn == 128
        assert moved.order == 3 and moved.mergeable
        assert extent.pfn == 64  # original untouched (frozen)


class TestBlockAccounting:
    def test_flags(self):
        acct = BlockAccounting()
        assert acct.is_empty and not acct.has_unmovable
        acct.used_pages += 4
        acct.unmovable_pages += 4
        assert not acct.is_empty and acct.has_unmovable


class TestZoneLayout:
    def test_split_fractions(self):
        zones = ZoneLayout(total_pages=1 << 20, movable_fraction=0.75).build()
        assert [z.kind for z in zones] == [ZoneKind.NORMAL, ZoneKind.MOVABLE]
        assert zones[1].pages == pytest.approx(0.75 * (1 << 20), rel=0.01)
        assert zones[0].end_pfn == zones[1].start_pfn

    def test_zero_movable(self):
        zones = ZoneLayout(total_pages=1 << 20, movable_fraction=0.0).build()
        assert len(zones) == 1
        assert zones[0].kind is ZoneKind.NORMAL

    def test_rejects_full_movable(self):
        with pytest.raises(ConfigurationError):
            ZoneLayout(total_pages=1 << 20, movable_fraction=1.0)

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            ZoneLayout(total_pages=1000).build()

    def test_zone_contains(self):
        zones = ZoneLayout(total_pages=1 << 20, movable_fraction=0.5).build()
        normal, movable = zones
        assert normal.contains(0)
        assert not normal.contains(movable.start_pfn)
        assert movable.contains(movable.start_pfn)
