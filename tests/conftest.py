"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import (
    MemoryOrganization,
    azure_server_memory,
    spec_server_memory,
)
from repro.dram.device import DDR4_4GB_X8
from repro.os.hotplug import MemoryBlockManager
from repro.os.mm import PhysicalMemoryManager
from repro.units import GIB, MIB


@pytest.fixture
def spec_org() -> MemoryOrganization:
    """The paper's 64GB SPEC platform."""
    return spec_server_memory()


@pytest.fixture
def azure_org() -> MemoryOrganization:
    """The paper's 256GB Azure platform."""
    return azure_server_memory()


@pytest.fixture
def small_org() -> MemoryOrganization:
    """A 4GB single-channel topology for fast unit tests."""
    return MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                              dimms_per_channel=1, ranks_per_dimm=1)


@pytest.fixture
def small_mm() -> PhysicalMemoryManager:
    """4GB memory manager with 128MB blocks, 75% movable."""
    return PhysicalMemoryManager(total_bytes=4 * GIB,
                                 block_bytes=128 * MIB,
                                 movable_fraction=0.75)


@pytest.fixture
def reliable_hotplug(small_mm) -> MemoryBlockManager:
    """Hot-plug manager with deterministic, always-working migration."""
    return MemoryBlockManager(small_mm, transient_failure_probability=0.0,
                              rng=random.Random(0))


@pytest.fixture
def small_system() -> GreenDIMMSystem:
    """A fast 4GB GreenDIMM system (one channel, 64MB blocks)."""
    org = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                             dimms_per_channel=1, ranks_per_dimm=1)
    config = GreenDIMMConfig(block_bytes=64 * MIB)
    return GreenDIMMSystem(organization=org, config=config,
                           kernel_boot_bytes=256 * MIB,
                           transient_failure_probability=0.0, seed=3)
