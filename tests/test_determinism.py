"""Determinism: equal seeds must reproduce runs bit-for-bit.

Every stochastic component takes an explicit RNG or seed, so paper
reproductions are replayable — a property worth pinning, since a single
forgotten global-`random` call would silently break it.
"""

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import MemoryOrganization
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads import AzureTraceGenerator, profile_by_name


def run_once(seed: int):
    org = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                             dimms_per_channel=2, ranks_per_dimm=1)
    system = GreenDIMMSystem(organization=org,
                             config=GreenDIMMConfig(block_bytes=128 * MIB),
                             kernel_boot_bytes=512 * MIB,
                             transient_failure_probability=0.7, seed=seed)
    simulator = ServerSimulator(system, seed=seed)
    return simulator.run_workload(profile_by_name("403.gcc"), epoch_s=2.0)


class TestWorkloadRunDeterminism:
    def test_same_seed_same_everything(self):
        a = run_once(seed=42)
        b = run_once(seed=42)
        assert a.offline_events == b.offline_events
        assert a.online_events == b.online_events
        assert a.ebusy_failures == b.ebusy_failures
        assert a.eagain_failures == b.eagain_failures
        assert a.dram_energy_j == b.dram_energy_j
        assert [s.offline_blocks for s in a.samples] == [
            s.offline_blocks for s in b.samples]

    def test_different_seed_different_failures(self):
        a = run_once(seed=42)
        b = run_once(seed=43)
        # Event counts are dominated by the footprint trace, but the
        # stochastic parts (pinned churn, migration luck) should diverge
        # somewhere in the sample series.
        assert ([s.free_pages for s in a.samples]
                != [s.free_pages for s in b.samples])


class TestGeneratorDeterminism:
    def test_azure_trace(self):
        a = AzureTraceGenerator(seed=9, duration_s=4 * 3600.0).generate()
        b = AzureTraceGenerator(seed=9, duration_s=4 * 3600.0).generate()
        assert len(a.events) == len(b.events)
        assert all(x.instance.vm_type.name == y.instance.vm_type.name
                   for x, y in zip(a.events, b.events))

    def test_access_trace(self):
        import random

        from repro.workloads.trace import AccessTraceGenerator

        a = AccessTraceGenerator(1 << 24, rate_per_s=1e6,
                                 rng=random.Random(5)).generate(500)
        b = AccessTraceGenerator(1 << 24, rate_per_s=1e6,
                                 rng=random.Random(5)).generate(500)
        assert [(r.address, r.arrival_ns) for r in a] == [
            (r.address, r.arrival_ns) for r in b]
