"""Core invariants across every supported platform configuration.

The same off-line -> gate -> wake -> on-line cycle must hold on the 64GB
SPEC platform, the 256GB Azure platform, and the scaled large-capacity
builds, with block sizes on both sides of the sub-array-group size.
"""

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.address import AddressMapping
from repro.dram.organization import (
    azure_server_memory,
    scaled_server_memory,
    spec_server_memory,
)
from repro.power.model import DRAMPowerModel
from repro.units import GIB, MIB

PLATFORMS = {
    "spec-64g": (spec_server_memory, 128 * MIB),
    "spec-64g-1g-blocks": (spec_server_memory, GIB),
    "azure-256g": (azure_server_memory, GIB),
    "scaled-512g": (lambda: scaled_server_memory(512), 2 * GIB),
}


@pytest.fixture(params=sorted(PLATFORMS), scope="module")
def platform(request):
    factory, block_bytes = PLATFORMS[request.param]
    organization = factory()
    system = GreenDIMMSystem(
        organization=organization,
        config=GreenDIMMConfig(block_bytes=block_bytes),
        kernel_boot_bytes=2 * GIB,
        transient_failure_probability=0.0, seed=6)
    for t in range(25):
        system.step(float(t))
    return system


class TestUniversalInvariants:
    def test_groups_always_64_and_contiguous(self, platform):
        assert platform.organization.num_subarray_groups == 64
        assert platform.mapping.group_is_contiguous()

    def test_idle_server_gates_most_capacity(self, platform):
        assert platform.daemon.dpd_fraction() > 0.5

    def test_gated_groups_fully_offline(self, platform):
        offline = set(platform.hotplug.offline_blocks())
        for group in platform.power_control.register.gated_groups():
            for block in platform.block_map.blocks_of_group(group):
                assert block in offline

    def test_reserve_respected(self, platform):
        free = platform.mm.free_pages
        assert free >= platform.daemon.reserve_pages
        # The daemon can only off-line movable-zone blocks, so free
        # memory floors at max(reserve, the kernel zone's free pages).
        normal_free = platform.mm.zones[0].allocator.free_pages
        floor = max(platform.daemon.reserve_pages, normal_free)
        assert free < floor + 3 * platform.mm.block_pages

    def test_power_scales_down_with_gating(self, platform):
        gated = platform.dram_power().total_w
        ungated = platform.baseline_dram_power().total_w
        assert gated < 0.55 * ungated

    def test_mode_registers_lockstep(self, platform):
        assert platform.power_control.mode_registers.consistent()
        state = platform.power_control.mode_registers.rank_state(0)
        assert state.subarray_gate_mask == (
            platform.power_control.register.raw_value())

    def test_address_mapping_bijective_at_edges(self, platform):
        mapping = AddressMapping(platform.organization)
        for address in (0, 64, platform.organization.total_capacity_bytes - 64):
            assert mapping.encode(mapping.decode(address)) == address

    def test_power_model_builds(self, platform):
        model = DRAMPowerModel(platform.organization)
        breakdown = model.idle_power()
        assert breakdown.total_w > 0
        assert 0.0 < breakdown.background_fraction <= 1.0

    def test_full_wake_cycle(self, platform):
        """On-line everything back: no gated group may remain."""
        daemon = platform.daemon
        target = platform.mm.free_pages + platform.hotplug.offline_count * (
            platform.mm.block_pages)
        daemon.emergency_online(target, now_s=100.0)
        assert platform.hotplug.offline_count == 0
        assert platform.power_control.register.gated_count == 0
        assert platform.mm.meminfo().total_pages == platform.mm.total_pages
