"""Baseline policy estimators (srf-only, RAMZzz, PASR)."""

from repro.baselines import (
    PASRPolicy,
    RAMZzzPolicy,
    SelfRefreshOnlyPolicy,
    resident_ranks_for,
)
from repro.dram.organization import spec_server_memory
from repro.power.model import DRAMPowerModel
from repro.power.states import PowerState
from repro.units import GIB
from repro.workloads import profile_by_name

ORG = spec_server_memory()
MODEL = DRAMPowerModel(ORG)
MCF = profile_by_name("429.mcf")
GCC = profile_by_name("403.gcc")


def policy_power(policy, profile, interleaved, n_copies=8):
    estimate = policy.estimate(profile, ORG, interleaved, n_copies)
    return MODEL.power(estimate.rank_profiles).total_w, estimate


class TestResidentRanks:
    def test_interleaved_footprint_everywhere(self):
        assert resident_ranks_for(GIB, ORG, interleaved=True) == ORG.total_ranks

    def test_non_interleaved_minimal(self):
        # 1GB + 2GB kernel -> one 4GB rank.
        assert resident_ranks_for(GIB, ORG, interleaved=False) == 1

    def test_large_footprint_spans_ranks(self):
        assert resident_ranks_for(30 * GIB, ORG, interleaved=False) == 8

    def test_capped_at_total(self):
        assert resident_ranks_for(10_000 * GIB, ORG,
                                  interleaved=False) == ORG.total_ranks


class TestSelfRefreshOnly:
    def test_interleaved_no_rank_sleeps(self):
        _power, estimate = policy_power(SelfRefreshOnlyPolicy(), MCF, True)
        for profile in estimate.rank_profiles:
            assert PowerState.SELF_REFRESH not in profile.state_residency

    def test_non_interleaved_idle_ranks_sleep(self):
        _power, estimate = policy_power(SelfRefreshOnlyPolicy(), MCF, False)
        sleeping = sum(
            1 for p in estimate.rank_profiles
            if p.state_residency.get(PowerState.SELF_REFRESH, 0) > 0.5)
        assert sleeping >= 8

    def test_power_lower_without_interleaving(self):
        with_intlv, _ = policy_power(SelfRefreshOnlyPolicy(), MCF, True)
        without, _ = policy_power(SelfRefreshOnlyPolicy(), MCF, False)
        assert without < with_intlv


class TestRAMZzz:
    def test_no_benefit_with_interleaving(self):
        ramzzz, _ = policy_power(RAMZzzPolicy(), MCF, True)
        srf, _ = policy_power(SelfRefreshOnlyPolicy(), MCF, True)
        assert ramzzz >= srf * 0.98  # monitoring gains nothing

    def test_beats_srf_without_interleaving(self):
        ramzzz, _ = policy_power(RAMZzzPolicy(), GCC, False)
        srf, _ = policy_power(SelfRefreshOnlyPolicy(), GCC, False)
        assert ramzzz < srf

    def test_carries_runtime_overhead(self):
        _power, estimate = policy_power(RAMZzzPolicy(), MCF, False)
        assert estimate.runtime_factor > 1.0


class TestPASR:
    def test_no_idle_banks_with_interleaving(self):
        _power, estimate = policy_power(PASRPolicy(), MCF, True)
        assert "0.00" in estimate.notes

    def test_refresh_savings_without_interleaving(self):
        pasr, _ = policy_power(PASRPolicy(), MCF, False)
        srf, _ = policy_power(SelfRefreshOnlyPolicy(), MCF, False)
        assert pasr < srf

    def test_idle_bank_fraction_shrinks_with_footprint(self):
        _p1, small = policy_power(PASRPolicy(), GCC, False, n_copies=1)
        _p2, big = policy_power(PASRPolicy(), MCF, False, n_copies=16)
        frac_small = float(small.notes.split()[-1])
        frac_big = float(big.notes.split()[-1])
        assert frac_small > frac_big
