"""Memory-controller components: bank FSM, low-power policy, registers."""

import pytest

from repro.dram.organization import spec_server_memory
from repro.dram.timing import DDR4_2133
from repro.errors import ConfigurationError, PowerStateError
from repro.memctrl.bankstate import BankState
from repro.memctrl.lowpower import LowPowerConfig, RankLowPowerPolicy
from repro.memctrl.pasr import PASRBitVector
from repro.memctrl.registers import GreenDIMMControlRegister
from repro.memctrl.request import AccessType, MemoryRequest
from repro.power.states import PowerState

ORG = spec_server_memory()


class TestBankState:
    def test_first_access_is_a_miss(self):
        bank = BankState()
        finish = bank.access(row=5, now_ns=0.0, timing=DDR4_2133)
        assert bank.row_misses == 1 and bank.row_hits == 0
        assert finish == pytest.approx(DDR4_2133.trcd_ns + DDR4_2133.cl_ns
                                       + DDR4_2133.burst_duration_ns)

    def test_second_access_same_row_hits(self):
        bank = BankState()
        first = bank.access(5, 0.0, DDR4_2133)
        second = bank.access(5, first, DDR4_2133)
        assert bank.row_hits == 1
        assert second - first <= DDR4_2133.cl_ns + DDR4_2133.burst_duration_ns + 1

    def test_conflict_pays_precharge(self):
        bank = BankState()
        t1 = bank.access(5, 0.0, DDR4_2133)
        t2 = bank.access(9, t1, DDR4_2133)
        hit_time = DDR4_2133.cl_ns + DDR4_2133.burst_duration_ns
        assert t2 - t1 > hit_time + DDR4_2133.trp_ns - 1

    def test_precharge_closes_row(self):
        bank = BankState()
        bank.access(5, 0.0, DDR4_2133)
        bank.precharge()
        assert bank.open_row is None

    def test_row_hit_rate(self):
        bank = BankState()
        t = 0.0
        for _ in range(4):
            t = bank.access(7, t, DDR4_2133)
        assert bank.row_hit_rate == pytest.approx(0.75)


class TestLowPowerPolicy:
    def test_fresh_rank_in_standby(self):
        policy = RankLowPowerPolicy(LowPowerConfig())
        assert policy.state_at(0.0) is PowerState.PRECHARGE_STANDBY

    def test_demotion_ladder(self):
        config = LowPowerConfig(powerdown_idle_ns=100, selfrefresh_idle_ns=1000)
        policy = RankLowPowerPolicy(config)
        assert policy.state_at(50) is PowerState.PRECHARGE_STANDBY
        assert policy.state_at(500) is PowerState.POWER_DOWN
        assert policy.state_at(5000) is PowerState.SELF_REFRESH

    def test_disabled_policy_never_sleeps(self):
        policy = RankLowPowerPolicy(LowPowerConfig(enabled=False))
        assert policy.state_at(1e12) is PowerState.PRECHARGE_STANDBY
        assert policy.wake_penalty_ns(1e12) == 0.0

    def test_wake_penalty_matches_state(self):
        config = LowPowerConfig(powerdown_idle_ns=100, selfrefresh_idle_ns=1000)
        policy = RankLowPowerPolicy(config)
        assert policy.wake_penalty_ns(500) == 18.0
        assert policy.wake_penalty_ns(2000) == 768.0

    def test_residency_accounting_splits_states(self):
        config = LowPowerConfig(powerdown_idle_ns=100, selfrefresh_idle_ns=1000)
        policy = RankLowPowerPolicy(config)
        policy.account_until(2000.0)
        res = policy.residency
        assert res.time_ns[PowerState.PRECHARGE_STANDBY] == pytest.approx(100)
        assert res.time_ns[PowerState.POWER_DOWN] == pytest.approx(900)
        assert res.time_ns[PowerState.SELF_REFRESH] == pytest.approx(1000)
        assert res.total_ns == pytest.approx(2000)

    def test_activity_resets_idleness(self):
        config = LowPowerConfig(powerdown_idle_ns=100, selfrefresh_idle_ns=1000)
        policy = RankLowPowerPolicy(config)
        policy.note_activity(5000.0)
        assert policy.state_at(5050.0) is PowerState.PRECHARGE_STANDBY

    def test_busy_time_counts_as_active(self):
        policy = RankLowPowerPolicy(LowPowerConfig())
        policy.note_activity(100.0, busy_from_ns=40.0)
        policy.account_until(200.0)
        active = policy.residency.time_ns[PowerState.ACTIVE_STANDBY]
        assert active == pytest.approx(60.0)

    def test_residency_map_normalizes(self):
        policy = RankLowPowerPolicy(LowPowerConfig())
        policy.account_until(1000.0)
        total = sum(policy.residency.residency_map().values())
        assert total == pytest.approx(1.0)

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            LowPowerConfig(powerdown_idle_ns=1000, selfrefresh_idle_ns=100)


class TestPASRBitVector:
    def test_paper_register_size(self):
        # 16 bits per rank, 128 bits for 4 channels x 2 ranks.
        from repro.dram.organization import MemoryOrganization
        from repro.dram.device import DDR4_4GB_X8
        org = MemoryOrganization(device=DDR4_4GB_X8, channels=4,
                                 dimms_per_channel=1, ranks_per_dimm=2)
        assert PASRBitVector(org).register_bits == 128

    def test_spec_platform_needs_256_bits(self):
        assert PASRBitVector(ORG).register_bits == 256

    def test_mask_operations(self):
        vec = PASRBitVector(ORG)
        assert vec.is_refreshing(3, 7)
        vec.disable_refresh(3, 7)
        assert not vec.is_refreshing(3, 7)
        vec.enable_refresh(3, 7)
        assert vec.is_refreshing(3, 7)

    def test_refreshing_fraction(self):
        vec = PASRBitVector(ORG)
        assert vec.refreshing_fraction() == 1.0
        for bank in range(16):
            vec.disable_refresh(0, bank)
        assert vec.refreshing_fraction() == pytest.approx(15 / 16)

    def test_bounds_checked(self):
        vec = PASRBitVector(ORG)
        with pytest.raises(ConfigurationError):
            vec.disable_refresh(99, 0)
        with pytest.raises(ConfigurationError):
            vec.is_refreshing(0, 99)


class TestGreenDIMMRegister:
    def test_64_bits_regardless_of_topology(self):
        # The paper's headline contrast with PASR's 128+ bits.
        assert GreenDIMMControlRegister().register_bits == 64

    def test_gate_ungate_cycle(self):
        reg = GreenDIMMControlRegister()
        reg.gate(5)
        assert reg.is_gated(5)
        assert not reg.is_ready(5, 0.0)
        ready_at = reg.ungate(5, now_ns=100.0)
        assert ready_at == pytest.approx(118.0)  # 18ns wake
        assert not reg.is_ready(5, 110.0)
        assert reg.is_ready(5, 120.0)

    def test_cannot_gate_mid_wakeup(self):
        reg = GreenDIMMControlRegister()
        reg.gate(5)
        reg.ungate(5, 0.0)
        with pytest.raises(PowerStateError):
            reg.gate(5)

    def test_regate_after_wake_completes(self):
        reg = GreenDIMMControlRegister()
        reg.gate(5)
        reg.ungate(5, 0.0)
        assert reg.is_ready(5, 1000.0)
        reg.gate(5)
        assert reg.is_gated(5)

    def test_ungate_of_ungated_rejected(self):
        with pytest.raises(PowerStateError):
            GreenDIMMControlRegister().ungate(0, 0.0)

    def test_gated_fraction_and_raw(self):
        reg = GreenDIMMControlRegister()
        for group in (0, 1, 63):
            reg.gate(group)
        assert reg.gated_count == 3
        assert reg.gated_fraction() == pytest.approx(3 / 64)
        assert reg.raw_value() == (1 | 2 | (1 << 63))
        assert list(reg.gated_groups()) == [0, 1, 63]


class TestMemoryRequest:
    def test_latency_derived(self):
        req = MemoryRequest(address=0, arrival_ns=10.0)
        req.finish_ns = 60.0
        assert req.latency_ns == 50.0

    def test_write_flag(self):
        assert MemoryRequest(0, AccessType.WRITE).is_write
        assert not MemoryRequest(0).is_write
