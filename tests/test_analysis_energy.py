"""EnergyAccount integration and comparison."""

import pytest

from repro.analysis.energy import EnergyAccount
from repro.dram.organization import spec_server_memory
from repro.errors import ConfigurationError
from repro.power.model import DRAMPowerBreakdown, DRAMPowerModel

MODEL = DRAMPowerModel(spec_server_memory())


class TestEnergyAccount:
    def test_integration(self):
        account = EnergyAccount()
        account.add(DRAMPowerBreakdown(1.0, 2.0, 3.0, 4.0, 5.0), 10.0)
        assert account.total_j == pytest.approx(150.0)
        assert account.static_j == pytest.approx(30.0)
        assert account.mean_power_w == pytest.approx(15.0)
        assert account.elapsed_s == 10.0

    def test_accumulates(self):
        account = EnergyAccount()
        breakdown = DRAMPowerBreakdown(1.0, 0.0, 0.0, 0.0, 0.0)
        account.add(breakdown, 5.0)
        account.add(breakdown, 5.0)
        assert account.joules["background"] == pytest.approx(10.0)

    def test_fractions_sum_to_one(self):
        account = EnergyAccount()
        account.add(MODEL.busy_power(10e9), 60.0)
        total = sum(account.fraction(c) for c in
                    ("background", "refresh", "activate", "rw", "io"))
        assert total == pytest.approx(1.0)

    def test_unknown_component(self):
        with pytest.raises(ConfigurationError):
            EnergyAccount().fraction("dll")

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyAccount().add(DRAMPowerBreakdown(1, 1, 1, 1, 1), -1.0)

    def test_compare_shows_static_reduction_only(self):
        """Gating reduces background+refresh and nothing else."""
        unmanaged = EnergyAccount()
        gated = EnergyAccount()
        unmanaged.add(MODEL.busy_power(10e9), 100.0)
        gated.add(MODEL.busy_power(10e9, dpd_fraction=0.6), 100.0)
        reductions = dict(gated.compare(unmanaged))
        assert reductions["background"] > 0.4
        assert reductions["refresh"] > 0.4
        assert reductions["activate"] == pytest.approx(0.0)
        assert reductions["rw"] == pytest.approx(0.0)
        assert reductions["io"] == pytest.approx(0.0)

    def test_render(self):
        account = EnergyAccount()
        account.add(MODEL.idle_power(), 10.0)
        text = account.render("demo")
        assert "demo" in text and "total" in text and "100.0%" in text

    def test_empty_account(self):
        account = EnergyAccount()
        assert account.total_j == 0.0
        assert account.mean_power_w == 0.0
        assert account.fraction("io") == 0.0
