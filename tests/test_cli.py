"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "greendimm-repro" in capsys.readouterr().out


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "429.mcf" in out
        assert "data-caching" in out
        assert "latency-critical" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for exp in ("fig1", "tab3", "fig13", "tail-latency"):
            assert exp in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "tab1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "paper vs measured" in out

    def test_run_no_fast_forward(self, capsys):
        assert main(["run", "tab1", "--fast", "--no-fast-forward"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "sub-array groups" in out
        assert "64 x 1024 MiB" in out

    def test_topology_scaled(self, capsys):
        assert main(["topology", "--capacity", "256"]) == 0
        assert "256GB" in capsys.readouterr().out

    def test_simulate_cpu_bound(self, capsys):
        assert main(["simulate", "453.povray", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "DRAM energy saved" in out
        assert "execution-time overhead" in out

    def test_simulate_unknown_workload(self, capsys):
        assert main(["simulate", "999.bogus"]) == 1
        assert "error:" in capsys.readouterr().err


class TestValidate:
    def test_validate_passes(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "Model validation" in out
        assert "FAIL" not in out

    def test_validation_results_structured(self):
        from repro.validate import run_validation

        results = run_validation()
        assert len(results) >= 10
        assert all(r.passed for r in results)
        names = {r.name for r in results}
        assert "power-down exit (ns)" in names
