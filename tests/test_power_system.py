"""System (CPU + DRAM + platform) power model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.cacti import estimate_gating_cost
from repro.power.system import CPUPowerModel, SystemPowerModel
from repro.dram.device import DDR4_4GB_X8, DDR4_8GB_X8


class TestCPUPower:
    def test_idle_and_peak(self):
        cpu = CPUPowerModel()
        assert cpu.power_w(0.0) == cpu.idle_w
        assert cpu.power_w(1.0) == cpu.peak_w

    def test_linear_midpoint(self):
        cpu = CPUPowerModel(idle_w=20.0, peak_w=60.0)
        assert cpu.power_w(0.5) == pytest.approx(40.0)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigurationError):
            CPUPowerModel().power_w(1.2)

    def test_rejects_peak_below_idle(self):
        with pytest.raises(ConfigurationError):
            CPUPowerModel(idle_w=50.0, peak_w=30.0)


class TestSystemPower:
    def test_composition(self):
        system = SystemPowerModel()
        expected = system.cpu.power_w(0.9) + 26.0 + system.platform_rest_w
        assert system.power_w(0.9, 26.0) == pytest.approx(expected)

    def test_rejects_negative_dram(self):
        with pytest.raises(ConfigurationError):
            SystemPowerModel().power_w(0.5, -1.0)

    def test_paper_system_shares(self):
        """Figure 13 consistency: a 32% DRAM cut at 256GB moves system
        power ~9%; a 36% cut at 1TB moves it ~20%."""
        system = SystemPowerModel()
        at_256 = system.power_w(0.9, 26.0)
        saved_256 = 0.32 * 26.0 / at_256
        assert saved_256 == pytest.approx(0.09, abs=0.03)
        at_1tb = system.power_w(0.9, 91.0)
        saved_1tb = 0.36 * 91.0 / at_1tb
        assert saved_1tb == pytest.approx(0.20, abs=0.04)


class TestCactiLite:
    def test_switch_area_fraction_near_paper(self):
        # Paper: 1500 um^2 per sub-array, 0.64% of the 8Gb die.
        cost = estimate_gating_cost(DDR4_8GB_X8)
        assert cost.switch_area_fraction == pytest.approx(0.0064, rel=0.05)

    def test_total_overhead_below_1pct(self):
        cost = estimate_gating_cost(DDR4_8GB_X8)
        assert cost.total_overhead_fraction < 0.01

    def test_smaller_die_same_ballpark(self):
        cost = estimate_gating_cost(DDR4_4GB_X8)
        assert 0.004 < cost.switch_area_fraction < 0.02
        assert cost.num_subarrays == 1024

    def test_per_subarray_area_matches_constant(self):
        from repro.power.cacti import SWITCH_AREA_UM2_PER_SUBARRAY
        cost = estimate_gating_cost(DDR4_8GB_X8)
        assert cost.switch_area_um2 == pytest.approx(
            cost.num_subarrays * SWITCH_AREA_UM2_PER_SUBARRAY)
