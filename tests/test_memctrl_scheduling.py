"""FR-FCFS scheduling behaviour of the controller."""

from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.organization import spec_server_memory
from repro.memctrl.controller import MemoryController
from repro.memctrl.lowpower import LowPowerConfig
from repro.memctrl.request import MemoryRequest

ORG = spec_server_memory()
MAPPING = AddressMapping(ORG)
LOCAL_ROW_BITS = ORG.device.local_row_bits


def address_for(channel=0, rank=0, bank=0, subarray=0, local_row=0,
                column=0) -> int:
    return MAPPING.encode(DecodedAddress(
        channel=channel, rank=rank, bank=bank, subarray=subarray,
        local_row=local_row, column=column, offset=0))


def controller() -> MemoryController:
    return MemoryController(ORG, mapping=MAPPING,
                            lowpower=LowPowerConfig(enabled=False))


class TestRowHitFirst:
    def test_younger_row_hit_overtakes_older_conflict(self):
        """Classic FR-FCFS: with a row open, a younger hit to that row is
        served before an older request that would close it."""
        open_row = MemoryRequest(address_for(local_row=0, column=0),
                                 arrival_ns=0.0)
        conflict = MemoryRequest(address_for(local_row=5, column=0),
                                 arrival_ns=1.0)
        hit = MemoryRequest(address_for(local_row=0, column=8),
                            arrival_ns=2.0)
        stats = controller().run([open_row, conflict, hit])
        assert hit.finish_ns < conflict.finish_ns
        assert stats.row_hits >= 1

    def test_fcfs_when_no_hit_available(self):
        first = MemoryRequest(address_for(local_row=1), arrival_ns=0.0)
        second = MemoryRequest(address_for(local_row=2), arrival_ns=1.0)
        controller().run([first, second])
        assert first.finish_ns < second.finish_ns

    def test_window_bounds_reordering(self):
        """A row hit beyond the reorder window cannot overtake."""
        requests = [MemoryRequest(address_for(local_row=100 + i),
                                  arrival_ns=float(i)) for i in range(20)]
        requests.append(MemoryRequest(address_for(local_row=100, column=8),
                                      arrival_ns=20.0))
        narrow = MemoryController(ORG, mapping=MAPPING, window=2,
                                  lowpower=LowPowerConfig(enabled=False))
        narrow.run(requests)
        # The late hit was outside every window, so it finishes last.
        assert requests[-1].finish_ns == max(r.finish_ns for r in requests)


class TestChannelIndependence:
    def test_channels_do_not_serialize(self):
        """The same load on one channel vs spread over four: the spread
        version finishes markedly earlier."""
        one = [MemoryRequest(address_for(channel=0, local_row=i), 0.0)
               for i in range(40)]
        spread = [MemoryRequest(address_for(channel=i % 4, local_row=i), 0.0)
                  for i in range(40)]
        t_one = controller().run(one).total_time_ns
        t_spread = controller().run(spread).total_time_ns
        assert t_spread < 0.5 * t_one


class TestBankParallelism:
    def test_bank_conflicts_cost_time(self):
        same_bank = [MemoryRequest(address_for(bank=0, local_row=i), 0.0)
                     for i in range(16)]
        many_banks = [MemoryRequest(address_for(bank=i, local_row=1), 0.0)
                      for i in range(16)]
        t_same = controller().run(same_bank).total_time_ns
        t_many = controller().run(many_banks).total_time_ns
        assert t_many < t_same


class TestRefreshInterference:
    def test_long_idle_gap_accumulates_refreshes_without_stall(self):
        """Refreshes during idle gaps are caught up, not charged to the
        next request beyond at most one tRFC."""
        early = MemoryRequest(address_for(local_row=1), arrival_ns=0.0)
        late = MemoryRequest(address_for(local_row=1, column=8),
                             arrival_ns=1e6)  # 1ms later: ~128 tREFIs
        stats = controller().run([early, late])
        assert late.latency_ns < 1000.0  # far less than 128 x tRFC
