"""Analytic performance model: interleaving speedups and daemon overhead."""

import pytest

from repro.dram.organization import spec_server_memory
from repro.errors import ConfigurationError
from repro.sim.perfmodel import (
    MemorySystemPoint,
    PerformanceModel,
    interleaved_point,
    non_interleaved_point,
)
from repro.workloads import profile_by_name

ORG = spec_server_memory()
PERF = PerformanceModel()


class TestOperatingPoints:
    def test_interleaved_has_more_mlp(self):
        on = interleaved_point(ORG)
        off = non_interleaved_point(ORG)
        assert on.effective_mlp > off.effective_mlp
        assert on.latency_ns < off.latency_ns
        assert on.bandwidth_cap_bytes_per_s > off.bandwidth_cap_bytes_per_s

    def test_point_validation(self):
        with pytest.raises(ConfigurationError):
            MemorySystemPoint(name="bad", latency_ns=0.0, effective_mlp=1.0,
                              bandwidth_cap_bytes_per_s=1e9)


class TestSpeedups:
    def test_memory_intensive_speedup_near_paper(self):
        """Figure 3a: interleaving speeds lbm-class workloads up ~3.8x."""
        lbm = profile_by_name("470.lbm")
        speedup = PERF.speedup_from_interleaving(lbm, ORG, n_copies=16)
        assert 2.5 <= speedup <= 5.5

    def test_cpu_bound_barely_affected(self):
        povray = profile_by_name("453.povray")
        speedup = PERF.speedup_from_interleaving(povray, ORG, n_copies=16)
        assert speedup < 1.3

    def test_speedup_ordering_follows_mpki(self):
        ordered = [PERF.speedup_from_interleaving(profile_by_name(n), ORG)
                   for n in ("453.povray", "403.gcc", "470.lbm")]
        assert ordered[0] < ordered[1] < ordered[2]

    def test_runtime_scales_with_point(self):
        mcf = profile_by_name("429.mcf")
        on = interleaved_point(ORG)
        off = non_interleaved_point(ORG)
        assert PERF.runtime_s(mcf, on) == pytest.approx(mcf.duration_s)
        assert PERF.runtime_s(mcf, off) > mcf.duration_s

    def test_wake_penalty_slows_down(self):
        mcf = profile_by_name("429.mcf")
        clean = interleaved_point(ORG)
        woken = interleaved_point(ORG, wake_penalty_ns=500.0)
        assert PERF.cpi(mcf, woken) > PERF.cpi(mcf, clean)

    def test_bandwidth_saturation_inflates_cpi(self):
        lbm = profile_by_name("470.lbm")
        on = interleaved_point(ORG)
        assert PERF.cpi(lbm, on, n_copies=32) > PERF.cpi(lbm, on, n_copies=1)


class TestGreenDIMMOverhead:
    def test_overhead_bounded_at_paper_cap(self):
        for name in ("429.mcf", "403.gcc", "470.lbm", "453.povray"):
            profile = profile_by_name(name)
            overhead = PERF.greendimm_overhead_fraction(
                profile, offline_events=500, online_events=500,
                elapsed_s=600.0)
            assert overhead <= 0.035

    def test_no_events_no_overhead(self):
        mcf = profile_by_name("429.mcf")
        assert PERF.greendimm_overhead_fraction(mcf, 0, 0, 600.0) == 0.0

    def test_overhead_grows_with_event_rate(self):
        gcc = profile_by_name("403.gcc")
        low = PERF.greendimm_overhead_fraction(gcc, 10, 10, 600.0)
        high = PERF.greendimm_overhead_fraction(gcc, 50, 50, 600.0)
        assert high > low

    def test_memory_sensitivity_matters(self):
        sensitive = PERF.greendimm_overhead_fraction(
            profile_by_name("429.mcf"), 20, 20, 600.0)
        insensitive = PERF.greendimm_overhead_fraction(
            profile_by_name("453.povray"), 20, 20, 600.0)
        assert sensitive > insensitive

    def test_mcf_block_size_shape(self):
        """Figure 7's direction: more events (smaller blocks) cost more."""
        mcf = profile_by_name("429.mcf")
        small_blocks = PERF.greendimm_overhead_fraction(mcf, 6, 13, 600.0)
        large_blocks = PERF.greendimm_overhead_fraction(mcf, 1, 4, 600.0)
        assert small_blocks > large_blocks
        assert small_blocks < 0.035

    def test_tail_latency_factor(self):
        serving = profile_by_name("data-caching")
        factor = PERF.tail_latency_factor(serving, overhead_fraction=0.01)
        assert 1.0 < factor < 1.01
        batch = profile_by_name("429.mcf")
        assert PERF.tail_latency_factor(batch, 0.01) == pytest.approx(1.01)
