"""The resident fleet service: ingest, tick, checkpoint, reconfigure.

Covers the in-process :class:`FleetService` surface and the REST
control plane end-to-end (a real asyncio server on an ephemeral port,
driven through :class:`ControlClient`).  The load-bearing property is
checkpoint transparency: restore/migrate/reshard must never change
simulation results.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import ReproError, SimulationError
from repro.faults.plan import storm_plan
from repro.service import (
    ControlClient,
    ControlPlane,
    FleetService,
    StreamSource,
)
from repro.sim.fleet import shard_assignment
from repro.units import GIB
from repro.workloads.azure import VMEvent, VMInstance, VMType


def _vm_event(vm_id: int, time_s: float, kind: str = "arrive",
              memory_bytes: int = 2 * GIB) -> VMEvent:
    vm_type = VMType(name=f"t{vm_id}", vcpus=2, memory_bytes=memory_bytes,
                     lifetime_mu=0.0, lifetime_sigma=1.0, image_id=0)
    return VMEvent(time_s=time_s, kind=kind,
                   instance=VMInstance(vm_id=vm_id, vm_type=vm_type,
                                       arrival_s=time_s,
                                       departure_s=float("inf")))


class TestStreamSource:
    def test_rejects_events_behind_the_cursor(self):
        source = StreamSource(sim=None)
        source.push(_vm_event(1, 100.0))
        source.events, source.cursor = source.events, 1  # consumed
        with pytest.raises(SimulationError, match="behind the replay"):
            source.push(_vm_event(2, 50.0))

    def test_horizon_is_next_event_or_infinity(self):
        source = StreamSource(sim=None)
        assert source.horizon(0.0) == float("inf")
        source.push(_vm_event(1, 30.0))
        assert source.horizon(0.0) == 30.0
        assert source.horizon(30.0) == 30.0  # due now: veto
        assert source.pending == 1


class TestFleetService:
    def test_routing_matches_batch_fleet(self):
        service = FleetService(num_servers=3, num_workers=2)
        assert [service.route(v) for v in range(6)] == [0, 1, 2, 0, 1, 2]
        assert service.assignment == shard_assignment(3, 2)

    def test_ingest_advance_and_departure(self):
        service = FleetService(num_servers=2, num_workers=1)
        placed = service.ingest(vm_id=1, memory_bytes=2 * GIB, time_s=0.0,
                                lifetime_s=600.0)
        assert placed["server"] == 1
        service.advance(until_s=300.0)
        status = service.server_status(1)
        assert status["running_vms"] == 1
        assert status["now_s"] == 300.0
        assert status["dram_energy_j"] > 0
        service.advance(dt_s=600.0)
        assert service.server_status(1)["running_vms"] == 0
        assert service.status()["now_s"] == 900.0

    def test_restore_then_continue_is_bit_identical(self):
        def drive(restore_at=None):
            service = FleetService(num_servers=2, num_workers=1)
            service.ingest(vm_id=1, memory_bytes=2 * GIB, time_s=0.0,
                           lifetime_s=900.0)
            service.advance(until_s=300.0)
            blob = service.snapshot(1)
            if restore_at is not None:
                service.restore(1, blob)
                assert service.server_status(1)["now_s"] == 300.0
            service.advance(until_s=1200.0)
            status = service.server_status(1)
            return (status["dram_energy_j"].hex(),
                    status["baseline_dram_energy_j"].hex(),
                    status["residency_s"])

        assert drive(restore_at=300.0) == drive()

    def test_migrate_and_reshard_preserve_state(self):
        service = FleetService(num_servers=3, num_workers=1)
        service.ingest(vm_id=0, memory_bytes=4 * GIB, time_s=0.0)
        service.advance(until_s=120.0)
        before = {i: service.server_status(i)["dram_energy_j"]
                  for i in range(3)}
        moved = service.migrate(0, 0)
        assert moved["server"] == 0
        result = service.reshard(3)
        assert result["workers"] == 3
        assert service.num_workers == 3
        after = {i: service.server_status(i)["dram_energy_j"]
                 for i in range(3)}
        assert {k: v.hex() for k, v in before.items()} == \
               {k: v.hex() for k, v in after.items()}
        # the fleet still ticks after rebalancing
        service.advance(dt_s=60.0)
        assert service.status()["now_s"] == 180.0

    def test_runtime_fault_injection_and_retune(self):
        service = FleetService(num_servers=1, num_workers=1)
        service.ingest(vm_id=0, memory_bytes=2 * GIB, time_s=0.0)
        service.advance(until_s=60.0)
        armed = service.inject_fault_plan(
            0, storm_plan(seed=5, intensity=3.0,
                          duration_s=600.0).shifted(60.0).to_dict())
        assert armed["rules"] > 0
        assert service.server_status(0)["fault_plan"] is not None
        service.retune({"off_thr_fraction": 0.2, "on_thr_fraction": 0.15})
        config = service.server_status(0)["config"]
        assert config["off_thr_fraction"] == 0.2
        service.advance(until_s=300.0)  # survives the storm
        with pytest.raises(ReproError, match="hysteresis"):
            service.retune({"off_thr_fraction": 0.1,
                            "on_thr_fraction": 0.2})

    def test_errors(self):
        service = FleetService(num_servers=1, num_workers=1)
        with pytest.raises(ReproError, match="no server"):
            service.server(5)
        with pytest.raises(ReproError, match="exactly one"):
            service.advance()
        with pytest.raises(ReproError, match="rewind"):
            service.advance(until_s=10.0) and service.advance(until_s=5.0)
        service.advance(until_s=20.0)
        with pytest.raises(ReproError, match="rewind"):
            service.advance(until_s=5.0)
        with pytest.raises(ReproError, match="no worker"):
            service.migrate(0, 9)


class _ServiceFixture:
    """A real control plane on an ephemeral port, in a side thread."""

    def __init__(self, **kwargs):
        self.service = FleetService(**kwargs)
        self.loop = asyncio.new_event_loop()
        self.plane = ControlPlane(self.service, port=0)
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.plane.start())
            started.set()
            self.loop.run_until_complete(
                self.plane.serve_until_shutdown())
            self.loop.close()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10.0)
        self.client = ControlClient(
            f"http://127.0.0.1:{self.plane.bound_port}")

    def stop(self):
        if self.thread.is_alive():
            try:
                self.client.shutdown()
            except ReproError:
                pass
            self.thread.join(10.0)


@pytest.fixture
def live_service():
    fixture = _ServiceFixture(num_servers=2, num_workers=1)
    yield fixture
    fixture.stop()


class TestControlPlane:
    def test_rest_drive(self, live_service):
        client = live_service.client
        assert client.status()["servers"] == 2
        placed = client.ingest(vm_id=1, memory_bytes=2 * GIB,
                               lifetime_s=600.0)
        assert placed["server"] == 1
        assert client.advance(until_s=300.0)["now_s"] == 300.0

        blob = client.snapshot(1)
        client.advance(until_s=900.0)
        energy_golden = client.server(1)["dram_energy_j"]
        residency_golden = client.server(1)["residency_s"]

        # kill the state, restore the checkpoint, replay the same tick
        assert client.restore(1, blob)["restored"] is True
        assert client.server(1)["now_s"] == 300.0
        client.advance(until_s=900.0)
        assert client.server(1)["dram_energy_j"].hex() == \
            energy_golden.hex()
        assert client.server(1)["residency_s"] == residency_golden

        events = client.events(1, limit=5)
        assert all({"time_s", "kind", "block"} <= set(e) for e in events)
        summaries = client.servers()
        assert [s["server"] for s in summaries] == [0, 1]

    def test_rest_reconfiguration(self, live_service):
        client = live_service.client
        client.ingest(vm_id=0, memory_bytes=2 * GIB)
        client.advance(until_s=60.0)
        armed = client.inject_fault_plan(
            0, storm_plan(seed=2, duration_s=300.0).shifted(60.0).to_dict())
        assert armed["plan"].startswith("storm")
        tuned = client.retune({"off_thr_fraction": 0.18,
                               "on_thr_fraction": 0.14}, server=0)
        assert tuned["servers"] == [0]
        assert client.server(0)["config"]["off_thr_fraction"] == 0.18
        moved = client.migrate(1, 0)
        assert moved["server"] == 1
        assert client.reshard(2)["workers"] == 2
        client.advance(dt_s=120.0)
        assert client.status()["now_s"] == 180.0

    def test_rest_errors(self, live_service):
        client = live_service.client
        with pytest.raises(ReproError, match="no server"):
            client.server(9)
        with pytest.raises(ReproError, match="404"):
            client._get("/nonsense")
        with pytest.raises(ReproError, match="overrides"):
            client.retune({})
        with pytest.raises(ReproError, match="snapshot body"):
            client.restore(0, b"")
        with pytest.raises(ReproError):
            client.restore(0, b"garbage bytes")
