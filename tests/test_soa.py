"""SoA mirror property tests: the arrays must match the objects exactly.

The structure-of-arrays stores in :mod:`repro.soa` are write-back
mirrors, never the source of truth.  These tests replay randomized
daemon / hot-plug / fault sequences through the public APIs and then
compare every array (and the hot-query side sets) against the
authoritative object state — per-block accounting, the offline set, and
the controller's gating register — plus the reference address-layer
rescan for gate eligibility.
"""

import random

import numpy as np

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import DDR4_4GB_X8, MemoryOrganization
from repro.errors import AllocationError, WakeupTimeoutError
from repro.faults.plan import storm_plan
from repro.os.page import OwnerKind
from repro.sim.server import ServerSimulator
from repro.units import MIB
from repro.workloads import profile_by_name


def small_system(seed=7, fault_plan=None):
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    return GreenDIMMSystem(organization=organization,
                           config=GreenDIMMConfig(block_bytes=128 * MIB),
                           kernel_boot_bytes=512 * MIB,
                           transient_failure_probability=0.5, seed=seed,
                           fault_plan=fault_plan)


def assert_block_store_matches(system):
    """BlockStateStore arrays == the BlockAccounting objects, exactly."""
    mm = system.mm
    soa = mm.soa_view()  # flushes the dirty set
    used = [mm.block_accounting(b).used_pages for b in range(mm.num_blocks)]
    unmovable = [mm.block_accounting(b).unmovable_pages
                 for b in range(mm.num_blocks)]
    np.testing.assert_array_equal(soa.used_pages, used)
    np.testing.assert_array_equal(soa.unmovable_pages, unmovable)
    offline = set(system.hotplug.offline_blocks())
    np.testing.assert_array_equal(
        soa.offline, [b in offline for b in range(mm.num_blocks)])


def assert_gate_store_matches(system):
    """GroupGateStore arrays/side-sets == register + topology rescan."""
    pc = system.power_control
    soa = pc.soa
    block_map = system.block_map
    offline = pc.offline_blocks
    cover = [sum(1 for b in offline if g in block_map.groups_of_block(b))
             for g in range(block_map.num_groups)]
    np.testing.assert_array_equal(soa.cover, cover)
    full = {g for g in range(block_map.num_groups)
            if cover[g] == soa.blocks_per_group}
    assert soa._full == full
    gated = {g for g in range(block_map.num_groups)
             if pc.register.is_gated(g)}
    assert soa._gated_set == gated
    np.testing.assert_array_equal(
        soa.gated, [g in gated for g in range(block_map.num_groups)])
    # The incremental eligibility views must equal the reference rescan
    # through the address-mapping layer, including ordering.
    assert soa.eligible_groups() == block_map.gateable_groups(
        offline, pair_constraint=soa.pair_gating)
    assert list(np.nonzero(soa.eligible_mask())[0]) == soa.eligible_groups()
    # Gated groups are always a subset the register agrees with; the
    # candidates/broken views partition against it consistently.
    assert set(soa.gate_candidates()).isdisjoint(gated)
    assert set(soa.broken_gated_groups()) <= gated


class TestRandomizedSequences:
    def _churn(self, seed):
        rng = random.Random(seed)
        system = small_system(seed=seed)
        mm, hotplug = system.mm, system.hotplug
        daemon, pc = system.daemon, system.power_control
        owners = [f"vm{i}" for i in range(4)]
        now = 0.0
        for step in range(160):
            now += 1.0
            roll = rng.random()
            if roll < 0.35:
                pages = rng.randrange(64, 24_000)
                kind = OwnerKind.KERNEL if rng.random() < 0.1 \
                    else OwnerKind.USER
                try:
                    mm.allocate(rng.choice(owners), pages, kind=kind)
                except AllocationError:
                    daemon.emergency_online(pages, now)
            elif roll < 0.60:
                mm.free_pages_of(rng.choice(owners),
                                 rng.randrange(64, 24_000))
            elif roll < 0.80:
                daemon.monitor_once(now)
            elif roll < 0.90:
                candidates = hotplug.online_blocks()
                if candidates:
                    block = rng.choice(candidates)
                    result = hotplug.try_offline_block(block)
                    if result.success:
                        pc.block_offlined(block, now)
            else:
                offline = hotplug.offline_blocks()
                if offline:
                    block = rng.choice(offline)
                    try:
                        pc.prepare_online(block, now)
                    except WakeupTimeoutError:
                        continue
                    hotplug.online_block(block)
                    pc.block_onlined(block, now)
            if step % 20 == 19:
                assert_block_store_matches(system)
                assert_gate_store_matches(system)
        assert_block_store_matches(system)
        assert_gate_store_matches(system)
        return system

    def test_mirrors_match_after_randomized_churn(self):
        for seed in (3, 11, 29):
            system = self._churn(seed)
            # The sequences must actually exercise the offline machinery,
            # or the invariants above are vacuous.
            assert system.daemon.stats.offline_events \
                + system.hotplug.stats.offline_success > 0

    def test_mirrors_match_after_fault_storm_run(self):
        plan = storm_plan(303, intensity=4.0, duration_s=120.0,
                          num_blocks=64)
        sim = ServerSimulator(small_system(fault_plan=plan), seed=5,
                              fast_forward=True)
        sim.run_workload(profile_by_name("429.mcf"), epoch_s=1.0,
                         pinned_churn=True)
        assert sim.system.fault_injector.stats.total > 0
        assert_block_store_matches(sim.system)
        assert_gate_store_matches(sim.system)


class TestResidencyClocks:
    def test_offline_and_gated_residency_accumulate(self):
        from repro.soa import GroupGateStore

        store = GroupGateStore(num_blocks=4, num_groups=4,
                               blocks_per_group=2,
                               groups_of_block=[(0,), (0,), (1,), (1,)],
                               pair_gating=True)
        store.block_offlined(0, 1.0)
        store.block_offlined(1, 2.0)
        store.group_gated(0, 2.0)
        assert store.eligible_groups() == []  # partner group 1 not full
        store.block_offlined(2, 3.0)
        store.block_offlined(3, 3.0)
        assert store.eligible_groups() == [0, 1]
        store.group_ungated(0, 5.0)
        assert store.gated_total_s[0] == 3.0
        store.block_onlined(0, 6.0)
        assert store.offline_total_s[0] == 5.0
        # Live clocks keep counting until the closing event.
        assert store.offline_residency_s(7.0)[1] == 5.0
