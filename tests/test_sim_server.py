"""Epoch server simulator: workload runs and VM-trace replays."""

import pytest

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import MemoryOrganization
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads import profile_by_name
from repro.workloads.azure import AzureTraceGenerator, AzureVMCatalog


def small_simulator(enable_ksm=False, seed=5, **config_kwargs):
    org = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                             dimms_per_channel=2, ranks_per_dimm=1)  # 8GB
    config = GreenDIMMConfig(block_bytes=128 * MIB, **config_kwargs)
    system = GreenDIMMSystem(organization=org, config=config,
                             kernel_boot_bytes=512 * MIB,
                             enable_ksm=enable_ksm,
                             transient_failure_probability=0.5, seed=seed)
    return ServerSimulator(system, seed=seed)


class TestWorkloadRun:
    def test_mcf_run_produces_savings(self):
        sim = small_simulator()
        result = sim.run_workload(profile_by_name("429.mcf"))
        assert result.elapsed_s == 600.0
        assert len(result.samples) == 600
        assert result.dram_energy_saving > 0.15
        mean_dpd = sum(s.dpd_fraction for s in result.samples) / 600
        assert mean_dpd > 0.4  # over half the capacity sits gated
        assert result.overhead_fraction < 0.035
        assert result.runtime_s > result.elapsed_s

    def test_oscillating_footprint_generates_events(self):
        sim = small_simulator()
        result = sim.run_workload(profile_by_name("403.gcc"))
        assert result.offline_events > 5
        assert result.online_events > 5

    def test_stable_footprint_generates_few_events(self):
        sim = small_simulator()
        gcc = small_simulator().run_workload(profile_by_name("403.gcc"))
        mcf = sim.run_workload(profile_by_name("429.mcf"))
        assert mcf.offline_events < gcc.offline_events

    def test_app_memory_is_preserved(self):
        sim = small_simulator()
        profile = profile_by_name("429.mcf")
        result = sim.run_workload(profile)
        from repro.units import PAGE_SIZE
        expected = profile.footprint.at(profile.duration_s) // PAGE_SIZE
        assert sim.system.mm.owner_pages("app") == pytest.approx(
            expected, rel=0.02)
        assert result.swap_shortfall_pages == 0

    def test_offline_capacity_tracks_footprint(self):
        sim = small_simulator()
        result = sim.run_workload(profile_by_name("429.mcf"))
        high_fp = [s.offline_blocks for s in result.samples
                   if 100 < s.time_s < 500]
        late = [s.offline_blocks for s in result.samples if s.time_s > 590]
        # mcf releases ~0.8GB near the end: more blocks offline afterwards.
        assert max(late) > min(high_fp)

    def test_failures_recorded(self):
        sim = small_simulator()
        result = sim.run_workload(profile_by_name("403.gcc"))
        assert result.ebusy_failures + result.eagain_failures >= 0
        assert result.offlined_bytes_total >= result.offline_events * 128 * MIB


class TestVMTraceRun:
    @pytest.fixture(scope="class")
    def vm_result(self):
        org = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                 dimms_per_channel=2, ranks_per_dimm=2)  # 32GB
        config = GreenDIMMConfig(block_bytes=512 * MIB)
        system = GreenDIMMSystem(organization=org, config=config,
                                 kernel_boot_bytes=GIB,
                                 transient_failure_probability=0.5, seed=9)
        sim = ServerSimulator(system, seed=9)
        trace = AzureTraceGenerator(
            capacity_bytes=org.total_capacity_bytes - 4 * GIB,
            physical_cores=16,
            catalog=AzureVMCatalog(num_types=40, seed=1),
            duration_s=4 * 3600.0, seed=2).generate()
        return sim.run_vm_trace(trace, epoch_s=5.0), system

    def test_blocks_cycle_with_load(self, vm_result):
        result, _system = vm_result
        assert result.max_offline_blocks > result.min_offline_blocks
        assert 0 < result.mean_offline_blocks < result.total_blocks

    def test_energy_saved(self, vm_result):
        result, _system = vm_result
        assert result.dram_energy_saving > 0.10

    def test_background_reduction_tracks_dpd(self, vm_result):
        result, _system = vm_result
        assert result.background_power_reduction == pytest.approx(
            result.mean_dpd_fraction, rel=0.1)

    def test_vms_freed_on_departure(self, vm_result):
        _result, system = vm_result
        owners = [o for o in system.mm.owners() if o.startswith("vm")]
        # Some VMs may still be running at the end, but the majority of
        # arrivals departed and released their memory.
        assert len(owners) < 40


class TestBackToBackRuns:
    """Every run on one simulator starts from clean per-run stats.

    Regression guard: ``run_vm_trace`` used to reset ``ff_stats`` inline
    while the other loops went through ``_reset_stats``, so reusing a
    simulator could leak one run's counters into the next.  The kernel
    now owns a single reset path covering daemon, hotplug, fast-forward,
    and power-cache counters.
    """

    def test_workload_stats_do_not_accumulate(self):
        sim = small_simulator()
        profile = profile_by_name("429.mcf")
        first = sim.run_workload(profile)
        assert sim.ff_stats.epochs_total == len(first.samples)
        second = sim.run_workload(profile)
        # Per-run counters: the second run's totals cover *its* epochs
        # only.  (The window structure legitimately differs between the
        # runs — the simulator keeps its memory state — so only the
        # per-run totals are comparable, not the split.)
        assert sim.ff_stats.epochs_total == len(second.samples)
        # At most two busy-power lookups per epoch; an accumulating
        # counter would land well past this bound.
        assert (sim.system.power_cache_stats.lookups
                <= 2 * len(second.samples))

    def test_vm_trace_stats_do_not_accumulate(self):
        org = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                 dimms_per_channel=2, ranks_per_dimm=1)
        config = GreenDIMMConfig(block_bytes=512 * MIB)
        system = GreenDIMMSystem(organization=org, config=config,
                                 kernel_boot_bytes=GIB,
                                 transient_failure_probability=0.5, seed=9)
        sim = ServerSimulator(system, seed=9)
        trace = AzureTraceGenerator(
            capacity_bytes=org.total_capacity_bytes - 3 * GIB,
            physical_cores=16, duration_s=3600.0, seed=2).generate()
        sim.run_vm_trace(trace, epoch_s=5.0)
        total_first = sim.ff_stats.epochs_total
        daemon_first = system.daemon.stats
        sim.run_vm_trace(trace, epoch_s=5.0)
        assert sim.ff_stats.epochs_total == total_first
        assert system.daemon.stats is not daemon_first

    def test_public_reset_clears_all_counters(self):
        sim = small_simulator()
        sim.run_workload(profile_by_name("403.gcc"))
        sim.reset_stats()
        assert sim.ff_stats.epochs_total == 0
        assert sim.ff_stats.windows == 0
        assert sim.system.power_cache_stats.lookups == 0
        assert sim.system.daemon.stats.offline_events == 0
        assert sim.system.hotplug.stats.offline_success == 0
