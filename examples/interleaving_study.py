#!/usr/bin/env python3
"""Why rank-granularity power management fails: the interleaving study.

Recreates the paper's Section 3.3 motivation on the cycle-approximate
memory controller: a small footprint (libquantum's 64MB) is sprayed over
every rank by interleaving, so no rank ever reaches its self-refresh
timeout; with interleaving disabled the idle ranks sleep — but the
workload slows down several-fold.
"""

import random

from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.memctrl.controller import MemoryController
from repro.memctrl.lowpower import LowPowerConfig
from repro.power.model import DRAMPowerModel
from repro.power.states import PowerState
from repro.sim.perfmodel import PerformanceModel
from repro.units import MIB
from repro.workloads import profile_by_name
from repro.workloads.trace import AccessTraceGenerator


def run_point(interleaved: bool):
    org = spec_server_memory()
    mapping = AddressMapping(org, interleaved=interleaved)
    controller = MemoryController(org, mapping=mapping,
                                  lowpower=LowPowerConfig(
                                      powerdown_idle_ns=1_000.0,
                                      selfrefresh_idle_ns=10_000.0))
    stream = AccessTraceGenerator(64 * MIB, rate_per_s=40e6, locality=0.85,
                                  rng=random.Random(7)).generate(20_000)
    stats = controller.run(stream)
    power = DRAMPowerModel(org).power(stats.rank_profiles())
    return stats, power


def main() -> None:
    org = spec_server_memory()
    print("64MB footprint (462.libquantum-like), 40M accesses/s\n")
    for interleaved in (True, False):
        stats, power = run_point(interleaved)
        label = "with interleaving" if interleaved else "w/o interleaving"
        ranks_touched = sum(1 for b in stats.rank_bytes if b)
        sr = stats.selfrefresh_fraction()
        print(f"{label}:")
        print(f"  ranks receiving traffic: {ranks_touched}/{org.total_ranks}")
        print(f"  self-refresh residency:  {sr:.1%}")
        print(f"  row-hit rate:            {stats.row_hit_rate:.1%}")
        print(f"  mean / p99 latency:      {stats.mean_latency_ns:.0f} / "
              f"{stats.percentile_latency_ns(99):.0f} ns")
        print(f"  DRAM power:              {power.total_w:.2f} W "
              f"(background {power.background_fraction:.0%})")
        print()

    perf = PerformanceModel()
    profile = profile_by_name("462.libquantum")
    speedup = perf.speedup_from_interleaving(profile, org, n_copies=16)
    print(f"...but on a loaded machine interleaving speeds "
          f"{profile.name} up {speedup:.1f}x, which is why it stays on —\n"
          f"and why GreenDIMM manages power at the sub-array-group "
          f"granularity instead of the rank granularity.")


if __name__ == "__main__":
    main()
