#!/usr/bin/env python3
"""Quickstart: run one SPEC workload under GreenDIMM and see the savings.

Builds the paper's 64GB server, runs 429.mcf under the GreenDIMM daemon,
and prints what happened: blocks off-lined, sub-array groups gated, DRAM
energy saved, and the execution-time cost.
"""

from repro import GreenDIMMSystem, ServerSimulator, profile_by_name
from repro.units import GIB


def main() -> None:
    system = GreenDIMMSystem(seed=1)  # the 64GB SPEC platform, 128MB blocks
    print(f"server: {system.organization.describe()}")
    print(f"power-management map: {system.block_map.describe()}")
    print()

    profile = profile_by_name("403.gcc")
    print(f"running {profile.name} "
          f"(peak footprint {profile.peak_footprint_bytes / GIB:.1f} GiB, "
          f"MPKI {profile.mpki:.0f}) for {profile.duration_s:.0f}s ...")
    simulator = ServerSimulator(system, seed=1)
    result = simulator.run_workload(profile)

    last = result.samples[-1]
    print()
    print(f"off-lining events:      {result.offline_events}")
    print(f"on-lining events:       {result.online_events}")
    print(f"failures (EBUSY/EAGAIN): "
          f"{result.ebusy_failures}/{result.eagain_failures}")
    print(f"blocks offline at end:  {last.offline_blocks} "
          f"of {system.mm.num_blocks}")
    print(f"capacity in deep power-down: {last.dpd_fraction:.1%}")
    print(f"DRAM power now:         {last.dram_power_w:.2f} W "
          f"(unmanaged: {system.baseline_dram_power().total_w:.2f} W idle)")
    print(f"DRAM energy saved:      {result.dram_energy_saving:.1%}")
    print(f"execution-time cost:    {result.overhead_fraction:.2%} "
          f"(paper bound: ~3%)")


if __name__ == "__main__":
    main()
