#!/usr/bin/env python3
"""A consolidated VM server over a day: GreenDIMM + KSM (Section 6.3).

Generates an Azure-like VM trace, replays six hours of it on the 256GB
platform with KSM enabled, and reports the utilization curve, the
off-lined-block curve, and the resulting power reductions.
"""

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import azure_server_memory
from repro.sim.server import ServerSimulator
from repro.units import GIB, PAGE_SIZE
from repro.workloads.azure import AzureTraceGenerator


def main() -> None:
    organization = azure_server_memory()
    system = GreenDIMMSystem(organization=organization,
                             config=GreenDIMMConfig(block_bytes=GIB),
                             kernel_boot_bytes=4 * GIB,
                             enable_ksm=True, seed=5)
    simulator = ServerSimulator(system, seed=5)
    trace = AzureTraceGenerator(
        capacity_bytes=organization.total_capacity_bytes - 5 * GIB,
        duration_s=6 * 3600.0, seed=7).generate()
    arrivals = sum(1 for e in trace.events if e.kind == "arrive")
    print(f"server: {organization.describe()}")
    print(f"trace: {arrivals} VM arrivals over 6h, "
          f"mean demand {trace.mean_utilization:.0%} of capacity")
    print("replaying (1GB memory blocks, KSM on) ...\n")
    result = simulator.run_vm_trace(trace, epoch_s=10.0)

    capacity_pages = organization.total_capacity_bytes // PAGE_SIZE
    print("hour  used  offline-blocks  gated  DRAM-W")
    per_hour = 360
    for start in range(0, len(result.samples), per_hour):
        chunk = result.samples[start:start + per_hour]
        used = sum(s.used_pages for s in chunk) / len(chunk) / capacity_pages
        blocks = sum(s.offline_blocks for s in chunk) / len(chunk)
        gated = sum(s.dpd_fraction for s in chunk) / len(chunk)
        power = sum(s.dram_power_w for s in chunk) / len(chunk)
        print(f"{start // per_hour:>4}  {used:>4.0%}  {blocks:>14.0f}  "
              f"{gated:>5.0%}  {power:>6.1f}")

    print()
    print(f"mean off-lined blocks: {result.mean_offline_blocks:.0f} "
          f"of {result.total_blocks} "
          f"(range {result.min_offline_blocks}-{result.max_offline_blocks})")
    print(f"KSM pages currently merged: "
          f"{result.ksm_saved_pages_final * PAGE_SIZE / GIB:.1f} GiB")
    print(f"DRAM background power reduction: "
          f"{result.background_power_reduction:.0%}")
    print(f"DRAM energy saved vs unmanaged: {result.dram_energy_saving:.0%}")


if __name__ == "__main__":
    main()
