#!/usr/bin/env python3
"""Drive the OS substrate by hand, the way GreenDIMM's daemon does.

Walks the exact kernel interfaces of Sections 2.3 and 5.2: read
``block_size_bytes``, scan the per-block ``removable`` flags, off-line a
block by writing its ``state`` file, watch it fail with EBUSY on a block
holding pinned pages and with EAGAIN when migration cannot proceed, then
gate the freed sub-array groups and bring everything back.
"""

import random

from repro.core.mapping import PowerBlockMap
from repro.core.power_control import GreenDIMMPowerControl
from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.errors import OfflineAgainError, OfflineBusyError
from repro.os.hotplug import MemoryBlockManager
from repro.os.mm import PhysicalMemoryManager
from repro.os.page import OwnerKind
from repro.os.sysfs import SysfsMemoryInterface
from repro.units import GIB


def main() -> None:
    organization = spec_server_memory()
    mm = PhysicalMemoryManager(total_bytes=organization.total_capacity_bytes,
                               block_bytes=GIB, movable_fraction=0.85)
    hotplug = MemoryBlockManager(mm, transient_failure_probability=1.0,
                                 rng=random.Random(0))
    sysfs = SysfsMemoryInterface(hotplug)
    control = GreenDIMMPowerControl(
        PowerBlockMap(AddressMapping(organization), GIB))

    block_size = int(sysfs.read("block_size_bytes"), 16)
    print(f"# cat /sys/devices/system/memory/block_size_bytes")
    print(f"{block_size:#x}  ({block_size // GIB} GiB, "
          f"{mm.num_blocks} blocks)\n")

    # Some workload memory, and one driver buffer pinned in a movable block.
    mm.allocate("app", 6 * GIB // 4096)
    pinned = mm.allocate("nic-driver", 16, kind=OwnerKind.PINNED)
    pinned_block = pinned[0].pfn // mm.block_pages

    print("# scanning removable flags (1 = all pages movable)")
    flags = [sysfs.read(f"memory{i}/removable") for i in range(mm.num_blocks)]
    print("".join(flags), "\n")

    print(f"# echo offline > memory{pinned_block}/state   (holds pinned pages)")
    try:
        sysfs.write(f"memory{pinned_block}/state", "offline")
    except OfflineBusyError as err:
        print(f"-EBUSY after {err.latency_s * 1e6:.0f} us: {err}\n")

    used_block = next(i for i in range(mm.num_blocks)
                      if not mm.block_is_free(i) and mm.block_is_removable(i))
    print(f"# echo offline > memory{used_block}/state   (used, migration "
          f"fails transiently)")
    try:
        sysfs.write(f"memory{used_block}/state", "offline")
    except OfflineAgainError as err:
        print(f"-EAGAIN after {err.latency_s * 1e3:.2f} ms: {err}\n")

    free_blocks = sorted(i for i in range(mm.num_blocks)
                         if mm.block_is_free(i))[-2:]
    gated = []
    for free_block in free_blocks:
        print(f"# echo offline > memory{free_block}/state   (fully free)")
        sysfs.write(f"memory{free_block}/state", "offline")
        gated = control.block_offlined(free_block) or gated
    print(f"MemTotal shrank to {mm.meminfo().total_bytes / GIB:.0f} GiB")
    print(f"sub-array groups gated: {gated} — the second off-lining "
          f"completed a sense-amp pair")
    print(f"(register = {control.register.raw_value():#018x})\n")
    free_block = free_blocks[-1]

    print(f"# echo online > memory{free_block}/state")
    wait = control.prepare_online(free_block, now_s=1.0)
    print(f"polled wake-up ready bit for {wait * 1e9:.0f} ns "
          f"(deep power-down exit)")
    sysfs.write(f"memory{free_block}/state", "online")
    control.block_onlined(free_block, now_s=1.0)
    print(f"state = {sysfs.read(f'memory{free_block}/state')}, "
          f"MemTotal back to {mm.meminfo().total_bytes / GIB:.0f} GiB")


if __name__ == "__main__":
    main()
