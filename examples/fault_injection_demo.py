#!/usr/bin/env python3
"""Fault injection: batter the hot-plug path and watch the daemon cope.

Loads the declarative plan in ``fault_storm_plan.json`` (a stuck block,
EAGAIN flaps, a wake-up hang, an allocation-pressure spike, slow
migrations), composes a mild seeded storm on top, and runs 403.gcc under
the GreenDIMM daemon with the combined plan active.  Prints what was
injected, how the daemon degraded (quarantines, emergency on-lines,
skipped blocks), and proves the whole run replays bit-for-bit.
"""

import pathlib

from repro import GreenDIMMSystem, ServerSimulator, profile_by_name
from repro.faults import FaultPlan, storm_plan

PLAN_FILE = pathlib.Path(__file__).parent / "fault_storm_plan.json"


def run_once(plan: FaultPlan):
    system = GreenDIMMSystem(fault_plan=plan, seed=1)
    simulator = ServerSimulator(system, seed=1)
    # No warmup: the daemon's initial off-lining burst happens at t=0,
    # inside the storm's rule windows, instead of before them.
    result = simulator.run_workload(profile_by_name("403.gcc"),
                                    warmup_s=0.0)
    return system, simulator, result


def main() -> None:
    demo = FaultPlan.from_file(PLAN_FILE)
    storm = storm_plan(7, intensity=1.0, duration_s=100.0, num_blocks=512)
    plan = demo + storm
    print(f"fault plan: {plan.name!r} with {len(plan)} rules "
          f"({len(demo)} hand-written + {len(storm)} from seed "
          f"{storm.seed})")
    print()

    system, simulator, result = run_once(plan)
    stats = system.daemon.stats
    injected = system.fault_injector.stats

    print(f"injected faults: {injected.total}")
    for kind, count in injected.as_dict().items():
        print(f"  {kind:<26} x{count}")
    print()
    print(f"off-lining failures seen:   {result.ebusy_failures} EBUSY, "
          f"{result.eagain_failures} EAGAIN")
    print(f"on-lining failures skipped: {stats.online_failures}")
    print(f"wake-up timeouts skipped:   {stats.wakeup_timeouts}")
    print(f"blocks quarantined:         {stats.quarantines}")
    print(f"pages spilled to swap:      "
          f"{simulator.swap.stats.total_io_pages}")
    print(f"DRAM energy saved anyway:   {result.dram_energy_saving:.1%}")
    print()

    # Same plan, same seed: the storm replays bit-for-bit.
    replay_system, _, replay = run_once(FaultPlan.from_json(plan.canonical()))
    identical = (replay_system.fault_injector.events
                 == system.fault_injector.events
                 and list(replay_system.daemon.event_log)
                 == list(system.daemon.event_log))
    print(f"replay is bit-identical: {identical}")


if __name__ == "__main__":
    main()
