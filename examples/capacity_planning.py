#!/usr/bin/env python3
"""Capacity planning: what GreenDIMM buys at each memory size.

For a fleet operator sizing servers: sweeps installed capacity from
64GB to 1TB, assumes the Figure-1-style utilization profile, and prints
the expected DRAM/system power with and without GreenDIMM (and with
KSM on top), plus a component-level energy breakdown showing that the
savings come from exactly the background+refresh share.
"""

from repro.analysis.energy import EnergyAccount
from repro.dram.organization import scaled_server_memory
from repro.power.model import DRAMPowerModel
from repro.power.system import SystemPowerModel

#: Mean fractions of capacity GreenDIMM keeps gated under the Azure-like
#: utilization profile (from the Figure 12 replay: ~35% without KSM,
#: ~53% with).
GATED_PLAIN = 0.35
GATED_KSM = 0.53

VM_BANDWIDTH = 8e9
CPU_UTILIZATION = 0.6
DAY_S = 86_400.0


def main() -> None:
    system_power = SystemPowerModel()
    print("capacity  DRAM-W   GD-W  GD+KSM-W  system-W  GD-sys-W   "
          "DRAM-saving  system-saving")
    for capacity in (64, 128, 256, 512, 1024):
        model = DRAMPowerModel(scaled_server_memory(capacity))
        base = model.busy_power(VM_BANDWIDTH, active_residency=0.3)
        managed = model.busy_power(VM_BANDWIDTH, active_residency=0.3,
                                   dpd_fraction=GATED_PLAIN)
        ksm = model.busy_power(VM_BANDWIDTH, active_residency=0.3,
                               dpd_fraction=GATED_KSM)
        sys_base = system_power.power_w(CPU_UTILIZATION, base.total_w)
        sys_managed = system_power.power_w(CPU_UTILIZATION, managed.total_w)
        print(f"{capacity:>6}GB  {base.total_w:>6.1f}  {managed.total_w:>5.1f}"
              f"  {ksm.total_w:>8.1f}  {sys_base:>8.1f}  {sys_managed:>8.1f}"
              f"  {1 - managed.total_w / base.total_w:>11.0%}"
              f"  {1 - sys_managed / sys_base:>13.0%}")

    # Where do the joules go?  Integrate one day at 1TB, both ways.
    model = DRAMPowerModel(scaled_server_memory(1024))
    unmanaged = EnergyAccount()
    greendimm = EnergyAccount()
    unmanaged.add(model.busy_power(VM_BANDWIDTH, active_residency=0.3), DAY_S)
    greendimm.add(model.busy_power(VM_BANDWIDTH, active_residency=0.3,
                                   dpd_fraction=GATED_PLAIN), DAY_S)
    print()
    print(unmanaged.render("One day at 1TB — unmanaged"))
    print()
    print(greendimm.render("One day at 1TB — GreenDIMM"))
    print()
    print("per-component reduction:")
    for name, reduction in greendimm.compare(unmanaged):
        print(f"  {name:<11} {reduction:>6.1%}")


if __name__ == "__main__":
    main()
