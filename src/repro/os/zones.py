"""Memory zones: Normal vs Movable.

Linux lets the administrator reserve a tail of physical memory as
``ZONE_MOVABLE`` (e.g. ``movablecore=8G``); kernel/unmovable allocations
are confined to ``ZONE_NORMAL`` while user pages prefer the movable zone.
GreenDIMM relies on this (Section 5.2) because only fully-movable blocks
can be off-lined — but, as the paper observes, pinned pages can still leak
unmovable frames into movable regions, which our hot-plug model reproduces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.os.buddy import MAX_ORDER, BuddyAllocator


class ZoneKind(enum.Enum):
    NORMAL = "normal"
    MOVABLE = "movable"


@dataclass
class Zone:
    """One zone: a frame range with its own buddy allocator."""

    kind: ZoneKind
    start_pfn: int
    pages: int

    def __post_init__(self) -> None:
        self.allocator = BuddyAllocator(self.start_pfn, self.pages)

    @property
    def end_pfn(self) -> int:
        return self.start_pfn + self.pages

    def contains(self, pfn: int) -> bool:
        return self.start_pfn <= pfn < self.end_pfn


@dataclass(frozen=True)
class ZoneLayout:
    """How the physical frame space is split between zones.

    ``movable_fraction`` plays the role of the ``movablecore`` boot
    parameter: that fraction of the top of memory becomes ZONE_MOVABLE.
    ``alignment_pages`` rounds the boundary so it coincides with a
    memory-block edge — a hot-plug block must belong to exactly one
    zone, as in Linux.
    """

    total_pages: int
    movable_fraction: float = 0.75
    alignment_pages: int = 1 << MAX_ORDER

    def __post_init__(self) -> None:
        if not 0.0 <= self.movable_fraction < 1.0:
            raise ConfigurationError("movable_fraction must be in [0, 1)")
        if self.total_pages <= 0:
            raise ConfigurationError("total_pages must be positive")
        if (self.alignment_pages <= 0
                or self.alignment_pages % (1 << MAX_ORDER)):
            raise ConfigurationError(
                "alignment must be a positive multiple of the buddy block")

    def build(self) -> List[Zone]:
        """Construct the zones, aligned to blocks and buddy limits."""
        block = self.alignment_pages
        if self.total_pages % block:
            raise ConfigurationError("total pages must be block aligned")
        movable_pages = int(self.total_pages * self.movable_fraction)
        movable_pages -= movable_pages % block
        normal_pages = self.total_pages - movable_pages
        zones = [Zone(ZoneKind.NORMAL, 0, normal_pages)]
        if movable_pages:
            zones.append(Zone(ZoneKind.MOVABLE, normal_pages, movable_pages))
        return zones
