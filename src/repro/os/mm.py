"""The physical memory manager: zones + extents + per-block accounting.

This is the substrate's equivalent of the Linux mm core that GreenDIMM's
daemon talks to: it satisfies allocations from the zone buddy allocators,
keeps the ``mem_map`` (extent metadata), maintains per-memory-block usage
counters that back the sysfs ``removable`` flag, migrates pages out of
blocks being off-lined, and renders ``/proc/meminfo``-style snapshots.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import AllocationError, ConfigurationError
from repro.os.buddy import MAX_ORDER
from repro.os.page import BlockAccounting, OwnerKind, PageExtent
from repro.os.zones import Zone, ZoneKind, ZoneLayout
from repro.soa import BlockStateStore
from repro.units import DEFAULT_MEMORY_BLOCK_SIZE, PAGE_SIZE


@dataclass(frozen=True)
class Meminfo:
    """A ``/proc/meminfo``-style snapshot, in pages.

    ``total_pages`` counts only *on-lined* memory — exactly as the real
    file shrinks when blocks go offline — while ``offlined_pages`` reports
    what GreenDIMM has removed.
    """

    total_pages: int
    free_pages: int
    used_pages: int
    offlined_pages: int

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    @property
    def free_bytes(self) -> int:
        return self.free_pages * PAGE_SIZE

    @property
    def used_bytes(self) -> int:
        return self.used_pages * PAGE_SIZE

    @property
    def utilization(self) -> float:
        """Used fraction of on-lined capacity."""
        return self.used_pages / self.total_pages if self.total_pages else 0.0

    def render(self) -> str:
        """Text rendering in the style of /proc/meminfo (kB units)."""
        def kb(pages: int) -> int:
            return pages * PAGE_SIZE // 1024
        return (f"MemTotal:       {kb(self.total_pages):>12} kB\n"
                f"MemFree:        {kb(self.free_pages):>12} kB\n"
                f"MemUsed:        {kb(self.used_pages):>12} kB\n"
                f"MemOffline:     {kb(self.offlined_pages):>12} kB\n")


class PhysicalMemoryManager:
    """Owns the frame space: allocation, freeing, migration, accounting.

    Parameters
    ----------
    total_bytes:
        Installed physical memory.
    block_bytes:
        Memory-block size for on/off-lining accounting (Linux default
        128MiB; configurable like ``block_size_bytes`` in sysfs).
    movable_fraction:
        Fraction of the top of memory placed in ZONE_MOVABLE
        (``movablecore``).
    """

    def __init__(self, total_bytes: int,
                 block_bytes: int = DEFAULT_MEMORY_BLOCK_SIZE,
                 movable_fraction: float = 0.75):
        if total_bytes % block_bytes:
            raise ConfigurationError("capacity must be a multiple of block size")
        if block_bytes % ((1 << MAX_ORDER) * PAGE_SIZE):
            raise ConfigurationError(
                "block size must be a multiple of the max buddy block")
        self.total_pages = total_bytes // PAGE_SIZE
        self.block_pages = block_bytes // PAGE_SIZE
        self.num_blocks = self.total_pages // self.block_pages
        self.zones: List[Zone] = ZoneLayout(
            self.total_pages, movable_fraction,
            alignment_pages=self.block_pages).build()
        #: (start_pfn, end_pfn, zone) spans for the pfn -> zone lookup,
        #: avoiding per-call property/method dispatch on the free path.
        self._zone_spans: List[Tuple[int, int, Zone]] = [
            (z.start_pfn, z.end_pfn, z) for z in self.zones]
        self._extents: Dict[int, PageExtent] = {}
        self._owners: Dict[str, Set[int]] = {}
        #: Per-owner max-heap of extent pfns (negated), maintained beside
        #: ``_owners`` with lazy deletion: every registration pushes, and
        #: :meth:`free_pages_of` pops stale entries as it meets them.
        #: Replaces the full ``sorted(owner_set, reverse=True)`` rebuild
        #: each shrink performed — the visit order (descending live
        #: pfns) is identical.
        self._owner_maxheaps: Dict[str, List[int]] = {}
        #: Incremental per-owner resident-page totals; kept in lock-step
        #: with ``_owners`` so ``owner_pages`` is O(1) instead of an
        #: O(extents) scan on the per-epoch resize path.
        self._owner_pages: Dict[str, int] = {}
        #: Recycling pool of freed extents, keyed by pfn.  PageExtent is
        #: immutable and identity-free (no __eq__/__hash__ overrides are
        #: relied on), so an allocation whose (pfn, order, owner, kind,
        #: mergeable) matches a previously freed extent can reuse the
        #: object instead of constructing a new one — workloads that
        #: oscillate re-acquire the same frames constantly.
        self._extent_pool: Dict[int, PageExtent] = {}
        self._blocks: List[BlockAccounting] = [
            BlockAccounting() for _ in range(self.num_blocks)]
        #: Write-back numpy mirror of the per-block counters; the extent
        #: hot path only marks blocks dirty, scans call ``soa_view()``.
        self.soa = BlockStateStore(self.num_blocks)
        self._offlined_pages = 0
        self._isolated_blocks: Set[int] = set()

    # --- zone routing -----------------------------------------------------

    def _zones_for(self, kind: OwnerKind) -> List[Zone]:
        """Allocation order of zones for an owner kind.

        Kernel memory is confined to ZONE_NORMAL.  User memory prefers
        ZONE_MOVABLE.  Pinned allocations also prefer ZONE_MOVABLE — that
        is precisely the leak (Section 5.2) that puts unmovable pages into
        nominally movable blocks.
        """
        normal = [z for z in self.zones if z.kind is ZoneKind.NORMAL]
        movable = [z for z in self.zones if z.kind is ZoneKind.MOVABLE]
        if kind is OwnerKind.KERNEL:
            return normal
        return movable + normal

    # --- allocation / freeing -------------------------------------------------

    def allocate(self, owner_id: str, n_pages: int,
                 kind: OwnerKind = OwnerKind.USER,
                 mergeable: bool = False) -> List[PageExtent]:
        """Allocate *n_pages* for *owner_id* as a list of extents.

        All-or-nothing across zones; raises :class:`AllocationError` when
        the online free memory cannot satisfy the request.
        """
        if n_pages <= 0:
            raise AllocationError("n_pages must be positive")
        plan: List[Tuple[Zone, List[Tuple[int, int]]]] = []
        remaining = n_pages
        for zone in self._zones_for(kind):
            if remaining == 0:
                break
            take = min(remaining, zone.allocator.free_pages)
            if take <= 0:
                continue
            blocks = zone.allocator.alloc_pages(take)
            plan.append((zone, blocks))
            remaining -= take
        if remaining > 0:
            for zone, blocks in plan:
                for pfn, order in blocks:
                    zone.allocator.free_block(pfn, order)
            raise AllocationError(
                f"cannot allocate {n_pages} pages for {owner_id!r}: "
                f"{remaining} short")
        # Inlined bulk registration: identical bookkeeping to
        # :meth:`_register`, restructured so the index maintenance runs
        # as C-level bulk operations (allocations routinely span
        # thousands of extents).
        pool = self._extent_pool
        pool_get = pool.get
        extents = []
        append = extents.append
        for _zone, blocks in plan:
            for pfn, order in blocks:
                cached = pool_get(pfn)
                if (cached is not None and cached.order == order
                        and cached.owner_id == owner_id
                        and cached.kind is kind
                        and cached.mergeable == mergeable
                        and not cached.ksm_shared):
                    append(cached)
                else:
                    append(PageExtent(pfn, order, owner_id, kind, mergeable))
        pfns = [extent.pfn for extent in extents]
        self._extents.update(zip(pfns, extents))
        owner_set = self._owners.setdefault(owner_id, set())
        owner_set.update(pfns)
        owner_heap = self._owner_maxheaps.setdefault(owner_id, [])
        # The heap's contents alone determine its pop sequence (repeated
        # heappop yields ascending order whatever the tree shape), so any
        # insertion strategy is equivalent: k pushes cost O(k log n) and
        # win for the small ramp-epoch deltas, one heapify costs O(n)
        # and wins for bulk loads.
        if len(pfns) * 8 < len(owner_heap):
            for pfn in pfns:
                heapq.heappush(owner_heap, -pfn)
        else:
            owner_heap.extend(map(int.__neg__, pfns))
            heapq.heapify(owner_heap)
        block_list = self._blocks
        block_pages = self.block_pages
        dirty = self.soa._dirty
        # Extents come out of the buddy allocator in runs that stay
        # within one memory block, so a last-block cache spares the
        # accounting lookup on most iterations (it is only a cache —
        # any extent order is still correct).
        cur_block = -1
        acct = None
        acct_add = None
        used_run = 0
        if kind is OwnerKind.USER:
            for extent in extents:
                pfn = extent.pfn
                block = pfn // block_pages
                if block != cur_block:
                    if acct is not None:
                        acct.used_pages += used_run
                    cur_block = block
                    acct = block_list[block]
                    acct_add = acct.extents.add
                    dirty.add(block)
                    used_run = 0
                used_run += extent.pages
                acct_add(pfn)
            if acct is not None:
                acct.used_pages += used_run
        else:
            for extent in extents:
                pfn = extent.pfn
                pages = extent.pages
                block = pfn // block_pages
                if block != cur_block:
                    if acct is not None:
                        acct.used_pages += used_run
                        acct.unmovable_pages += used_run
                    cur_block = block
                    acct = block_list[block]
                    acct_add = acct.extents.add
                    dirty.add(block)
                    used_run = 0
                used_run += pages
                acct_add(pfn)
            if acct is not None:
                acct.used_pages += used_run
                acct.unmovable_pages += used_run
        # Every zone contributed exactly its ``take``, so the extent
        # pages sum to n_pages by construction.
        self._owner_pages[owner_id] = (
            self._owner_pages.get(owner_id, 0) + n_pages)
        return extents

    def _register(self, extent: PageExtent) -> None:
        self._extents[extent.pfn] = extent
        self._owners.setdefault(extent.owner_id, set()).add(extent.pfn)
        heapq.heappush(
            self._owner_maxheaps.setdefault(extent.owner_id, []),
            -extent.pfn)
        self._owner_pages[extent.owner_id] = (
            self._owner_pages.get(extent.owner_id, 0) + extent.pages)
        block = extent.pfn // self.block_pages
        acct = self._blocks[block]
        acct.used_pages += extent.pages
        acct.extents.add(extent.pfn)
        if not extent.movable:
            acct.unmovable_pages += extent.pages
        self.soa.mark_dirty(block)

    def _unregister(self, extent: PageExtent) -> None:
        del self._extents[extent.pfn]
        owner_set = self._owners[extent.owner_id]
        owner_set.remove(extent.pfn)
        remaining = self._owner_pages[extent.owner_id] - extent.pages
        if owner_set:
            self._owner_pages[extent.owner_id] = remaining
        else:
            del self._owners[extent.owner_id]
            del self._owner_pages[extent.owner_id]
            self._owner_maxheaps.pop(extent.owner_id, None)
        block = extent.pfn // self.block_pages
        acct = self._blocks[block]
        acct.used_pages -= extent.pages
        acct.extents.remove(extent.pfn)
        if not extent.movable:
            acct.unmovable_pages -= extent.pages
        self.soa.mark_dirty(block)

    def _zone_of(self, pfn: int) -> Zone:
        for start, end, zone in self._zone_spans:
            if start <= pfn < end:
                return zone
        raise AllocationError(f"pfn {pfn} outside all zones")

    def free_extent(self, pfn: int) -> int:
        """Free one extent by its first pfn; returns pages freed."""
        extent = self._extents.get(pfn)
        if extent is None:
            raise AllocationError(f"no extent at pfn {pfn}")
        self._unregister(extent)
        self._zone_of(pfn).allocator.free_block(pfn, extent.order)
        return extent.pages

    def free_pages_of(self, owner_id: str, n_pages: int) -> int:
        """Free *n_pages* of *owner_id*'s memory, highest addresses first.

        Splits the final extent when needed so exactly *n_pages* (or the
        owner's entire holding, if smaller) are returned.  Freeing highest
        addresses first models a process unmapping its most recently grown
        regions and keeps high blocks empty — which is what gives the
        GreenDIMM daemon blocks it can off-line without migration.
        """
        if n_pages <= 0:
            return 0
        owner_set = self._owners.get(owner_id)
        if not owner_set:
            return 0
        # Highest-address-first order comes from the owner's lazy
        # max-heap: popping it yields exactly the descending sequence
        # ``sorted(owner_set, reverse=True)`` once stale entries (pfns no
        # longer owned) are skipped, without re-sorting the whole owner
        # set on every shrink.
        heap = self._owner_maxheaps[owner_id]
        if len(heap) > 4 * len(owner_set) + 64:
            # A sorted list of negated pfns is a valid min-heap.
            heap[:] = sorted(-pfn for pfn in owner_set)
        # Inlined bulk unregister (mirrors :meth:`_unregister`); the
        # owner-pages total is settled once after the whole-extent loop.
        extent_map = self._extents
        block_list = self._blocks
        block_pages = self.block_pages
        dirty = self.soa._dirty
        pool = self._extent_pool
        heappop = heapq.heappop
        span_start = span_end = -1
        span_free = None
        span_alloc = None
        span_mo = -1
        # Max-order extents never coalesce, so their frees commute with
        # everything else in the span and can be batched into one
        # ``free_max_order_blocks`` call per zone span.
        mo_batch: List[int] = []
        freed = 0
        partial = None
        # Descending pfns visit each memory block in one contiguous run,
        # so a last-block cache spares the accounting lookup on most
        # iterations, with the page delta flushed per run (pure cache —
        # correct in any visit order).
        cur_block = -1
        acct = None
        acct_remove = None
        used_run = 0
        unmovable_run = 0
        while heap and freed < n_pages:
            # Pop immediately: a stale entry is discarded either way, and
            # the partial-case break below may consume its entry too (the
            # split in _free_partial re-registers the kept piece, which
            # re-pushes its pfn).
            pfn = -heappop(heap)
            if pfn not in owner_set:
                continue
            extent = extent_map[pfn]
            pages = extent.pages
            if freed + pages > n_pages:
                partial = extent
                break
            del extent_map[pfn]
            pool[pfn] = extent
            owner_set.remove(pfn)
            block = pfn // block_pages
            if block != cur_block:
                if acct is not None:
                    acct.used_pages -= used_run
                    acct.unmovable_pages -= unmovable_run
                cur_block = block
                acct = block_list[block]
                acct_remove = acct.extents.remove
                dirty.add(block)
                used_run = 0
                unmovable_run = 0
            used_run += pages
            acct_remove(pfn)
            if not extent.movable:
                unmovable_run += pages
            if not span_start <= pfn < span_end:
                if mo_batch:
                    span_alloc.free_max_order_blocks(mo_batch)
                    mo_batch = []
                for start, end, zone in self._zone_spans:
                    if start <= pfn < end:
                        span_start, span_end = start, end
                        span_alloc = zone.allocator
                        span_mo = span_alloc.max_order
                        span_free = span_alloc.free_block
                        break
                else:
                    raise AllocationError(f"pfn {pfn} outside all zones")
            if extent.order == span_mo:
                mo_batch.append(pfn)
            else:
                span_free(pfn, extent.order)
            freed += pages
        if acct is not None:
            acct.used_pages -= used_run
            acct.unmovable_pages -= unmovable_run
        if mo_batch:
            span_alloc.free_max_order_blocks(mo_batch)
        if freed:
            if owner_set:
                self._owner_pages[owner_id] -= freed
            else:
                del self._owners[owner_id]
                del self._owner_pages[owner_id]
                self._owner_maxheaps.pop(owner_id, None)
        if partial is not None:
            freed += self._free_partial(partial, n_pages - freed)
        return freed

    def _free_partial(self, extent: PageExtent, n_pages: int) -> int:
        """Free the top *n_pages* of one extent by splitting it.

        Caller guarantees ``0 < n_pages < extent.pages``; the loop keeps
        the invariant ``remaining < current.pages``, so it always
        terminates with a kept low remainder registered to the owner.
        """
        zone = self._zone_of(extent.pfn)
        self._unregister(extent)
        allocator = zone.allocator
        pfn = extent.pfn
        order = extent.order
        remaining = n_pages
        # Track the current piece as (pfn, order) and only materialize a
        # PageExtent for pieces that are actually kept — the freed high
        # halves and the still-splitting piece never need one.
        while remaining > 0:
            allocator.split_allocated(pfn, order)
            order -= 1
            half_pages = 1 << order
            if remaining >= half_pages:
                allocator.free_block(pfn + half_pages, order)
                remaining -= half_pages
            else:
                self._register(PageExtent(pfn, order, extent.owner_id,
                                          extent.kind, extent.mergeable,
                                          extent.ksm_shared))
                pfn += half_pages
        self._register(PageExtent(pfn, order, extent.owner_id,
                                  extent.kind, extent.mergeable,
                                  extent.ksm_shared))
        return n_pages

    def free_all(self, owner_id: str) -> int:
        """Free every extent of *owner_id*; returns pages freed."""
        freed = 0
        for pfn in list(self._owners.get(owner_id, ())):
            freed += self.free_extent(pfn)
        return freed

    # --- queries -----------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return sum(z.allocator.free_pages for z in self.zones)

    @property
    def online_pages(self) -> int:
        return self.total_pages - self._offlined_pages

    @property
    def used_pages(self) -> int:
        return self.online_pages - self.free_pages

    def owner_pages(self, owner_id: str) -> int:
        return self._owner_pages.get(owner_id, 0)

    def owners(self) -> Iterable[str]:
        return self._owners.keys()

    def extents_of(self, owner_id: str) -> List[PageExtent]:
        return [self._extents[p] for p in sorted(self._owners.get(owner_id, ()))]

    def soa_view(self) -> BlockStateStore:
        """The per-block SoA mirror, with dirty counters flushed."""
        return self.soa.sync(self._blocks)

    def meminfo(self) -> Meminfo:
        return Meminfo(total_pages=self.online_pages,
                       free_pages=self.free_pages,
                       used_pages=self.used_pages,
                       offlined_pages=self._offlined_pages)

    # --- per-block interface used by hot-plug --------------------------------

    def block_range(self, index: int) -> Tuple[int, int]:
        """(start_pfn, page_count) of memory block *index*."""
        if not 0 <= index < self.num_blocks:
            raise ConfigurationError(f"block {index} out of range")
        return index * self.block_pages, self.block_pages

    def block_accounting(self, index: int) -> BlockAccounting:
        return self._blocks[index]

    def block_is_removable(self, index: int) -> bool:
        """The sysfs ``removable`` flag: no unmovable pages in the block."""
        return not self._blocks[index].has_unmovable

    def block_is_free(self, index: int) -> bool:
        """True when no allocated pages remain in the block."""
        return self._blocks[index].is_empty

    def block_extents(self, index: int) -> List[PageExtent]:
        return [self._extents[p] for p in sorted(self._blocks[index].extents)]

    def zone_kind_of_block(self, index: int) -> ZoneKind:
        start, _count = self.block_range(index)
        return self._zone_of(start).kind

    # --- migration (for off-lining) -------------------------------------------

    def migrate_block_out(self, index: int,
                          isolated: List[Tuple[int, int]]) -> int:
        """Move every movable extent out of block *index*.

        The block's free pages must already be isolated so new allocations
        cannot land there; *isolated* is the running list of (pfn, order)
        blocks held out of the free lists, and each migrated source extent
        is appended to it (migrated-away frames are free but must stay
        isolated).  Returns pages migrated; raises
        :class:`AllocationError` when destination memory is insufficient
        (the off-lining EAGAIN path) — the caller then undoes the whole
        isolation with the accumulated list.
        """
        migrated = 0
        source_zone = self._zone_of(self.block_range(index)[0])
        for extent in self.block_extents(index):
            if not extent.movable:
                raise AllocationError(
                    f"block {index} has unmovable extent at {extent.pfn}")
            new_blocks = None
            for zone in self._zones_for(extent.kind):
                try:
                    new_blocks = zone.allocator.alloc_pages(extent.pages)
                    break
                except AllocationError:
                    continue
            if new_blocks is None:
                raise AllocationError(
                    f"no destination frames to migrate block {index}")
            self._unregister(extent)
            source_zone.allocator.remove_allocated(extent.pfn, extent.order)
            isolated.append((extent.pfn, extent.order))
            for pfn, order in new_blocks:
                moved = PageExtent(pfn=pfn, order=order,
                                   owner_id=extent.owner_id, kind=extent.kind,
                                   mergeable=extent.mergeable,
                                   ksm_shared=extent.ksm_shared)
                self._register(moved)
            migrated += extent.pages
        return migrated

    # --- offline bookkeeping (driven by MemoryBlockManager) -------------------

    def isolate_block(self, index: int) -> List[Tuple[int, int]]:
        start, count = self.block_range(index)
        removed = self._zone_of(start).allocator.isolate_range(start, count)
        self._isolated_blocks.add(index)
        return removed

    def undo_isolate_block(self, index: int,
                           removed: List[Tuple[int, int]]) -> None:
        start, _count = self.block_range(index)
        self._zone_of(start).allocator.undo_isolation(removed)
        self._isolated_blocks.discard(index)

    def complete_offline(self, index: int) -> None:
        """Finalize: the block's pages leave the online total entirely."""
        if index not in self._isolated_blocks:
            raise AllocationError(f"block {index} was not isolated")
        if not self.block_is_free(index):
            raise AllocationError(f"block {index} still has used pages")
        self._isolated_blocks.remove(index)
        self._offlined_pages += self.block_pages
        self.soa.mark_offline(index)

    def complete_online(self, index: int) -> None:
        """Give an off-lined block's frames back to its zone's allocator."""
        start, count = self.block_range(index)
        self._zone_of(start).allocator.add_range(start, count)
        self._offlined_pages -= self.block_pages
        self.soa.mark_online(index)

    # --- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Live references to the whole mm state tree.

        Everything lands in one pickle (see :mod:`repro.sim.snapshot`),
        which is what preserves the cross-structure sharing the restore
        depends on: the same :class:`PageExtent` objects appear in
        ``_extents``, the per-block ``extents`` sets, and the recycling
        pool, and the owner max-heaps keep their lazy stale entries so
        the post-restore pop order is bit-identical.
        """
        return {
            "zones": [zone.allocator.state_dict() for zone in self.zones],
            "extents": self._extents,
            "owners": self._owners,
            "owner_maxheaps": self._owner_maxheaps,
            "owner_pages": self._owner_pages,
            "extent_pool": self._extent_pool,
            "blocks": self._blocks,
            "soa": self.soa.state_dict(),
            "offlined_pages": self._offlined_pages,
            "isolated_blocks": self._isolated_blocks,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Adopt a captured state tree in place (zones/spans keep their
        identity; only allocator internals and the index containers are
        replaced)."""
        for zone, allocator_state in zip(self.zones, state["zones"]):
            zone.allocator.load_state_dict(allocator_state)
        self._extents = state["extents"]
        self._owners = state["owners"]
        self._owner_maxheaps = state["owner_maxheaps"]
        self._owner_pages = state["owner_pages"]
        self._extent_pool = state["extent_pool"]
        self._blocks = state["blocks"]
        self.soa.load_state_dict(state["soa"])
        self._offlined_pages = state["offlined_pages"]
        self._isolated_blocks = state["isolated_blocks"]
