"""The physical memory manager: zones + extents + per-block accounting.

This is the substrate's equivalent of the Linux mm core that GreenDIMM's
daemon talks to: it satisfies allocations from the zone buddy allocators,
keeps the ``mem_map`` (extent metadata), maintains per-memory-block usage
counters that back the sysfs ``removable`` flag, migrates pages out of
blocks being off-lined, and renders ``/proc/meminfo``-style snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import AllocationError, ConfigurationError
from repro.os.buddy import MAX_ORDER
from repro.os.page import BlockAccounting, OwnerKind, PageExtent
from repro.os.zones import Zone, ZoneKind, ZoneLayout
from repro.units import DEFAULT_MEMORY_BLOCK_SIZE, PAGE_SIZE


@dataclass(frozen=True)
class Meminfo:
    """A ``/proc/meminfo``-style snapshot, in pages.

    ``total_pages`` counts only *on-lined* memory — exactly as the real
    file shrinks when blocks go offline — while ``offlined_pages`` reports
    what GreenDIMM has removed.
    """

    total_pages: int
    free_pages: int
    used_pages: int
    offlined_pages: int

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    @property
    def free_bytes(self) -> int:
        return self.free_pages * PAGE_SIZE

    @property
    def used_bytes(self) -> int:
        return self.used_pages * PAGE_SIZE

    @property
    def utilization(self) -> float:
        """Used fraction of on-lined capacity."""
        return self.used_pages / self.total_pages if self.total_pages else 0.0

    def render(self) -> str:
        """Text rendering in the style of /proc/meminfo (kB units)."""
        def kb(pages: int) -> int:
            return pages * PAGE_SIZE // 1024
        return (f"MemTotal:       {kb(self.total_pages):>12} kB\n"
                f"MemFree:        {kb(self.free_pages):>12} kB\n"
                f"MemUsed:        {kb(self.used_pages):>12} kB\n"
                f"MemOffline:     {kb(self.offlined_pages):>12} kB\n")


class PhysicalMemoryManager:
    """Owns the frame space: allocation, freeing, migration, accounting.

    Parameters
    ----------
    total_bytes:
        Installed physical memory.
    block_bytes:
        Memory-block size for on/off-lining accounting (Linux default
        128MiB; configurable like ``block_size_bytes`` in sysfs).
    movable_fraction:
        Fraction of the top of memory placed in ZONE_MOVABLE
        (``movablecore``).
    """

    def __init__(self, total_bytes: int,
                 block_bytes: int = DEFAULT_MEMORY_BLOCK_SIZE,
                 movable_fraction: float = 0.75):
        if total_bytes % block_bytes:
            raise ConfigurationError("capacity must be a multiple of block size")
        if block_bytes % ((1 << MAX_ORDER) * PAGE_SIZE):
            raise ConfigurationError(
                "block size must be a multiple of the max buddy block")
        self.total_pages = total_bytes // PAGE_SIZE
        self.block_pages = block_bytes // PAGE_SIZE
        self.num_blocks = self.total_pages // self.block_pages
        self.zones: List[Zone] = ZoneLayout(
            self.total_pages, movable_fraction,
            alignment_pages=self.block_pages).build()
        self._extents: Dict[int, PageExtent] = {}
        self._owners: Dict[str, Set[int]] = {}
        #: Incremental per-owner resident-page totals; kept in lock-step
        #: with ``_owners`` so ``owner_pages`` is O(1) instead of an
        #: O(extents) scan on the per-epoch resize path.
        self._owner_pages: Dict[str, int] = {}
        self._blocks: List[BlockAccounting] = [
            BlockAccounting() for _ in range(self.num_blocks)]
        self._offlined_pages = 0
        self._isolated_blocks: Set[int] = set()

    # --- zone routing -----------------------------------------------------

    def _zones_for(self, kind: OwnerKind) -> List[Zone]:
        """Allocation order of zones for an owner kind.

        Kernel memory is confined to ZONE_NORMAL.  User memory prefers
        ZONE_MOVABLE.  Pinned allocations also prefer ZONE_MOVABLE — that
        is precisely the leak (Section 5.2) that puts unmovable pages into
        nominally movable blocks.
        """
        normal = [z for z in self.zones if z.kind is ZoneKind.NORMAL]
        movable = [z for z in self.zones if z.kind is ZoneKind.MOVABLE]
        if kind is OwnerKind.KERNEL:
            return normal
        return movable + normal

    # --- allocation / freeing -------------------------------------------------

    def allocate(self, owner_id: str, n_pages: int,
                 kind: OwnerKind = OwnerKind.USER,
                 mergeable: bool = False) -> List[PageExtent]:
        """Allocate *n_pages* for *owner_id* as a list of extents.

        All-or-nothing across zones; raises :class:`AllocationError` when
        the online free memory cannot satisfy the request.
        """
        if n_pages <= 0:
            raise AllocationError("n_pages must be positive")
        plan: List[Tuple[Zone, List[Tuple[int, int]]]] = []
        remaining = n_pages
        for zone in self._zones_for(kind):
            if remaining == 0:
                break
            take = min(remaining, zone.allocator.free_pages)
            if take <= 0:
                continue
            blocks = zone.allocator.alloc_pages(take)
            plan.append((zone, blocks))
            remaining -= take
        if remaining > 0:
            for zone, blocks in plan:
                for pfn, order in blocks:
                    zone.allocator.free_block(pfn, order)
            raise AllocationError(
                f"cannot allocate {n_pages} pages for {owner_id!r}: "
                f"{remaining} short")
        extents = []
        for _zone, blocks in plan:
            for pfn, order in blocks:
                extent = PageExtent(pfn=pfn, order=order, owner_id=owner_id,
                                    kind=kind, mergeable=mergeable)
                self._register(extent)
                extents.append(extent)
        return extents

    def _register(self, extent: PageExtent) -> None:
        self._extents[extent.pfn] = extent
        self._owners.setdefault(extent.owner_id, set()).add(extent.pfn)
        self._owner_pages[extent.owner_id] = (
            self._owner_pages.get(extent.owner_id, 0) + extent.pages)
        acct = self._blocks[extent.pfn // self.block_pages]
        acct.used_pages += extent.pages
        acct.extents.add(extent.pfn)
        if not extent.movable:
            acct.unmovable_pages += extent.pages

    def _unregister(self, extent: PageExtent) -> None:
        del self._extents[extent.pfn]
        owner_set = self._owners[extent.owner_id]
        owner_set.remove(extent.pfn)
        remaining = self._owner_pages[extent.owner_id] - extent.pages
        if owner_set:
            self._owner_pages[extent.owner_id] = remaining
        else:
            del self._owners[extent.owner_id]
            del self._owner_pages[extent.owner_id]
        acct = self._blocks[extent.pfn // self.block_pages]
        acct.used_pages -= extent.pages
        acct.extents.remove(extent.pfn)
        if not extent.movable:
            acct.unmovable_pages -= extent.pages

    def _zone_of(self, pfn: int) -> Zone:
        for zone in self.zones:
            if zone.contains(pfn):
                return zone
        raise AllocationError(f"pfn {pfn} outside all zones")

    def free_extent(self, pfn: int) -> int:
        """Free one extent by its first pfn; returns pages freed."""
        extent = self._extents.get(pfn)
        if extent is None:
            raise AllocationError(f"no extent at pfn {pfn}")
        self._unregister(extent)
        self._zone_of(pfn).allocator.free_block(pfn, extent.order)
        return extent.pages

    def free_pages_of(self, owner_id: str, n_pages: int) -> int:
        """Free *n_pages* of *owner_id*'s memory, highest addresses first.

        Splits the final extent when needed so exactly *n_pages* (or the
        owner's entire holding, if smaller) are returned.  Freeing highest
        addresses first models a process unmapping its most recently grown
        regions and keeps high blocks empty — which is what gives the
        GreenDIMM daemon blocks it can off-line without migration.
        """
        if n_pages <= 0:
            return 0
        pfns = sorted(self._owners.get(owner_id, ()), reverse=True)
        freed = 0
        for pfn in pfns:
            if freed >= n_pages:
                break
            extent = self._extents[pfn]
            if freed + extent.pages <= n_pages:
                freed += self.free_extent(pfn)
            else:
                freed += self._free_partial(extent, n_pages - freed)
        return freed

    def _free_partial(self, extent: PageExtent, n_pages: int) -> int:
        """Free the top *n_pages* of one extent by splitting it.

        Caller guarantees ``0 < n_pages < extent.pages``; the loop keeps
        the invariant ``remaining < current.pages``, so it always
        terminates with a kept low remainder registered to the owner.
        """
        from dataclasses import replace

        zone = self._zone_of(extent.pfn)
        self._unregister(extent)
        current = extent
        remaining = n_pages
        while remaining > 0:
            zone.allocator.split_allocated(current.pfn, current.order)
            half_order = current.order - 1
            half_pages = 1 << half_order
            low = replace(current, order=half_order)
            high = replace(current, pfn=current.pfn + half_pages,
                           order=half_order)
            if remaining >= half_pages:
                zone.allocator.free_block(high.pfn, half_order)
                remaining -= half_pages
                current = low
            else:
                self._register(low)
                current = high
        self._register(current)
        return n_pages

    def free_all(self, owner_id: str) -> int:
        """Free every extent of *owner_id*; returns pages freed."""
        freed = 0
        for pfn in list(self._owners.get(owner_id, ())):
            freed += self.free_extent(pfn)
        return freed

    # --- queries -----------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return sum(z.allocator.free_pages for z in self.zones)

    @property
    def online_pages(self) -> int:
        return self.total_pages - self._offlined_pages

    @property
    def used_pages(self) -> int:
        return self.online_pages - self.free_pages

    def owner_pages(self, owner_id: str) -> int:
        return self._owner_pages.get(owner_id, 0)

    def owners(self) -> Iterable[str]:
        return self._owners.keys()

    def extents_of(self, owner_id: str) -> List[PageExtent]:
        return [self._extents[p] for p in sorted(self._owners.get(owner_id, ()))]

    def meminfo(self) -> Meminfo:
        return Meminfo(total_pages=self.online_pages,
                       free_pages=self.free_pages,
                       used_pages=self.used_pages,
                       offlined_pages=self._offlined_pages)

    # --- per-block interface used by hot-plug --------------------------------

    def block_range(self, index: int) -> Tuple[int, int]:
        """(start_pfn, page_count) of memory block *index*."""
        if not 0 <= index < self.num_blocks:
            raise ConfigurationError(f"block {index} out of range")
        return index * self.block_pages, self.block_pages

    def block_accounting(self, index: int) -> BlockAccounting:
        return self._blocks[index]

    def block_is_removable(self, index: int) -> bool:
        """The sysfs ``removable`` flag: no unmovable pages in the block."""
        return not self._blocks[index].has_unmovable

    def block_is_free(self, index: int) -> bool:
        """True when no allocated pages remain in the block."""
        return self._blocks[index].is_empty

    def block_extents(self, index: int) -> List[PageExtent]:
        return [self._extents[p] for p in sorted(self._blocks[index].extents)]

    def zone_kind_of_block(self, index: int) -> ZoneKind:
        start, _count = self.block_range(index)
        return self._zone_of(start).kind

    # --- migration (for off-lining) -------------------------------------------

    def migrate_block_out(self, index: int,
                          isolated: List[Tuple[int, int]]) -> int:
        """Move every movable extent out of block *index*.

        The block's free pages must already be isolated so new allocations
        cannot land there; *isolated* is the running list of (pfn, order)
        blocks held out of the free lists, and each migrated source extent
        is appended to it (migrated-away frames are free but must stay
        isolated).  Returns pages migrated; raises
        :class:`AllocationError` when destination memory is insufficient
        (the off-lining EAGAIN path) — the caller then undoes the whole
        isolation with the accumulated list.
        """
        migrated = 0
        source_zone = self._zone_of(self.block_range(index)[0])
        for extent in self.block_extents(index):
            if not extent.movable:
                raise AllocationError(
                    f"block {index} has unmovable extent at {extent.pfn}")
            new_blocks = None
            for zone in self._zones_for(extent.kind):
                try:
                    new_blocks = zone.allocator.alloc_pages(extent.pages)
                    break
                except AllocationError:
                    continue
            if new_blocks is None:
                raise AllocationError(
                    f"no destination frames to migrate block {index}")
            self._unregister(extent)
            source_zone.allocator.remove_allocated(extent.pfn, extent.order)
            isolated.append((extent.pfn, extent.order))
            for pfn, order in new_blocks:
                moved = PageExtent(pfn=pfn, order=order,
                                   owner_id=extent.owner_id, kind=extent.kind,
                                   mergeable=extent.mergeable,
                                   ksm_shared=extent.ksm_shared)
                self._register(moved)
            migrated += extent.pages
        return migrated

    # --- offline bookkeeping (driven by MemoryBlockManager) -------------------

    def isolate_block(self, index: int) -> List[Tuple[int, int]]:
        start, count = self.block_range(index)
        removed = self._zone_of(start).allocator.isolate_range(start, count)
        self._isolated_blocks.add(index)
        return removed

    def undo_isolate_block(self, index: int,
                           removed: List[Tuple[int, int]]) -> None:
        start, _count = self.block_range(index)
        self._zone_of(start).allocator.undo_isolation(removed)
        self._isolated_blocks.discard(index)

    def complete_offline(self, index: int) -> None:
        """Finalize: the block's pages leave the online total entirely."""
        if index not in self._isolated_blocks:
            raise AllocationError(f"block {index} was not isolated")
        if not self.block_is_free(index):
            raise AllocationError(f"block {index} still has used pages")
        self._isolated_blocks.remove(index)
        self._offlined_pages += self.block_pages

    def complete_online(self, index: int) -> None:
        """Give an off-lined block's frames back to its zone's allocator."""
        start, count = self.block_range(index)
        self._zone_of(start).allocator.add_range(start, count)
        self._offlined_pages -= self.block_pages
