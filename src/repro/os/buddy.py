"""A binary buddy allocator over page frames.

Matches the Linux design closely enough for the hot-plug experiments:
power-of-two blocks up to ``MAX_ORDER`` (order 10 = 4MiB with 4KiB pages),
per-order free lists, buddy coalescing on free, and — crucially for memory
off-lining — the ability to *isolate* a page-frame range (pull its free
blocks out of the free lists so nothing gets allocated there while
migration empties the rest of the range).

Allocation prefers the lowest available address.  That mirrors the
practical behaviour that makes off-lining effective: used memory packs
toward low frames, leaving high blocks entirely free.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from repro.errors import AllocationError, ConfigurationError

#: Largest buddy order (Linux MAX_ORDER - 1 on x86-64): 2**10 pages = 4MiB.
MAX_ORDER = 10


class BuddyAllocator:
    """Buddy allocator over the frame range [start_pfn, start_pfn + total_pages).

    The range must be aligned to, and a multiple of, the maximum block
    size, which is always true for the zone layouts this library builds.
    """

    def __init__(self, start_pfn: int, total_pages: int, max_order: int = MAX_ORDER):
        if max_order < 0 or max_order > MAX_ORDER:
            raise ConfigurationError(f"max_order must be in [0, {MAX_ORDER}]")
        block = 1 << max_order
        if start_pfn % block or total_pages % block:
            raise ConfigurationError(
                "zone must be aligned to the maximum buddy block")
        self.start_pfn = start_pfn
        self.total_pages = total_pages
        self.max_order = max_order
        self._free_sets: List[Set[int]] = [set() for _ in range(max_order + 1)]
        self._heaps: List[List[int]] = [[] for _ in range(max_order + 1)]
        self._allocated: Dict[int, int] = {}  # pfn -> order
        # Bulk-seed the max-order free list (pushing ascending pfns one
        # at a time builds exactly this sorted list, so the state is the
        # same as repeated _insert calls).
        pfns = range(start_pfn, start_pfn + total_pages, block)
        self._free_sets[max_order] = set(pfns)
        self._heaps[max_order] = list(pfns)
        self._free_pages = total_pages

    # --- internal free-list maintenance -------------------------------------

    def _insert(self, order: int, pfn: int) -> None:
        self._free_sets[order].add(pfn)
        heapq.heappush(self._heaps[order], pfn)
        self._free_pages += 1 << order

    def _discard(self, order: int, pfn: int) -> None:
        """Remove a specific free block (heap entry stays, lazily skipped)."""
        self._free_sets[order].remove(pfn)
        self._free_pages -= 1 << order

    def _pop_lowest(self, order: int) -> int:
        """Pop the lowest-address free block of *order*."""
        heap, live = self._heaps[order], self._free_sets[order]
        while heap:
            pfn = heapq.heappop(heap)
            if pfn in live:
                live.remove(pfn)
                self._free_pages -= 1 << order
                self._maybe_compact(order)
                return pfn
        raise AllocationError(f"no free block of order {order}")

    def _maybe_compact(self, order: int) -> None:
        """Rebuild a heap when stale entries dominate it."""
        heap, live = self._heaps[order], self._free_sets[order]
        if len(heap) > 4 * len(live) + 64:
            self._heaps[order] = sorted(live)

    # --- public queries -------------------------------------------------------

    @property
    def free_pages(self) -> int:
        """Pages currently in the free lists (isolated pages excluded)."""
        return self._free_pages

    @property
    def end_pfn(self) -> int:
        return self.start_pfn + self.total_pages

    def owns(self, pfn: int) -> bool:
        return self.start_pfn <= pfn < self.end_pfn

    def free_blocks(self, order: int) -> Set[int]:
        """Snapshot of the free-list of one order (for tests/inspection)."""
        return set(self._free_sets[order])

    # --- allocation ---------------------------------------------------------

    def alloc_block(self, order: int) -> int:
        """Allocate one block of 2**order pages; returns its first pfn.

        Splits a larger block when the requested order's list is empty,
        always preferring the lowest address available.
        """
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} out of range")
        source = order
        while source <= self.max_order and not self._free_sets[source]:
            source += 1
        if source > self.max_order:
            raise AllocationError(f"out of memory for order-{order} block")
        pfn = self._pop_lowest(source)
        while source > order:
            source -= 1
            self._insert(source, pfn + (1 << source))  # keep the low half
        self._allocated[pfn] = order
        return pfn

    def alloc_pages(self, count: int) -> List[Tuple[int, int]]:
        """Allocate *count* pages as a list of (pfn, order) extents.

        Greedy: largest orders first, falling back to smaller orders as the
        free lists fragment.  All-or-nothing — on failure everything grabbed
        so far is freed again and :class:`AllocationError` is raised.
        """
        if count <= 0:
            raise AllocationError("count must be positive")
        grabbed: List[Tuple[int, int]] = []
        remaining = count
        free_sets = self._free_sets
        heaps = self._heaps
        allocated = self._allocated
        max_order = self.max_order
        heappop, heappush = heapq.heappop, heapq.heappush
        try:
            while remaining > 0:
                # Free-list scan instead of exception-driven fallback:
                # alloc_block(order) fails exactly when every list at
                # >= order is empty, in which case the next candidate is
                # the largest non-empty order below it.
                order = min(max_order, remaining.bit_length() - 1)
                source = order
                while source <= max_order and not free_sets[source]:
                    source += 1
                if source > max_order:
                    order -= 1
                    while order >= 0 and not free_sets[order]:
                        order -= 1
                    if order < 0:
                        raise AllocationError(
                            f"out of memory: {remaining} of {count} "
                            f"pages unsatisfied")
                    source = order
                if source == order == max_order:
                    # Bulk grab: a large request consumes a run of
                    # max-order blocks, and taking each through the
                    # full split-scan below is all Python-loop
                    # overhead.  k pops off the heap (skipping stale
                    # entries) return exactly the ascending pfns that k
                    # successive _pop_lowest calls would.
                    live = free_sets[max_order]
                    k = min(remaining >> max_order, len(live))
                    if k >= 8:
                        heap = heaps[max_order]
                        batch: List[int] = []
                        append = batch.append
                        need = k
                        while need:
                            pfn = heappop(heap)
                            # Remove from the live set immediately — a
                            # re-freed pfn can have two heap entries, and
                            # only the first may count.
                            if pfn in live:
                                live.remove(pfn)
                                append(pfn)
                                need -= 1
                        self._free_pages -= k << max_order
                        allocated.update(dict.fromkeys(batch, max_order))
                        grabbed.extend((pfn, max_order) for pfn in batch)
                        remaining -= k << max_order
                        continue
                # Inlined _pop_lowest / _insert (this loop allocates one
                # buddy block per extent, so call overhead adds up).
                heap, live = heaps[source], free_sets[source]
                while True:
                    pfn = heappop(heap)
                    if pfn in live:
                        break
                live.remove(pfn)
                self._free_pages -= 1 << source
                if len(heap) > 4 * len(live) + 64:
                    heaps[source] = sorted(live)
                while source > order:
                    source -= 1
                    half = pfn + (1 << source)
                    free_sets[source].add(half)
                    heappush(heaps[source], half)
                    self._free_pages += 1 << source
                allocated[pfn] = order
                grabbed.append((pfn, order))
                remaining -= 1 << order
        except AllocationError:
            for pfn, order in grabbed:
                self.free_block(pfn, order)
            raise
        return grabbed

    # --- freeing --------------------------------------------------------------

    def free_block(self, pfn: int, order: int) -> None:
        """Free a previously allocated block, coalescing with free buddies."""
        recorded = self._allocated.pop(pfn, None)
        if recorded != order:
            raise AllocationError(
                f"free of pfn {pfn} order {order} does not match allocation "
                f"({recorded})")
        free_sets = self._free_sets
        max_order = self.max_order
        while order < max_order:
            buddy = pfn ^ (1 << order)
            live = free_sets[order]
            if buddy not in live:
                break
            live.remove(buddy)
            self._free_pages -= 1 << order
            if buddy < pfn:
                pfn = buddy
            order += 1
        self._insert(order, pfn)

    def free_max_order_blocks(self, pfns: List[int]) -> None:
        """Free many max-order blocks at once.

        Max-order blocks have no buddy to coalesce with, so freeing one
        is exactly an insert — which makes a batch equivalent to
        repeated :meth:`free_block` calls in any order, with the
        per-block heap pushes replaced by one extend + heapify.  (The
        heap's internal arrangement differs, but pops depend only on its
        contents.)
        """
        allocated = self._allocated
        order = self.max_order
        for pfn in pfns:
            recorded = allocated.pop(pfn, None)
            if recorded != order:
                raise AllocationError(
                    f"free of pfn {pfn} order {order} does not match "
                    f"allocation ({recorded})")
        self._free_sets[order].update(pfns)
        heap = self._heaps[order]
        heap.extend(pfns)
        heapq.heapify(heap)
        self._free_pages += len(pfns) << order

    # --- isolation for memory off-lining ---------------------------------------

    def isolate_range(self, start_pfn: int, count: int) -> List[Tuple[int, int]]:
        """Pull every free block inside [start_pfn, start_pfn+count) out of
        the free lists, so the range cannot satisfy new allocations.

        The range must be aligned to the maximum block size (memory blocks
        always are), which guarantees free blocks never straddle it.
        Returns the removed (pfn, order) blocks, to be passed back to
        :meth:`undo_isolation` if off-lining fails.
        """
        block = 1 << self.max_order
        if start_pfn % block or count % block:
            raise ConfigurationError("isolation range must be block aligned")
        # Fully-free range fast path: eager coalescing means a free
        # aligned range consists of exactly its max-order blocks, so if
        # every max-order position is live nothing else can be (any
        # other free block would overlap one).  This is the common case
        # — the daemon prefers off-lining free blocks — and skips the
        # per-order scan.
        top_live = self._free_sets[self.max_order]
        positions = range(start_pfn, start_pfn + count, block)
        if top_live.issuperset(positions):
            top_live.difference_update(positions)
            self._free_pages -= count
            return [(pfn, self.max_order) for pfn in positions]
        removed: List[Tuple[int, int]] = []
        for order in range(self.max_order + 1):
            live = self._free_sets[order]
            if not live:
                continue
            found = self._free_in_range(order, start_pfn, count)
            if not found:
                continue
            live.difference_update(found)
            self._free_pages -= len(found) << order
            removed.extend((pfn, order) for pfn in found)
        return removed

    def _free_in_range(self, order: int, start_pfn: int, count: int) -> List[int]:
        """Free blocks of *order* lying inside a range.

        Iterates whichever is smaller — the candidate positions in the
        range or the free list itself — so isolating a multi-GiB block
        stays cheap even with 4KiB pages.
        """
        size = 1 << order
        live = self._free_sets[order]
        candidates = count // size
        if len(live) <= candidates:
            end = start_pfn + count
            return [pfn for pfn in live if start_pfn <= pfn < end]
        first = start_pfn + (-start_pfn % size)
        return [pfn for pfn in range(first, start_pfn + count, size) if pfn in live]

    def undo_isolation(self, removed: List[Tuple[int, int]]) -> None:
        """Return blocks taken by :meth:`isolate_range` to the free lists."""
        for pfn, order in removed:
            self._insert(order, pfn)

    def free_pages_in_range(self, start_pfn: int, count: int) -> int:
        """Count free-list pages inside a range (used by removable checks)."""
        total = 0
        for order in range(self.max_order + 1):
            total += len(self._free_in_range(order, start_pfn, count)) << order
        return total

    def add_range(self, start_pfn: int, count: int) -> None:
        """Give a (previously off-lined) frame range back to the allocator."""
        block = 1 << self.max_order
        if start_pfn % block or count % block:
            raise ConfigurationError("range must be block aligned")
        pfns = range(start_pfn, start_pfn + count, block)
        self._free_sets[self.max_order].update(pfns)
        heap = self._heaps[self.max_order]
        for pfn in pfns:
            heapq.heappush(heap, pfn)
        self._free_pages += count

    def split_allocated(self, pfn: int, order: int) -> None:
        """Split an allocated block into its two buddy halves in place.

        Lets callers free part of an allocation exactly: split until the
        piece to free is a whole block, then :meth:`free_block` it.
        """
        recorded = self._allocated.get(pfn)
        if recorded != order:
            raise AllocationError(
                f"split of pfn {pfn} order {order} does not match allocation "
                f"({recorded})")
        if order == 0:
            raise AllocationError("cannot split an order-0 block")
        half = order - 1
        self._allocated[pfn] = half
        self._allocated[pfn + (1 << half)] = half

    def remove_allocated(self, pfn: int, order: int) -> None:
        """Drop an allocated block without returning it to the free lists.

        Used during off-lining: pages migrated out of an isolated block
        become free *but isolated* — they must not satisfy allocations.
        The caller keeps the (pfn, order) pair to either discard it on
        offline completion or hand it to :meth:`undo_isolation` on failure.
        """
        recorded = self._allocated.pop(pfn, None)
        if recorded != order:
            raise AllocationError(
                f"remove of pfn {pfn} order {order} does not match allocation "
                f"({recorded})")
