"""A binary buddy allocator over page frames.

Matches the Linux design closely enough for the hot-plug experiments:
power-of-two blocks up to ``MAX_ORDER`` (order 10 = 4MiB with 4KiB pages),
per-order free lists, buddy coalescing on free, and — crucially for memory
off-lining — the ability to *isolate* a page-frame range (pull its free
blocks out of the free lists so nothing gets allocated there while
migration empties the rest of the range).

Allocation prefers the lowest available address.  That mirrors the
practical behaviour that makes off-lining effective: used memory packs
toward low frames, leaving high blocks entirely free.

Every free list is kept as a sorted ascending list beside its
authoritative set.  Which pfn an allocation receives depends only on the
free list's *contents* (always the lowest address), so the sorted
representation hands out exactly the pfns a heap would — while making
the hot bulk operations (grabbing the k lowest max-order blocks,
isolating a block-aligned range, counting free pages in a range) single
C-level slice operations instead of per-entry heap pops with lazy
stale-entry skipping.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Set, Tuple

from repro.errors import AllocationError, ConfigurationError

#: Largest buddy order (Linux MAX_ORDER - 1 on x86-64): 2**10 pages = 4MiB.
MAX_ORDER = 10


class BuddyAllocator:
    """Buddy allocator over the frame range [start_pfn, start_pfn + total_pages).

    The range must be aligned to, and a multiple of, the maximum block
    size, which is always true for the zone layouts this library builds.
    """

    def __init__(self, start_pfn: int, total_pages: int, max_order: int = MAX_ORDER):
        if max_order < 0 or max_order > MAX_ORDER:
            raise ConfigurationError(f"max_order must be in [0, {MAX_ORDER}]")
        block = 1 << max_order
        if start_pfn % block or total_pages % block:
            raise ConfigurationError(
                "zone must be aligned to the maximum buddy block")
        self.start_pfn = start_pfn
        self.total_pages = total_pages
        self.max_order = max_order
        self._free_sets: List[Set[int]] = [set() for _ in range(max_order + 1)]
        #: Ascending sorted mirror of each free set — no stale entries,
        #: ever: every mutation updates set and list together.
        self._sorted: List[List[int]] = [[] for _ in range(max_order + 1)]
        self._allocated: Dict[int, int] = {}  # pfn -> order
        pfns = range(start_pfn, start_pfn + total_pages, block)
        self._free_sets[max_order] = set(pfns)
        self._sorted[max_order] = list(pfns)
        self._free_pages = total_pages

    # --- internal free-list maintenance -------------------------------------

    def _insert(self, order: int, pfn: int) -> None:
        self._free_sets[order].add(pfn)
        lst = self._sorted[order]
        lst.insert(bisect_left(lst, pfn), pfn)
        self._free_pages += 1 << order

    def _discard(self, order: int, pfn: int) -> None:
        """Remove a specific free block."""
        self._free_sets[order].remove(pfn)
        lst = self._sorted[order]
        del lst[bisect_left(lst, pfn)]
        self._free_pages -= 1 << order

    def _pop_lowest(self, order: int) -> int:
        """Pop the lowest-address free block of *order*."""
        lst = self._sorted[order]
        if not lst:
            raise AllocationError(f"no free block of order {order}")
        pfn = lst.pop(0)
        self._free_sets[order].remove(pfn)
        self._free_pages -= 1 << order
        return pfn

    # --- public queries -------------------------------------------------------

    @property
    def free_pages(self) -> int:
        """Pages currently in the free lists (isolated pages excluded)."""
        return self._free_pages

    @property
    def end_pfn(self) -> int:
        return self.start_pfn + self.total_pages

    def owns(self, pfn: int) -> bool:
        return self.start_pfn <= pfn < self.end_pfn

    def free_blocks(self, order: int) -> Set[int]:
        """Snapshot of the free-list of one order (for tests/inspection)."""
        return set(self._free_sets[order])

    # --- allocation ---------------------------------------------------------

    def alloc_block(self, order: int) -> int:
        """Allocate one block of 2**order pages; returns its first pfn.

        Splits a larger block when the requested order's list is empty,
        always preferring the lowest address available.
        """
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} out of range")
        source = order
        while source <= self.max_order and not self._free_sets[source]:
            source += 1
        if source > self.max_order:
            raise AllocationError(f"out of memory for order-{order} block")
        pfn = self._pop_lowest(source)
        while source > order:
            source -= 1
            self._insert(source, pfn + (1 << source))  # keep the low half
        self._allocated[pfn] = order
        return pfn

    def alloc_pages(self, count: int) -> List[Tuple[int, int]]:
        """Allocate *count* pages as a list of (pfn, order) extents.

        Greedy: largest orders first, falling back to smaller orders as the
        free lists fragment.  All-or-nothing — on failure everything grabbed
        so far is freed again and :class:`AllocationError` is raised.
        """
        if count <= 0:
            raise AllocationError("count must be positive")
        grabbed: List[Tuple[int, int]] = []
        remaining = count
        free_sets = self._free_sets
        sorted_ = self._sorted
        allocated = self._allocated
        max_order = self.max_order
        try:
            while remaining > 0:
                # Free-list scan instead of exception-driven fallback:
                # alloc_block(order) fails exactly when every list at
                # >= order is empty, in which case the next candidate is
                # the largest non-empty order below it.
                order = min(max_order, remaining.bit_length() - 1)
                source = order
                while source <= max_order and not free_sets[source]:
                    source += 1
                if source > max_order:
                    order -= 1
                    while order >= 0 and not free_sets[order]:
                        order -= 1
                    if order < 0:
                        raise AllocationError(
                            f"out of memory: {remaining} of {count} "
                            f"pages unsatisfied")
                    source = order
                if source == order == max_order:
                    # Bulk grab: a large request consumes a run of
                    # max-order blocks.  The k lowest live pfns are the
                    # sorted list's leading slice — one copy plus one
                    # C-level delete, where the old heap walked them one
                    # lazy pop at a time.
                    live = free_sets[max_order]
                    k = min(remaining >> max_order, len(live))
                    if k >= 8:
                        lst = sorted_[max_order]
                        batch = lst[:k]
                        del lst[:k]
                        live.difference_update(batch)
                        self._free_pages -= k << max_order
                        allocated.update(dict.fromkeys(batch, max_order))
                        grabbed.extend((pfn, max_order) for pfn in batch)
                        remaining -= k << max_order
                        continue
                # Inlined _pop_lowest / _insert (this loop allocates one
                # buddy block per extent, so call overhead adds up).
                lst = sorted_[source]
                pfn = lst.pop(0)
                free_sets[source].remove(pfn)
                self._free_pages -= 1 << source
                while source > order:
                    source -= 1
                    half = pfn + (1 << source)
                    free_sets[source].add(half)
                    half_lst = sorted_[source]
                    half_lst.insert(bisect_left(half_lst, half), half)
                    self._free_pages += 1 << source
                allocated[pfn] = order
                grabbed.append((pfn, order))
                remaining -= 1 << order
        except AllocationError:
            for pfn, order in grabbed:
                self.free_block(pfn, order)
            raise
        return grabbed

    # --- freeing --------------------------------------------------------------

    def free_block(self, pfn: int, order: int) -> None:
        """Free a previously allocated block, coalescing with free buddies."""
        recorded = self._allocated.pop(pfn, None)
        if recorded != order:
            raise AllocationError(
                f"free of pfn {pfn} order {order} does not match allocation "
                f"({recorded})")
        free_sets = self._free_sets
        sorted_ = self._sorted
        max_order = self.max_order
        while order < max_order:
            buddy = pfn ^ (1 << order)
            live = free_sets[order]
            if buddy not in live:
                break
            live.remove(buddy)
            lst = sorted_[order]
            del lst[bisect_left(lst, buddy)]
            self._free_pages -= 1 << order
            if buddy < pfn:
                pfn = buddy
            order += 1
        self._insert(order, pfn)

    def free_max_order_blocks(self, pfns: List[int]) -> None:
        """Free many max-order blocks at once.

        Max-order blocks have no buddy to coalesce with, so freeing one
        is exactly an insert — which makes a batch equivalent to
        repeated :meth:`free_block` calls in any order.  The merged
        sorted list is rebuilt with one extend + sort (timsort exploits
        the existing runs).
        """
        allocated = self._allocated
        order = self.max_order
        for pfn in pfns:
            recorded = allocated.pop(pfn, None)
            if recorded != order:
                raise AllocationError(
                    f"free of pfn {pfn} order {order} does not match "
                    f"allocation ({recorded})")
        self._free_sets[order].update(pfns)
        lst = self._sorted[order]
        lst.extend(pfns)
        lst.sort()
        self._free_pages += len(pfns) << order

    # --- isolation for memory off-lining ---------------------------------------

    def isolate_range(self, start_pfn: int, count: int) -> List[Tuple[int, int]]:
        """Pull every free block inside [start_pfn, start_pfn+count) out of
        the free lists, so the range cannot satisfy new allocations.

        The range must be aligned to the maximum block size (memory blocks
        always are), which guarantees free blocks never straddle it.
        Returns the removed (pfn, order) blocks, to be passed back to
        :meth:`undo_isolation` if off-lining fails.
        """
        block = 1 << self.max_order
        if start_pfn % block or count % block:
            raise ConfigurationError("isolation range must be block aligned")
        end = start_pfn + count
        # Fully-free range fast path: eager coalescing means a free
        # aligned range consists of exactly its max-order blocks, so if
        # every max-order position is live nothing else can be (any
        # other free block would overlap one).  This is the common case
        # — the daemon prefers off-lining free blocks — and both the
        # check and the removal are single slice operations.
        top_live = self._free_sets[self.max_order]
        positions = range(start_pfn, end, block)
        if top_live.issuperset(positions):
            top_live.difference_update(positions)
            lst = self._sorted[self.max_order]
            del lst[bisect_left(lst, start_pfn):bisect_left(lst, end)]
            self._free_pages -= count
            return [(pfn, self.max_order) for pfn in positions]
        removed: List[Tuple[int, int]] = []
        for order in range(self.max_order + 1):
            lst = self._sorted[order]
            if not lst:
                continue
            i = bisect_left(lst, start_pfn)
            j = bisect_left(lst, end, i)
            if i == j:
                continue
            found = lst[i:j]
            del lst[i:j]
            self._free_sets[order].difference_update(found)
            self._free_pages -= len(found) << order
            removed.extend((pfn, order) for pfn in found)
        return removed

    def _free_in_range(self, order: int, start_pfn: int, count: int) -> List[int]:
        """Free blocks of *order* lying inside a range.

        The sorted list makes this a bisect-bounded slice — O(log n +
        found) regardless of range size or list population.
        """
        lst = self._sorted[order]
        i = bisect_left(lst, start_pfn)
        return lst[i:bisect_left(lst, start_pfn + count, i)]

    def undo_isolation(self, removed: List[Tuple[int, int]]) -> None:
        """Return blocks taken by :meth:`isolate_range` to the free lists."""
        for pfn, order in removed:
            self._insert(order, pfn)

    def free_pages_in_range(self, start_pfn: int, count: int) -> int:
        """Count free-list pages inside a range (used by removable checks)."""
        total = 0
        end = start_pfn + count
        for order in range(self.max_order + 1):
            lst = self._sorted[order]
            i = bisect_left(lst, start_pfn)
            total += (bisect_left(lst, end, i) - i) << order
        return total

    def add_range(self, start_pfn: int, count: int) -> None:
        """Give a (previously off-lined) frame range back to the allocator."""
        block = 1 << self.max_order
        if start_pfn % block or count % block:
            raise ConfigurationError("range must be block aligned")
        pfns = range(start_pfn, start_pfn + count, block)
        self._free_sets[self.max_order].update(pfns)
        lst = self._sorted[self.max_order]
        lst.extend(pfns)
        lst.sort()
        self._free_pages += count

    def split_allocated(self, pfn: int, order: int) -> None:
        """Split an allocated block into its two buddy halves in place.

        Lets callers free part of an allocation exactly: split until the
        piece to free is a whole block, then :meth:`free_block` it.
        """
        recorded = self._allocated.get(pfn)
        if recorded != order:
            raise AllocationError(
                f"split of pfn {pfn} order {order} does not match allocation "
                f"({recorded})")
        if order == 0:
            raise AllocationError("cannot split an order-0 block")
        half = order - 1
        self._allocated[pfn] = half
        self._allocated[pfn + (1 << half)] = half

    # --- checkpoint/restore -----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Live references to every mutable structure (snapshot contract:
        the caller pickles the returned tree immediately, so sharing the
        real containers is safe and preserves cross-references)."""
        return {"free_sets": self._free_sets,
                "sorted": self._sorted,
                "allocated": self._allocated,
                "free_pages": self._free_pages}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._free_sets = state["free_sets"]
        self._sorted = state["sorted"]
        self._allocated = state["allocated"]
        self._free_pages = state["free_pages"]

    def remove_allocated(self, pfn: int, order: int) -> None:
        """Drop an allocated block without returning it to the free lists.

        Used during off-lining: pages migrated out of an isolated block
        become free *but isolated* — they must not satisfy allocations.
        The caller keeps the (pfn, order) pair to either discard it on
        offline completion or hand it to :meth:`undo_isolation` on failure.
        """
        recorded = self._allocated.pop(pfn, None)
        if recorded != order:
            raise AllocationError(
                f"remove of pfn {pfn} order {order} does not match allocation "
                f"({recorded})")
