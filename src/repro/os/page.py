"""Page-extent metadata — the substrate's ``mem_map``.

Real kernels keep a ``struct page`` per frame; simulating tens of millions
of those in Python would drown the experiments, so the substrate tracks
*extents*: each buddy allocation (pfn, order) carries one metadata record.
Buddy alignment guarantees an extent never straddles a memory block, so
per-block accounting (used/unmovable page counts, the ``removable`` flag)
stays exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OwnerKind(enum.Enum):
    """What kind of entity owns an extent — determines movability."""

    #: Userspace process / VM memory: movable via page migration.
    USER = "user"
    #: Kernel allocations (slab, page tables, DMA buffers): unmovable.
    KERNEL = "kernel"
    #: User pages pinned for I/O or device access: temporarily unmovable.
    PINNED = "pinned"


class PageExtent:
    """A contiguous run of 2**order frames with uniform ownership.

    ``mergeable`` marks pages an application advised as KSM candidates via
    ``madvise(MADV_MERGEABLE)``; ``ksm_shared`` marks extents whose content
    is currently deduplicated into a stable-tree page (freed capacity is
    accounted by the KSM substrate, not here).

    Treated as immutable: relocation goes through :meth:`moved_to`.  A
    ``__slots__`` class (not a frozen dataclass) because extents are the
    single most-constructed object on the allocation hot path, and the
    derived fields (``pages``, ``movable``) are read several times per
    extent by the accounting code.
    """

    __slots__ = ("pfn", "order", "owner_id", "kind", "mergeable",
                 "ksm_shared", "pages", "end_pfn", "movable")

    def __init__(self, pfn: int, order: int, owner_id: str,
                 kind: OwnerKind = OwnerKind.USER,
                 mergeable: bool = False, ksm_shared: bool = False):
        self.pfn = pfn
        self.order = order
        self.owner_id = owner_id
        self.kind = kind
        self.mergeable = mergeable
        self.ksm_shared = ksm_shared
        pages = 1 << order
        #: Frame count (2**order).
        self.pages = pages
        self.end_pfn = pfn + pages
        #: Whether page migration can relocate this extent.
        self.movable = kind is OwnerKind.USER

    def moved_to(self, new_pfn: int) -> "PageExtent":
        """The same extent relocated to *new_pfn* (after migration)."""
        return PageExtent(new_pfn, self.order, self.owner_id, self.kind,
                          self.mergeable, self.ksm_shared)

    def __repr__(self) -> str:
        return (f"PageExtent(pfn={self.pfn}, order={self.order}, "
                f"owner_id={self.owner_id!r}, kind={self.kind}, "
                f"mergeable={self.mergeable}, ksm_shared={self.ksm_shared})")


@dataclass
class BlockAccounting:
    """Per-memory-block usage counters maintained by the memory manager."""

    used_pages: int = 0
    unmovable_pages: int = 0
    extents: "set[int]" = field(default_factory=set)  # extent pfns in block

    @property
    def has_unmovable(self) -> bool:
        return self.unmovable_pages > 0

    @property
    def is_empty(self) -> bool:
        return self.used_pages == 0
