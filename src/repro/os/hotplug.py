"""Memory-block on/off-lining — the substrate for ``offline_pages()``.

Reproduces the behaviour GreenDIMM depends on (Sections 2.3 and 5.2):

* a block off-lines by isolating its free pages, migrating the used
  movable pages away, and removing the range from the online total;
* **EBUSY** — the block holds unmovable (kernel/pinned) pages, detected
  immediately (~6 us in Table 3);
* **EAGAIN** — all pages are movable but migration fails transiently;
  the kernel tries three times before giving up, which is why the paper
  measures the EAGAIN latency (~4.37 ms) at roughly 3x a successful
  off-lining (~1.58 ms);
* on-lining returns the frames to the buddy allocator (~3.44 ms).

Latencies are modelled, not measured: each operation returns the time the
real kernel would have spent, and the simulation charges it to the core
running the daemon.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import (
    AllocationError,
    OfflineAgainError,
    OfflineBusyError,
    OnlineError,
)
from repro.obs.tracer import GLOBAL_TRACER as TRACER
from repro.os.mm import PhysicalMemoryManager
from repro.units import MICROSECOND, MILLISECOND

#: Migration attempts before the kernel returns EAGAIN (Section 5.2).
MIGRATION_ATTEMPTS = 3


class MemoryBlockState(enum.Enum):
    ONLINE = "online"
    OFFLINE = "offline"
    GOING_OFFLINE = "going-offline"


@dataclass(frozen=True)
class HotplugLatencyModel:
    """Latency constants calibrated to Table 3 (measured while running mcf).

    The measured off-lining success involved no page migration (GreenDIMM
    only picked fully-free blocks), so migration cost is a separate
    per-page term on top of the base success latency.
    """

    offline_success_s: float = 1.58 * MILLISECOND
    online_s: float = 3.44 * MILLISECOND
    failure_eagain_s: float = 4.37 * MILLISECOND
    failure_ebusy_s: float = 6.0 * MICROSECOND
    migrate_per_page_s: float = 3.0 * MICROSECOND

    def offline_latency(self, migrated_pages: int) -> float:
        return self.offline_success_s + migrated_pages * self.migrate_per_page_s


@dataclass
class HotplugStats:
    """Cumulative counters over a run, consumed by the Figure 8 / Table 3
    benchmarks."""

    offline_success: int = 0
    online_success: int = 0
    ebusy_failures: int = 0
    eagain_failures: int = 0
    migrated_pages: int = 0
    latency_by_kind_s: Dict[str, float] = field(default_factory=dict)

    def record(self, kind: str, latency_s: float) -> None:
        self.latency_by_kind_s[kind] = (
            self.latency_by_kind_s.get(kind, 0.0) + latency_s)

    @property
    def total_failures(self) -> int:
        return self.ebusy_failures + self.eagain_failures

    @property
    def total_latency_s(self) -> float:
        return sum(self.latency_by_kind_s.values())

    def mean_latency_s(self, kind: str, count: int) -> float:
        return self.latency_by_kind_s.get(kind, 0.0) / count if count else 0.0


@dataclass(frozen=True)
class OfflineResult:
    """Outcome of one off-lining attempt."""

    block: int
    success: bool
    latency_s: float
    migrated_pages: int = 0
    errno_name: Optional[str] = None


@dataclass(frozen=True)
class OnlineAttempt:
    """Outcome of one on-lining attempt (the ``try_`` mirror of
    :class:`OfflineResult`)."""

    block: int
    success: bool
    latency_s: float
    errno_name: Optional[str] = None


class MemoryBlockManager:
    """Drives block state transitions against a PhysicalMemoryManager.

    ``transient_failure_probability`` models the per-attempt chance that
    page migration aborts for lack of resources; the paper's runs
    practically never completed a migrating off-line (Section 5.2), so the
    default is high.  Use 0.0 to make migration reliable whenever
    destination frames exist.
    """

    def __init__(self, mm: PhysicalMemoryManager,
                 latency: Optional[HotplugLatencyModel] = None,
                 transient_failure_probability: float = 0.85,
                 rng: Optional[random.Random] = None):
        if not 0.0 <= transient_failure_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.mm = mm
        self.latency = latency or HotplugLatencyModel()
        self.transient_failure_probability = transient_failure_probability
        self.rng = rng or random.Random(0)
        self.states: List[MemoryBlockState] = [
            MemoryBlockState.ONLINE for _ in range(mm.num_blocks)]
        #: Incremental index of OFFLINE blocks, maintained at every state
        #: transition so the per-epoch ``offline_count`` query and the
        #: daemon's refill scans are O(offline) instead of O(num_blocks).
        self._offline_set: Set[int] = set()
        self.stats = HotplugStats()

    # --- queries ------------------------------------------------------------

    def state(self, index: int) -> MemoryBlockState:
        return self.states[index]

    def online_blocks(self) -> List[int]:
        return [i for i, s in enumerate(self.states)
                if s is MemoryBlockState.ONLINE]

    def offline_blocks(self) -> List[int]:
        return sorted(self._offline_set)

    def offline_set(self) -> Set[int]:
        """The offline blocks as an unordered set (live view, don't mutate).

        For callers that only need membership or a ``min``/``max`` —
        :meth:`offline_blocks` sorts the whole set on every call, which
        the daemon's refill loop would otherwise pay per iteration.
        """
        return self._offline_set

    @property
    def offline_count(self) -> int:
        return len(self._offline_set)

    def removable(self, index: int) -> bool:
        """The sysfs ``removable`` flag (Section 5.2): 1 when every page in
        the block is movable (or free)."""
        return self.mm.block_is_removable(index)

    def is_free(self, index: int) -> bool:
        return self.mm.block_is_free(index)

    # --- off-lining -------------------------------------------------------------

    def offline_block(self, index: int) -> OfflineResult:
        """``offline_pages()``: raise on failure, with latency attached.

        Raises :class:`OfflineBusyError` (unmovable pages present) or
        :class:`OfflineAgainError` (migration failed transiently).  The
        raised exception carries ``latency_s``.
        """
        if self.states[index] is not MemoryBlockState.ONLINE:
            raise OnlineError(f"block {index} is not online")

        if not self.mm.block_is_removable(index):
            latency = self.latency.failure_ebusy_s
            self.stats.ebusy_failures += 1
            self.stats.record("ebusy", latency)
            if TRACER.enabled:
                TRACER.event("hotplug.ebusy", block=index, latency_s=latency)
            error = OfflineBusyError(f"block {index} has unmovable pages")
            error.latency_s = latency
            raise error

        self.states[index] = MemoryBlockState.GOING_OFFLINE
        isolated = self.mm.isolate_block(index)
        migrated = 0
        try:
            if not self.mm.block_is_free(index):
                migrated = self._migrate_with_retries(index, isolated)
            self.mm.complete_offline(index)
        except AllocationError:
            self.mm.undo_isolate_block(index, isolated)
            self.states[index] = MemoryBlockState.ONLINE
            latency = self.latency.failure_eagain_s
            self.stats.eagain_failures += 1
            self.stats.record("eagain", latency)
            if TRACER.enabled:
                TRACER.event("hotplug.eagain", block=index, latency_s=latency)
            error = OfflineAgainError(f"block {index}: migration failed")
            error.latency_s = latency
            raise error

        self.states[index] = MemoryBlockState.OFFLINE
        self._offline_set.add(index)
        latency = self.latency.offline_latency(migrated)
        self.stats.offline_success += 1
        self.stats.migrated_pages += migrated
        self.stats.record("offline", latency)
        if TRACER.enabled:
            TRACER.event("hotplug.offline", block=index, latency_s=latency,
                         migrated_pages=migrated)
        return OfflineResult(block=index, success=True, latency_s=latency,
                             migrated_pages=migrated)

    def _migrate_with_retries(self, index: int,
                              isolated: List[Tuple[int, int]]) -> int:
        """Try migration up to MIGRATION_ATTEMPTS times (EAGAIN on failure)."""
        for attempt in range(MIGRATION_ATTEMPTS):
            if self.rng.random() < self.transient_failure_probability:
                continue
            return self.mm.migrate_block_out(index, isolated)
        raise AllocationError(
            f"block {index}: {MIGRATION_ATTEMPTS} migration attempts failed")

    def try_offline_block(self, index: int) -> OfflineResult:
        """Non-raising wrapper: always returns an :class:`OfflineResult`."""
        try:
            return self.offline_block(index)
        except (OfflineBusyError, OfflineAgainError) as err:
            return OfflineResult(block=index, success=False,
                                 latency_s=getattr(err, "latency_s", 0.0),
                                 errno_name=err.errno_name)

    # --- on-lining ---------------------------------------------------------------

    def online_block(self, index: int) -> float:
        """``online_pages()``: return the block to service.

        Returns the modelled latency.  GreenDIMM additionally waits for the
        sub-array wake-up before calling this (Section 4.2); that wait is
        accounted by the power-control layer, not here.
        """
        if self.states[index] is not MemoryBlockState.OFFLINE:
            error = OnlineError(f"block {index} is not offline")
            error.latency_s = 0.0
            raise error
        self.mm.complete_online(index)
        self.states[index] = MemoryBlockState.ONLINE
        self._offline_set.discard(index)
        latency = self.latency.online_s
        self.stats.online_success += 1
        self.stats.record("online", latency)
        if TRACER.enabled:
            TRACER.event("hotplug.online", block=index, latency_s=latency)
        return latency

    def try_online_block(self, index: int) -> OnlineAttempt:
        """Non-raising wrapper: always returns an :class:`OnlineAttempt`."""
        try:
            return OnlineAttempt(block=index, success=True,
                                 latency_s=self.online_block(index))
        except OnlineError as err:
            return OnlineAttempt(block=index, success=False,
                                 latency_s=getattr(err, "latency_s", 0.0),
                                 errno_name=err.errno_name)

    # --- checkpoint/restore ------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Mutable hot-plug state; the migration-retry RNG is captured as
        its ``getstate()`` tuple (see :mod:`repro.sim.snapshot`)."""
        return {"rng": self.rng.getstate(),
                "states": self.states,
                "offline_set": self._offline_set,
                "stats": self.stats}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.rng.setstate(state["rng"])
        self.states = state["states"]
        self._offline_set = state["offline_set"]
        self.stats = state["stats"]
