"""A swap device model.

Section 4.2's justification for the 10%+ free-memory reserve is that
smaller reserves make the system "swap pages frequently between the main
memory and the storage", degrading performance dramatically.  This
module gives the reproduction that mechanism: when an allocation cannot
be satisfied even after emergency on-lining, pages spill to swap; later
references to swapped pages fault them back in.  Both directions cost
device time that the server simulation charges to the workload as stall.

The device defaults model a SATA SSD: ~500MB/s streaming, with a small
per-operation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.units import GIB, PAGE_SIZE


@dataclass(frozen=True)
class SwapDeviceModel:
    """Throughput/latency of the backing device."""

    bandwidth_bytes_per_s: float = 500e6
    per_op_latency_s: float = 80e-6

    def transfer_time_s(self, pages: int) -> float:
        if pages <= 0:
            return 0.0
        return (self.per_op_latency_s
                + pages * PAGE_SIZE / self.bandwidth_bytes_per_s)


@dataclass
class SwapStats:
    pages_swapped_out: int = 0
    pages_swapped_in: int = 0
    stall_s: float = 0.0

    @property
    def total_io_pages(self) -> int:
        return self.pages_swapped_out + self.pages_swapped_in


class SwapSpace:
    """Per-owner swapped-page accounting plus the device time model.

    This is an accounting model, not a page-table one: the epoch
    simulation works at footprint granularity, so swap holds *counts* of
    each owner's pages that could not be resident.  ``swap_in`` returns
    the stall charged for bringing them back.
    """

    def __init__(self, size_bytes: int = 16 * GIB,
                 device: SwapDeviceModel = SwapDeviceModel()):
        if size_bytes <= 0:
            raise ConfigurationError("swap size must be positive")
        self.size_pages = size_bytes // PAGE_SIZE
        self.device = device
        self._held: Dict[str, int] = {}
        self.stats = SwapStats()

    # --- queries -----------------------------------------------------------

    @property
    def used_pages(self) -> int:
        return sum(self._held.values())

    @property
    def free_pages(self) -> int:
        return self.size_pages - self.used_pages

    def held_for(self, owner_id: str) -> int:
        return self._held.get(owner_id, 0)

    # --- traffic ------------------------------------------------------------

    def swap_out(self, owner_id: str, pages: int) -> float:
        """Push *pages* of *owner_id* to swap; returns the stall time.

        Raises :class:`ConfigurationError` when the device is full — the
        real system would OOM-kill at that point.
        """
        if pages <= 0:
            return 0.0
        if pages > self.free_pages:
            raise ConfigurationError(
                f"swap exhausted: need {pages}, have {self.free_pages}")
        self._held[owner_id] = self._held.get(owner_id, 0) + pages
        stall = self.device.transfer_time_s(pages)
        self.stats.pages_swapped_out += pages
        self.stats.stall_s += stall
        return stall

    def swap_in(self, owner_id: str, pages: int) -> float:
        """Fault up to *pages* of *owner_id* back in; returns the stall."""
        held = self._held.get(owner_id, 0)
        pages = min(pages, held)
        if pages <= 0:
            return 0.0
        remaining = held - pages
        if remaining:
            self._held[owner_id] = remaining
        else:
            del self._held[owner_id]
        stall = self.device.transfer_time_s(pages)
        self.stats.pages_swapped_in += pages
        self.stats.stall_s += stall
        return stall

    # --- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Mutable swap state (see :mod:`repro.sim.snapshot`)."""
        return {"held": self._held, "stats": self.stats}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._held = state["held"]
        self.stats = state["stats"]

    def release(self, owner_id: str) -> int:
        """Owner exited: drop its swap slots without I/O."""
        return self._held.pop(owner_id, 0)

    def drop(self, owner_id: str, pages: int) -> int:
        """Discard up to *pages* of an owner's swap slots without I/O
        (the owner freed that memory; the swapped copies are dead)."""
        held = self._held.get(owner_id, 0)
        pages = min(pages, held)
        if pages <= 0:
            return 0
        remaining = held - pages
        if remaining:
            self._held[owner_id] = remaining
        else:
            del self._held[owner_id]
        return pages
