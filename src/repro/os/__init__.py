"""OS physical-memory-management substrate.

Reproduces the Linux machinery GreenDIMM drives (Sections 2.3 and 5):
a buddy allocator over page frames, Normal/Movable zones (``movablecore``),
an extent-granularity ``mem_map``, page migration, and memory-block
on/off-lining with the EBUSY/EAGAIN failure modes and latencies the paper
measures in Table 3.  A small sysfs facade mirrors the
``/sys/devices/system/memory`` interface the real daemon would use.
"""

from repro.os.buddy import BuddyAllocator
from repro.os.page import PageExtent, OwnerKind
from repro.os.zones import Zone, ZoneKind, ZoneLayout
from repro.os.mm import PhysicalMemoryManager, Meminfo
from repro.os.hotplug import (
    MemoryBlockManager,
    MemoryBlockState,
    HotplugLatencyModel,
    HotplugStats,
)
from repro.os.sysfs import SysfsMemoryInterface

__all__ = [
    "BuddyAllocator",
    "PageExtent",
    "OwnerKind",
    "Zone",
    "ZoneKind",
    "ZoneLayout",
    "PhysicalMemoryManager",
    "Meminfo",
    "MemoryBlockManager",
    "MemoryBlockState",
    "HotplugLatencyModel",
    "HotplugStats",
    "SysfsMemoryInterface",
]
