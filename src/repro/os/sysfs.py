"""A ``/sys/devices/system/memory`` facade over the hot-plug substrate.

GreenDIMM's real daemon reads and writes sysfs files: ``block_size_bytes``
to learn the off-lining granularity, ``memoryN/removable`` to pick
candidates (Section 5.2), and ``memoryN/state`` to trigger the actual
on/off-lining.  This facade exposes the same string-based interface so
examples and tests can exercise the daemon exactly the way the paper's
implementation drives Linux.
"""

from __future__ import annotations

import re
from repro.errors import HotplugError
from repro.os.hotplug import MemoryBlockManager, MemoryBlockState
from repro.units import PAGE_SIZE

_BLOCK_FILE = re.compile(r"^memory(\d+)/(state|removable|phys_index)$")


class SysfsMemoryInterface:
    """String-in, string-out view of :class:`MemoryBlockManager`."""

    def __init__(self, manager: MemoryBlockManager):
        self.manager = manager

    def read(self, path: str) -> str:
        """Read a sysfs file; *path* is relative to
        ``/sys/devices/system/memory``."""
        if path == "block_size_bytes":
            return format(self.manager.mm.block_pages * PAGE_SIZE, "x")
        match = _BLOCK_FILE.match(path)
        if not match:
            raise FileNotFoundError(path)
        index = int(match.group(1))
        if not 0 <= index < self.manager.mm.num_blocks:
            raise FileNotFoundError(path)
        attr = match.group(2)
        if attr == "state":
            return self.manager.state(index).value
        if attr == "phys_index":
            return format(index, "x")
        return "1" if self.manager.removable(index) else "0"

    def write(self, path: str, value: str) -> None:
        """Write ``online``/``offline`` to a ``memoryN/state`` file.

        Mirrors the kernel's errno behaviour: raises
        :class:`OfflineBusyError` / :class:`OfflineAgainError` exactly as
        ``echo offline > state`` would return -EBUSY / -EAGAIN.
        """
        match = _BLOCK_FILE.match(path)
        if not match or match.group(2) != "state":
            raise FileNotFoundError(path)
        index = int(match.group(1))
        value = value.strip()
        if value == "offline":
            self.manager.offline_block(index)
        elif value == "online":
            self.manager.online_block(index)
        else:
            raise HotplugError(f"invalid state value {value!r}")

    def block_indices(self) -> range:
        return range(self.manager.mm.num_blocks)

    def state_of(self, index: int) -> MemoryBlockState:
        return self.manager.state(index)
