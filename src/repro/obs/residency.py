"""Per-power-state residency accounting for epoch-kernel runs.

The gem5 DRAM power-down work (Jagtap et al.) makes the case that
power-state reproductions live or die by per-state residency statistics:
an energy number alone cannot tell *why* a run saved what it saved.
This module gives every kernel-driven run that breakdown.

The accounting is **capacity-weighted**: at each epoch the installed
DRAM splits into the fraction GreenDIMM holds in sub-array deep
power-down (``dpd_fraction``) and the live remainder, which the epoch's
operating point divides between active standby (rows open, serving
traffic) and precharge standby.  Each state's bucket accumulates
``epoch_s * fraction`` seconds, so a run's buckets always sum to its
measured duration — the invariant the tests pin with fast-forward on
and off.  Rank-granularity power-down and self-refresh buckets exist
for the baseline policies (commodity CKE timeouts); the GreenDIMM
kernel itself never enters them, which the report makes visible.

The process-global :data:`GLOBAL_RESIDENCY` account mirrors
:mod:`repro.perfcounters`: the kernel publishes every finished run into
it, and the runner drains it at the process that ran the job so the
totals survive the trip back from pool workers and land in the
``job_end`` JSONL metrics events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError


@dataclass
class ResidencyStats:
    """Capacity-weighted seconds spent in each DRAM power state."""

    active_standby_s: float = 0.0
    precharge_standby_s: float = 0.0
    power_down_s: float = 0.0
    self_refresh_s: float = 0.0
    deep_power_down_s: float = 0.0

    def add_span(self, span_s: float, active_residency: float,
                 dpd_fraction: float) -> None:
        """Attribute *span_s* seconds at one operating point.

        *dpd_fraction* of the capacity sits in sub-array deep
        power-down; the live remainder splits by *active_residency*
        between active and precharge standby.  The three shares sum to
        *span_s* (up to float rounding), preserving the
        buckets-sum-to-duration invariant.

        Both fractions are clamped into [0, 1]: the vectorized epoch
        paths can hand over values a few ulps outside the interval, and
        an unclamped overshoot would book *negative* seconds into a
        bucket — silently corrupting :meth:`fractions`.  A negative
        *span_s* has no such benign reading and is rejected.
        """
        if span_s < 0.0:
            raise SimulationError(
                f"cannot attribute a negative residency span ({span_s!r} s)")
        active_residency = min(1.0, max(0.0, active_residency))
        dpd_fraction = min(1.0, max(0.0, dpd_fraction))
        gated_s = span_s * dpd_fraction
        live_s = span_s - gated_s
        active_s = live_s * active_residency
        self.deep_power_down_s += gated_s
        self.active_standby_s += active_s
        self.precharge_standby_s += live_s - active_s

    def merge(self, other: "ResidencyStats") -> None:
        self.active_standby_s += other.active_standby_s
        self.precharge_standby_s += other.precharge_standby_s
        self.power_down_s += other.power_down_s
        self.self_refresh_s += other.self_refresh_s
        self.deep_power_down_s += other.deep_power_down_s

    @property
    def total_s(self) -> float:
        """Accounted time; equals the run duration for kernel runs."""
        return (self.active_standby_s + self.precharge_standby_s
                + self.power_down_s + self.self_refresh_s
                + self.deep_power_down_s)

    def as_dict(self) -> Dict[str, float]:
        """State -> seconds, matching :class:`repro.power.states.PowerState`
        values; zero buckets are kept so consumers see the full schema."""
        return {
            "active_standby": self.active_standby_s,
            "precharge_standby": self.precharge_standby_s,
            "power_down": self.power_down_s,
            "self_refresh": self.self_refresh_s,
            "deep_power_down": self.deep_power_down_s,
        }

    def fractions(self) -> Dict[str, float]:
        """Normalized residency fractions (empty when nothing accounted)."""
        total = self.total_s
        if total <= 0:
            return {}
        return {state: seconds / total
                for state, seconds in self.as_dict().items()}


@dataclass
class ResidencyAccount:
    """What one process accumulated across kernel runs since last drain."""

    residency: ResidencyStats = field(default_factory=ResidencyStats)
    dram_energy_j: float = 0.0
    baseline_dram_energy_j: float = 0.0
    duration_s: float = 0.0
    runs: int = 0

    def record_run(self, residency: ResidencyStats, dram_energy_j: float,
                   baseline_dram_energy_j: float, duration_s: float) -> None:
        """Fold one finished kernel run into the account."""
        self.residency.merge(residency)
        self.dram_energy_j += dram_energy_j
        self.baseline_dram_energy_j += baseline_dram_energy_j
        self.duration_s += duration_s
        self.runs += 1

    def as_dict(self) -> Dict[str, object]:
        """JSONL-friendly summary; ``{}`` when no run was recorded."""
        if not self.runs:
            return {}
        return {
            "states": self.residency.as_dict(),
            "dram_energy_j": self.dram_energy_j,
            "baseline_dram_energy_j": self.baseline_dram_energy_j,
            "duration_s": self.duration_s,
            "runs": self.runs,
        }

    def reset(self) -> None:
        self.residency = ResidencyStats()
        self.dram_energy_j = 0.0
        self.baseline_dram_energy_j = 0.0
        self.duration_s = 0.0
        self.runs = 0


#: The process-wide account the kernel publishes finished runs into.
GLOBAL_RESIDENCY = ResidencyAccount()


def record_run(residency: ResidencyStats, dram_energy_j: float,
               baseline_dram_energy_j: float, duration_s: float) -> None:
    """Publish one finished run to the process account."""
    GLOBAL_RESIDENCY.record_run(residency, dram_energy_j,
                                baseline_dram_energy_j, duration_s)


def drain_residency() -> Dict[str, object]:
    """Snapshot and clear the process account (one job's worth)."""
    snapshot = GLOBAL_RESIDENCY.as_dict()
    GLOBAL_RESIDENCY.reset()
    return snapshot
