"""``repro report``: one readable document per run.

Consumes the runner's metrics JSONL (``job_start`` / ``job_end`` /
``suite_end`` plus the fleet's ``fleet_server`` / ``fleet_end`` events)
and, optionally, a trace JSONL dumped by
:meth:`repro.obs.tracer.Tracer.dump`, and renders a single markdown (or
minimal self-contained HTML) run report:

* suite summary — workers, wall time, cache behaviour, pool
  utilization (clamped *and* raw, so over-accounted wall time is
  visible instead of silently hidden at 100%);
* per-job table — wall times, fast-forward epoch accounting, injected
  faults, errors;
* energy & savings — per job and aggregate, from the drained residency
  accounts;
* per-power-state residencies — the Jagtap-style breakdown;
* the daemon decision timeline — every ``daemon.*`` trace event, with
  counts by decision kind;
* the fleet per-server table — savings, offline blocks, DPD fraction,
  emergency onlines, and utilization per server;
* the fault summary.

Sections with no data are omitted, so a plain single-job report stays
short while a traced fleet run gets the full document.
"""

from __future__ import annotations

import html
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, pathlib.Path]

#: Timeline rows rendered before the report elides the rest.
TIMELINE_LIMIT = 60


def load_jsonl(path: PathLike) -> List[Dict[str, object]]:
    """Parse one JSON document per non-empty line of *path*."""
    events: List[Dict[str, object]] = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


# --- small formatting helpers -------------------------------------------------


def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _pct(value: float) -> str:
    return f"{value:.1%}"


def _seconds(value: float) -> str:
    return f"{value:,.1f} s" if value >= 10 else f"{value:.3f} s"


def _joules(value: float) -> str:
    return f"{value / 1e6:.3f} MJ" if value >= 1e6 else f"{value:,.1f} J"


# --- event digestion ----------------------------------------------------------


def _event_order(event: Dict[str, object]) -> "tuple[int, float]":
    """Sort key for the event stream: monotonic first, wall-clock after.

    ``ts_mono`` is immune to wall-clock steps (NTP, suspend/resume)
    that can reorder ``ts``; older streams without it fall back to the
    wall clock, and the stable sort keeps their file order on ties.
    """
    mono = event.get("ts_mono")
    if isinstance(mono, (int, float)):
        return (0, float(mono))
    ts = event.get("ts")
    return (1, float(ts) if isinstance(ts, (int, float)) else 0.0)


def _job_ends(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    return [e for e in events if e.get("event") == "job_end"]


def _merge_counts(jobs: Sequence[Dict[str, object]],
                  key: str) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for job in jobs:
        for name, count in (job.get(key) or {}).items():
            merged[name] = merged.get(name, 0) + int(count)
    return merged


def _collect_trace_events(
        jobs: Sequence[Dict[str, object]],
        extra: Optional[Sequence[Dict[str, object]]],
) -> Tuple[List[Dict[str, object]], Dict[str, int]]:
    """Flatten per-job embedded traces plus a standalone trace file.

    Returns ``(events, counters)`` where each event is the flat
    ``kind``/``t_s``/detail dict the tracer emits.
    """
    collected: List[Dict[str, object]] = []
    counters: Dict[str, int] = {}
    for job in jobs:
        trace = job.get("trace") or {}
        owner = job.get("experiment")
        for event in trace.get("events") or []:
            if owner is not None and "job" not in event:
                event = {**event, "job": owner}
            collected.append(event)
        for name, count in (trace.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(count)
    if extra:
        collected.extend(e for e in extra if "kind" in e)
    return collected, counters


def _sum_residency(jobs: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate the drained residency accounts across job_end events."""
    states: Dict[str, float] = {}
    totals = {"dram_energy_j": 0.0, "baseline_dram_energy_j": 0.0,
              "duration_s": 0.0, "runs": 0}
    for job in jobs:
        account = job.get("residency") or {}
        for state, seconds in (account.get("states") or {}).items():
            states[state] = states.get(state, 0.0) + float(seconds)
        for key in totals:
            totals[key] += account.get(key, 0) or 0
    return {"states": states, **totals}


# --- the report ---------------------------------------------------------------


def build_report(events: Sequence[Dict[str, object]],
                 trace_events: Optional[Sequence[Dict[str, object]]] = None,
                 title: str = "GreenDIMM run report") -> str:
    """Render the markdown report for one metrics-event stream."""
    sections: List[str] = [f"# {title}"]
    events = sorted(events, key=_event_order)
    jobs = _job_ends(events)
    suite = next((e for e in reversed(events)
                  if e.get("event") == "suite_end"), None)

    if suite is not None:
        raw = suite.get("utilization_raw", suite.get("utilization", 0.0))
        rows = [
            ("workers", suite.get("workers")),
            ("jobs", suite.get("jobs")),
            ("elapsed", _seconds(float(suite.get("elapsed_s", 0.0)))),
            ("busy (cache misses)",
             _seconds(float(suite.get("busy_s", 0.0)))),
            ("cache hits / misses",
             f"{suite.get('cache_hits', 0)} / "
             f"{suite.get('cache_misses', 0)}"),
            ("pool utilization", _pct(float(suite.get("utilization", 0.0)))),
            ("pool utilization (raw)", _pct(float(raw))),
        ]
        section = ["## Suite summary", "", _md_table(["metric", "value"],
                                                     rows)]
        if suite.get("interrupted"):
            section.append("")
            section.append(
                "> **Warning:** the suite was interrupted — counters "
                "cover only the jobs that finished before the signal.")
        if float(raw) > 1.0:
            section.append("")
            section.append(
                "> **Warning:** raw utilization exceeds 100% — job wall "
                "time is over-accounted (double-counted overlap or clock "
                "skew); the clamped figure hides this.")
        sections.append("\n".join(section))

    if jobs:
        rows = []
        for job in jobs:
            perf = job.get("perf") or {}
            stepped = int(perf.get("epochs_stepped", 0))
            skipped = int(perf.get("epochs_fast_forwarded", 0))
            batched = int(perf.get("epochs_batched", 0))
            total = stepped + skipped
            epochs = f"{skipped}/{total} ff" if total else "—"
            if batched:
                # Stable-span epochs: stepped, but evaluated in bulk.
                epochs += f" +{batched} sp"
            faults = sum((job.get("faults") or {}).values())
            rows.append((
                job.get("experiment", "?"),
                _seconds(float(job.get("wall_s", 0.0))),
                "hit" if job.get("cached") else "run",
                epochs,
                faults or "—",
                job.get("error") or "—",
            ))
        sections.append("\n".join([
            "## Jobs", "",
            _md_table(["job", "wall", "cache", "epochs", "faults",
                       "error"], rows)]))

    residency = _sum_residency(jobs)
    if residency["runs"]:
        baseline = float(residency["baseline_dram_energy_j"])
        energy = float(residency["dram_energy_j"])
        saving = 1.0 - energy / baseline if baseline > 0 else 0.0
        energy_rows = []
        for job in jobs:
            account = job.get("residency") or {}
            job_baseline = float(account.get("baseline_dram_energy_j", 0.0))
            if not account.get("runs"):
                continue
            job_energy = float(account.get("dram_energy_j", 0.0))
            job_saving = (1.0 - job_energy / job_baseline
                          if job_baseline > 0 else 0.0)
            energy_rows.append((job.get("experiment", "?"),
                                _joules(job_energy), _joules(job_baseline),
                                _pct(job_saving)))
        energy_rows.append(("**total**", _joules(energy), _joules(baseline),
                            _pct(saving)))
        sections.append("\n".join([
            "## Energy & savings", "",
            _md_table(["job", "DRAM energy", "ungated baseline", "saving"],
                      energy_rows)]))

        states: Dict[str, float] = residency["states"]
        total_s = sum(states.values())
        if total_s > 0:
            state_rows = [(state, _seconds(seconds),
                           _pct(seconds / total_s))
                          for state, seconds in states.items()]
            state_rows.append(("**total**", _seconds(total_s), _pct(1.0)))
            sections.append("\n".join([
                "## Power-state residencies", "",
                "Capacity-weighted time per DRAM power state, summed "
                "over all runs.", "",
                _md_table(["state", "time", "share"], state_rows)]))

    collected, counters = _collect_trace_events(jobs, trace_events)
    decisions = [e for e in collected
                 if str(e.get("kind", "")).startswith("daemon.")]
    if decisions:
        by_kind: Dict[str, int] = {}
        for event in decisions:
            kind = str(event["kind"])
            by_kind[kind] = by_kind.get(kind, 0) + 1
        count_rows = [(kind, by_kind[kind]) for kind in sorted(by_kind)]
        decisions.sort(key=lambda e: (e.get("t_s") is None,
                                      e.get("t_s") or 0.0))
        timeline_rows = []
        for event in decisions[:TIMELINE_LIMIT]:
            t_s = event.get("t_s")
            detail = ", ".join(f"{k}={v}" for k, v in sorted(event.items())
                               if k not in ("kind", "t_s"))
            timeline_rows.append((
                f"{t_s:,.1f}" if isinstance(t_s, (int, float)) else "—",
                str(event["kind"])[len("daemon."):],
                detail or "—"))
        section = ["## Daemon decision timeline", "",
                   _md_table(["decisions", "count"], count_rows), "",
                   _md_table(["t (s)", "decision", "detail"],
                             timeline_rows)]
        if len(decisions) > TIMELINE_LIMIT:
            section.append("")
            section.append(f"*… {len(decisions) - TIMELINE_LIMIT} more "
                           f"decisions elided.*")
        sections.append("\n".join(section))

    other = [e for e in collected
             if not str(e.get("kind", "")).startswith("daemon.")]
    if other or counters:
        by_kind = {}
        for event in other:
            kind = str(event.get("kind"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        rows = [(kind, by_kind[kind]) for kind in sorted(by_kind)]
        rows.extend((name, count) for name, count in sorted(counters.items()))
        sections.append("\n".join([
            "## Other trace activity", "",
            _md_table(["kind", "count"], rows)]))

    servers = [e for e in events if e.get("event") == "fleet_server"]
    if servers:
        rows = [(s.get("index"), s.get("vm_events", "—"),
                 _pct(float(s.get("dram_energy_saving", 0.0))),
                 f"{float(s.get('mean_offline_blocks', 0.0)):.1f}",
                 _pct(float(s.get("mean_dpd_fraction", 0.0))),
                 s.get("emergency_onlines", 0),
                 _pct(float(s.get("mean_utilization", 0.0))))
                for s in sorted(servers, key=lambda s: s.get("index", 0))]
        section = ["## Fleet servers", "",
                   _md_table(["server", "VM events", "energy saving",
                              "mean offline blocks", "mean DPD",
                              "emergency onlines", "mean utilization"],
                             rows)]
        fleet_end = next((e for e in reversed(events)
                          if e.get("event") == "fleet_end"), None)
        if fleet_end is not None:
            section.extend(["", _md_table(["fleet metric", "value"], [
                ("servers", fleet_end.get("servers")),
                ("fleet energy saving",
                 _pct(float(fleet_end.get("fleet_dram_energy_saving", 0.0)))),
                ("worst server saving",
                 _pct(float(fleet_end.get("worst_server_saving", 0.0)))),
                ("p95 peak offline blocks",
                 fleet_end.get("p95_max_offline_blocks")),
                ("emergency onlines",
                 fleet_end.get("total_emergency_onlines")),
            ])])
        sections.append("\n".join(section))

    cells = [e for e in events if e.get("event") == "tournament_row"]
    if cells:
        rows = [(c.get("policy"), c.get("scenario"),
                 f"{float(c.get('dram_power_w', 0.0)):.2f}",
                 _pct(float(c.get("dram_energy_saving", 0.0))),
                 _pct(float(c.get("overhead_fraction", 0.0))),
                 _pct(float(c.get("mean_dpd_fraction", 0.0))),
                 _pct(float(c.get("residency_self_refresh", 0.0))),
                 c.get("max_offline_blocks", 0),
                 c.get("emergency_onlines", 0))
                for c in cells]
        section = ["## Policy tournament", "",
                   _md_table(["policy", "scenario", "dram W",
                              "energy saving", "overhead", "mean DPD",
                              "SRF residency", "peak offline blocks",
                              "emergency onlines"], rows)]
        savings: Dict[str, List[float]] = {}
        for cell in cells:
            savings.setdefault(str(cell.get("policy")), []).append(
                float(cell.get("dram_energy_saving", 0.0)))
        means = sorted(((sum(v) / len(v), policy)
                        for policy, v in savings.items()), reverse=True)
        section.extend(["", _md_table(
            ["rank", "policy", "mean energy saving"],
            [(index + 1, policy, _pct(mean))
             for index, (mean, policy) in enumerate(means)])])
        sections.append("\n".join(section))

    faults = _merge_counts(jobs, "faults")
    if faults:
        rows = [(name, faults[name]) for name in sorted(faults)]
        rows.append(("**total**", sum(faults.values())))
        sections.append("\n".join([
            "## Fault summary", "",
            _md_table(["injected fault", "count"], rows)]))

    if len(sections) == 1:
        sections.append("*No runner events found — nothing to report.*")
    return "\n\n".join(sections) + "\n"


# --- HTML rendering -----------------------------------------------------------

_HTML_STYLE = """
body { font: 15px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a2e; padding: 0 1rem; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #cbd5e1; padding: 0.3rem 0.6rem;
         text-align: left; }
th { background: #eef2f7; }
blockquote { border-left: 4px solid #e0a020; margin: 0.75rem 0;
             padding: 0.25rem 0.75rem; background: #fdf6e3; }
h1, h2 { border-bottom: 1px solid #cbd5e1; padding-bottom: 0.2rem; }
"""


def markdown_to_html(markdown: str, title: str = "GreenDIMM run report") -> str:
    """A minimal self-contained HTML rendering (headings + tables).

    Deliberately tiny — the report only uses headings, paragraphs,
    blockquotes, and pipe tables, so a dependency-free converter keeps
    the toolkit stdlib-only.
    """
    body: List[str] = []
    table: List[str] = []

    def flush_table() -> None:
        if not table:
            return
        body.append("<table>")
        for row_index, line in enumerate(table):
            cells = [c.strip() for c in line.strip().strip("|").split("|")]
            if row_index == 1 and all(set(c) <= set(" -") for c in cells):
                continue
            tag = "th" if row_index == 0 else "td"
            rendered = "".join(
                f"<{tag}>{_inline(cell)}</{tag}>" for cell in cells)
            body.append(f"<tr>{rendered}</tr>")
        body.append("</table>")
        table.clear()

    def _inline(text: str) -> str:
        escaped = html.escape(text)
        while "**" in escaped:
            escaped = escaped.replace("**", "<strong>", 1)
            escaped = escaped.replace("**", "</strong>", 1)
        return escaped

    for line in markdown.splitlines():
        if line.startswith("|"):
            table.append(line)
            continue
        flush_table()
        if line.startswith("## "):
            body.append(f"<h2>{_inline(line[3:])}</h2>")
        elif line.startswith("# "):
            body.append(f"<h1>{_inline(line[2:])}</h1>")
        elif line.startswith("> "):
            body.append(f"<blockquote>{_inline(line[2:])}</blockquote>")
        elif line.strip():
            body.append(f"<p>{_inline(line)}</p>")
    flush_table()
    return ("<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{_HTML_STYLE}</style></head><body>"
            + "\n".join(body) + "</body></html>\n")


def write_report(events: Sequence[Dict[str, object]], out: PathLike,
                 trace_events: Optional[Sequence[Dict[str, object]]] = None,
                 title: str = "GreenDIMM run report") -> pathlib.Path:
    """Build and write the report; ``.html`` suffix selects HTML."""
    target = pathlib.Path(out)
    target.parent.mkdir(parents=True, exist_ok=True)
    markdown = build_report(events, trace_events=trace_events, title=title)
    if target.suffix.lower() in (".html", ".htm"):
        target.write_text(markdown_to_html(markdown, title=title))
    else:
        target.write_text(markdown)
    return target
