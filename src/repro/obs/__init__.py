"""Observability for the simulation stack: tracing, residency, reports.

The reproduction can *run* at fleet scale (kernel-driven epoch loops,
parallel runner, fault injection), but a finished run used to be a pile
of aggregate numbers — no structured record of what the daemon decided,
when fast-forward windows opened, or how the DRAM split its time across
power states.  This package is that record:

``tracer``
    A process-local :class:`~repro.obs.tracer.Tracer` (span + counter +
    gauge API over a bounded ring buffer, disabled by default) that the
    kernel epoch loop, the GreenDIMM daemon, the hot-plug layer, and the
    power-control/mode-register path emit structured events into.  The
    runner drains it across pool workers exactly like
    :mod:`repro.perfcounters` and the fault counters.

``residency``
    Always-on, capacity-weighted per-power-state residency accounting
    (time in ACT / PRE / PRE-PD / SREF / sub-array-DPD per run — the
    gem5 power-down-style breakdown), surfaced on run results and in
    ``job_end`` JSONL events.

``report``
    ``repro report``: turn a metrics JSONL (+ optional trace JSONL)
    into one markdown/HTML run report — energy savings, state
    residencies, the daemon decision timeline, the fleet per-server
    table, and the fault summary.

Everything here is strictly passive: tracing draws no randomness and
mutates no simulation state, so enabling it cannot perturb the
bit-for-bit golden contract of :mod:`repro.sim.kernel`.
"""

from repro.obs.residency import ResidencyStats, drain_residency
from repro.obs.tracer import GLOBAL_TRACER, Tracer, drain_trace, trace_scope

__all__ = [
    "GLOBAL_TRACER",
    "ResidencyStats",
    "Tracer",
    "drain_residency",
    "drain_trace",
    "trace_scope",
]
