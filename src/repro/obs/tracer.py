"""Structured run tracing over a bounded ring buffer.

A :class:`Tracer` collects three kinds of signals:

* **events** — timestamped facts (``daemon.offline``, ``ff.enter``,
  ``power.gate`` …) carrying the *simulated* time where the emitter has
  one, plus arbitrary key/value detail;
* **counters** — cheap monotonically increasing integers for hot paths
  where per-occurrence events would flood the buffer (e.g. rank
  low-power wakeups);
* **spans** — paired ``<kind>.enter``/``<kind>.exit`` events, the exit
  carrying the wall-clock duration of the enclosed work.

Design constraints, in order:

1. **Zero cost when disabled.**  Every entry point checks
   ``self.enabled`` first and returns before touching anything else;
   the instrumented hot paths guard event *construction* behind the
   same flag.  Tracing is disabled by default.
2. **Bounded.**  Events live in a ``deque(maxlen=capacity)``; overflow
   drops the oldest events and counts them in :attr:`Tracer.dropped`
   rather than growing without bound over a fleet-day replay.
3. **Passive.**  The tracer draws no randomness and mutates no
   simulation state, so enabling it cannot perturb the bit-for-bit
   golden contract of :mod:`repro.sim.kernel`.

The process-global :data:`GLOBAL_TRACER` mirrors
:data:`repro.perfcounters.GLOBAL`: each pool worker accumulates its
own, and the runner drains it at the process that ran the job
(:func:`drain_trace`) so traces survive the trip back from workers and
land in the ``job_end`` JSONL metrics events.
"""

from __future__ import annotations

import collections
import json
import pathlib
import time
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, NamedTuple, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Default ring-buffer capacity: generous for a day-scale replay's
#: daemon decisions, small enough to never matter for memory.
DEFAULT_CAPACITY = 65_536


class TraceEvent(NamedTuple):
    """One structured trace record."""

    kind: str
    #: Simulated seconds where the emitter has a clock; ``None`` for
    #: wall-clock-only emitters (e.g. the hot-plug layer).
    t_s: Optional[float]
    data: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        """Flat JSONL-friendly rendering (``kind``/``t_s`` + detail)."""
        out: Dict[str, object] = {"kind": self.kind, "t_s": self.t_s}
        out.update(self.data)
        return out


class Tracer:
    """Span + counter + gauge collection over a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False):
        self.enabled = enabled
        self.events: Deque[TraceEvent] = collections.deque(maxlen=capacity)
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.dropped = 0

    # --- switches ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # --- emission ----------------------------------------------------------

    def event(self, kind: str, t_s: Optional[float] = None,
              **data: object) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(TraceEvent(kind, t_s, data))

    def counter(self, name: str, delta: int = 1) -> None:
        """Bump a named counter (no-op while disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a named gauge (no-op disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = value

    @contextmanager
    def span(self, kind: str, t_s: Optional[float] = None,
             **data: object) -> Iterator[None]:
        """Emit ``<kind>.enter`` / ``<kind>.exit`` around a block.

        The exit event carries the wall-clock duration (``wall_s``) of
        the enclosed work; both events carry the caller's detail.
        """
        if not self.enabled:
            yield
            return
        self.event(kind + ".enter", t_s, **data)
        started = time.perf_counter()
        try:
            yield
        finally:
            self.event(kind + ".exit", t_s,
                       wall_s=time.perf_counter() - started, **data)

    # --- draining ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The collected signals as one JSON-serializable document.

        Returns ``{}`` when nothing was collected, so quiet jobs emit
        nothing into the metrics stream.
        """
        if not self.events and not self.counters and not self.gauges:
            return {}
        out: Dict[str, object] = {
            "events": [event.as_dict() for event in self.events],
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.gauges:
            out["gauges"] = dict(self.gauges)
        if self.dropped:
            out["dropped"] = self.dropped
        return out

    def drain(self) -> Dict[str, object]:
        """Snapshot and clear (one job's worth of trace)."""
        snapshot = self.snapshot()
        self.events.clear()
        self.counters.clear()
        self.gauges.clear()
        self.dropped = 0
        return snapshot

    def dump(self, path: PathLike) -> int:
        """Append the buffered events to *path* as JSONL; returns count."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("a") as handle:
            for event in self.events:
                handle.write(json.dumps(event.as_dict(), sort_keys=True)
                             + "\n")
        return len(self.events)


#: The process-wide tracer the instrumented layers emit into.
GLOBAL_TRACER = Tracer()


def drain_trace() -> Dict[str, object]:
    """Snapshot and clear the process tracer (one job's worth)."""
    return GLOBAL_TRACER.drain()


@contextmanager
def trace_scope(enabled: bool = True) -> Iterator[Tracer]:
    """Scope the global tracer's enablement to a ``with`` block."""
    previous = GLOBAL_TRACER.enabled
    GLOBAL_TRACER.enabled = enabled
    try:
        yield GLOBAL_TRACER
    finally:
        GLOBAL_TRACER.enabled = previous


def trace_events(kind_prefix: str = "") -> List[Dict[str, object]]:
    """The buffered events (optionally filtered by kind prefix)."""
    return [event.as_dict() for event in GLOBAL_TRACER.events
            if event.kind.startswith(kind_prefix)]
