"""Suite-level aggregation of runner outcomes.

The parallel engine completes jobs in whatever order the pool produces;
this aggregator accepts outcomes as they land — any order, any time —
and renders a canonical, deterministic summary: rows follow the
registry's experiment order (then name order for strays), so a serial
run and an 8-worker run of the same suite print byte-identical
summaries apart from the timing columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import Table


class SuiteAggregator:
    """Collects job outcomes out-of-order; renders them canonically."""

    def __init__(self, canonical_order: Optional[Sequence[str]] = None):
        if canonical_order is None:
            from repro.experiments.registry import runners

            canonical_order = list(runners())
        self._rank = {name: i for i, name in enumerate(canonical_order)}
        self._outcomes: List[object] = []

    # --- collection --------------------------------------------------------

    def add(self, outcome) -> None:
        """Accept one :class:`~repro.runner.engine.JobOutcome`, any order."""
        self._outcomes.append(outcome)

    def extend(self, outcomes) -> None:
        for outcome in outcomes:
            self.add(outcome)

    def __len__(self) -> int:
        return len(self._outcomes)

    # --- canonical views ---------------------------------------------------

    def sorted_outcomes(self) -> List[object]:
        """Outcomes in registry order, however they arrived."""
        return sorted(
            self._outcomes,
            key=lambda o: (self._rank.get(o.job.experiment, len(self._rank)),
                           o.job.experiment))

    def results(self) -> Dict[str, object]:
        """experiment id -> ExperimentResult for every successful job."""
        return {o.job.experiment: o.result
                for o in self.sorted_outcomes() if o.ok}

    def failures(self) -> Dict[str, str]:
        """experiment id -> error text for every failed job."""
        return {o.job.experiment: o.error or "unknown error"
                for o in self.sorted_outcomes() if not o.ok}

    # --- reporting ---------------------------------------------------------

    def measured(self) -> Dict[str, object]:
        """Aggregate counters, the suite's paper-vs-measured analogue."""
        outcomes = self._outcomes
        hits = sum(1 for o in outcomes if o.cached)
        return {
            "jobs": len(outcomes),
            "succeeded": sum(1 for o in outcomes if o.ok),
            "failed": sum(1 for o in outcomes if not o.ok),
            "cache_hits": hits,
            "cache_misses": len(outcomes) - hits,
            "busy_wall_s": sum(o.wall_s for o in outcomes),
        }

    def summary_table(self) -> Table:
        table = Table("Experiment suite summary",
                      ["experiment", "status", "source", "wall"])
        for outcome in self.sorted_outcomes():
            status = "ok" if outcome.ok else "FAILED"
            source = "cache" if outcome.cached else "run"
            table.add_row(outcome.job.experiment, status, source,
                          f"{outcome.wall_s:.2f}s")
        return table

    def render(self) -> str:
        measured = self.measured()
        lines = [self.summary_table().render(),
                 (f"{measured['jobs']} jobs: {measured['succeeded']} ok, "
                  f"{measured['failed']} failed; "
                  f"{measured['cache_hits']} cached, "
                  f"{measured['cache_misses']} executed "
                  f"({measured['busy_wall_s']:.2f}s busy)")]
        for name, error in self.failures().items():
            lines.append(f"{name}: {error}")
        return "\n\n".join(lines)
