"""The paper's published numbers, one record per table/figure.

Benchmarks print these next to the reproduction's measurements; the
EXPERIMENTS.md audit is generated from the same data.  Values are read
off the paper's text and figures (figure-read values are approximate).
"""

from __future__ import annotations

from typing import Any, Dict

PAPER: Dict[str, Dict[str, Any]] = {
    "fig1": {
        "description": "Memory utilization over 24h (Azure VM trace, 256GB)",
        "mean_utilization": 0.48,
        "min_utilization": 0.07,
        "max_utilization": 0.92,
        "ksm_mean_reduction": 0.24,
        "ksm_reduction_range": (0.04, 0.90),
    },
    "tab1": {
        "description": "DRAM power vs utilization of memory capacity (256GB)",
        "utilizations": (0.10, 0.25, 0.50, 0.75, 1.00),
        "power_w": (25.8, 25.8, 25.9, 26.0, 26.0),
    },
    "fig2": {
        "description": "DRAM idle/busy power vs capacity",
        "idle_w_256gb": 18.0,
        "busy_w_256gb": 26.0,
        "busy_w_64gb": 9.0,
        "busy_w_1tb": 91.0,
        "background_fraction_64gb": 0.44,
        "background_fraction_256gb": 0.70,
        "background_fraction_1tb": 0.78,
    },
    "fig3": {
        "description": "Impact of memory interleaving (64GB, high-MPKI SPEC2006)",
        "max_speedup": 3.8,
        "selfrefresh_fraction_interleaved": 0.0,
        "selfrefresh_fraction_non_interleaved": 0.54,
        "energy_reduction_wo_interleaving": 0.26,
    },
    "tab2": {
        "description": "On/off-lined memory blocks vs block size",
        "offline_events": {
            "429.mcf": {128: 6, 256: 2, 512: 1},
            "403.gcc": {128: 47, 256: 24, 512: 12},
            "450.soplex": {128: 36, 256: 18, 512: 8},
            "470.lbm": {128: 30, 256: 15, 512: 6},
            "462.libquantum": {128: 37, 256: 17, 512: 8},
            "453.povray": {128: 40, 256: 20, 512: 9},
        },
    },
    "tab3": {
        "description": "Hot-plug operation latencies while running mcf",
        "offline_ms": 1.58,
        "online_ms": 3.44,
        "eagain_ms": 4.37,
        "ebusy_us": 6.0,
    },
    "fig6": {
        "description": "Off-lined capacity vs block size",
        "gcc_offlined_gib": {128: 3.125, 512: 2.0},
        "shape": "smaller blocks off-line more capacity",
    },
    "fig7": {
        "description": "Execution-time increase vs block size",
        "mcf_overhead": {128: 0.029, 512: 0.022},
        "bound": 0.03,
    },
    "fig8": {
        "description": "Off-lining failures: random vs removable-first",
        "failure_reduction": 0.5,
    },
    "fig9": {
        "description": "DRAM energy normalized to w/o-intlv srf_only",
        "gcc_interleaving_penalty": 1.40,
        "perlbench_interleaving_penalty": 1.44,
        "lbm_interleaving_benefit": 0.62,
        "greendimm_min_reduction": 0.09,
        "greendimm_vs_rank_bank_pp": 0.49,
        "spec_mean_reduction": 0.38,
        "datacenter_mean_reduction": 0.60,
    },
    "fig10": {
        "description": "System energy normalized to w/o-intlv srf_only",
        "spec_mean_reduction": 0.26,
        "datacenter_mean_reduction": 0.30,
        "gcc_interleaving_penalty": 1.10,
    },
    "fig11": {
        "description": "Execution-time increase by GreenDIMM",
        "worst_case": 0.03,
        "worst_apps": ("403.gcc", "502.gcc"),
        "others_bound": 0.02,
    },
    "fig12": {
        "description": "Off-lined blocks over the VM trace (256 x 1GB blocks)",
        "mean_offline_blocks": 116,
        "max_offline_blocks": 230,
        "min_offline_blocks": 4,
        "background_power_reduction": 0.46,
        "ksm_extra_blocks": 61,
        "ksm_background_power_reduction": 0.70,
    },
    "fig13": {
        "description": "DRAM/system power vs capacity (Azure trace)",
        "dram_reduction_256gb": 0.32,
        "system_reduction_256gb": 0.09,
        "dram_reduction_1tb": 0.36,
        "system_reduction_1tb": 0.20,
        "ksm_dram_reduction_256gb": 0.48,
        "ksm_system_reduction_256gb": 0.13,
        "ksm_dram_reduction_1tb": 0.55,
        "ksm_system_reduction_1tb": 0.30,
    },
    "daemon": {
        "description": "Daemon overhead (Section 6.2)",
        "online_core_fraction": 0.0034,
        "offline_core_fraction": 0.0016,
        "onlines_per_s": 0.05,
        "offlines_per_s": 0.47,
    },
    "area": {
        "description": "Sub-array gating silicon cost (Section 4.3)",
        "switch_area_um2": 1500.0,
        "switch_area_fraction": 0.0064,
        "total_overhead_bound": 0.01,
    },
}
