"""Plain-text tables and series for the benchmark harness output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


def fmt_pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def fmt_w(value: float, digits: int = 1) -> str:
    """Format a power in watts."""
    return f"{value:.{digits}f}W"


@dataclass
class Table:
    """A fixed-width text table, the harness's figure/table medium."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells, expected {len(self.headers)}")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = [f"== {self.title} =="]
        out.append(line(self.headers))
        out.append(line(["-" * w for w in widths]))
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def show(self) -> None:
        print(self.render())
        print()


def render_series(title: str, xs: Iterable[object], ys: Iterable[float],
                  y_format: str = "{:.2f}", width: int = 50) -> str:
    """A crude horizontal bar rendering of one series (figure stand-in)."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    out = [f"== {title} =="]
    top = max((abs(y) for y in ys), default=1.0) or 1.0
    label_w = max((len(str(x)) for x in xs), default=1)
    for x, y in zip(xs, ys):
        bar = "#" * int(round(abs(y) / top * width))
        out.append(f"{str(x).ljust(label_w)}  {y_format.format(y):>10}  {bar}")
    return "\n".join(out)
