"""Energy accounting over time: integrate power-breakdown series.

The server simulator samples total DRAM power per epoch; when a study
needs *component* energies (how many joules went to refresh vs I/O vs
background — e.g. to show GreenDIMM attacks exactly the static share),
an :class:`EnergyAccount` integrates full breakdowns instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.report import Table
from repro.errors import ConfigurationError
from repro.power.model import DRAMPowerBreakdown

_COMPONENTS = ("background", "refresh", "activate", "rw", "io")


@dataclass
class EnergyAccount:
    """Accumulates component energies from timed power samples."""

    joules: Dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in _COMPONENTS})
    elapsed_s: float = 0.0

    def add(self, breakdown: DRAMPowerBreakdown, duration_s: float) -> None:
        """Integrate one interval at the given average power."""
        if duration_s < 0:
            raise ConfigurationError("duration must be non-negative")
        self.joules["background"] += breakdown.background_w * duration_s
        self.joules["refresh"] += breakdown.refresh_w * duration_s
        self.joules["activate"] += breakdown.activate_w * duration_s
        self.joules["rw"] += breakdown.rw_w * duration_s
        self.joules["io"] += breakdown.io_w * duration_s
        self.elapsed_s += duration_s

    @property
    def total_j(self) -> float:
        return sum(self.joules.values())

    @property
    def static_j(self) -> float:
        """Background + refresh: the energy GreenDIMM attacks."""
        return self.joules["background"] + self.joules["refresh"]

    @property
    def mean_power_w(self) -> float:
        return self.total_j / self.elapsed_s if self.elapsed_s else 0.0

    def fraction(self, component: str) -> float:
        if component not in self.joules:
            raise ConfigurationError(f"unknown component {component!r}")
        total = self.total_j
        return self.joules[component] / total if total else 0.0

    def compare(self, other: "EnergyAccount") -> List[Tuple[str, float]]:
        """Per-component reduction of *self* relative to *other*."""
        rows = []
        for name in _COMPONENTS:
            base = other.joules[name]
            reduction = 1.0 - self.joules[name] / base if base else 0.0
            rows.append((name, reduction))
        return rows

    def render(self, title: str = "Energy breakdown") -> str:
        table = Table(title, ["component", "joules", "share"])
        for name in _COMPONENTS:
            table.add_row(name, f"{self.joules[name]:.1f}",
                          f"{self.fraction(name):.1%}")
        table.add_row("total", f"{self.total_j:.1f}", "100.0%")
        return table.render()
