"""Result rendering and paper-reference data.

``report`` renders text tables/series the way the benchmark harness
prints them; ``paper`` holds the published numbers for every table and
figure so each bench can print paper-vs-measured side by side.
"""

from repro.analysis.report import Table, render_series, fmt_pct, fmt_w
from repro.analysis.paper import PAPER

__all__ = ["Table", "render_series", "fmt_pct", "fmt_w", "PAPER"]
