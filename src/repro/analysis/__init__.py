"""Result rendering, paper-reference data, and suite aggregation.

``report`` renders text tables/series the way the benchmark harness
prints them; ``paper`` holds the published numbers for every table and
figure so each bench can print paper-vs-measured side by side;
``aggregate`` folds the parallel runner's out-of-order job outcomes
into a canonical suite summary.
"""

from repro.analysis.aggregate import SuiteAggregator
from repro.analysis.report import Table, render_series, fmt_pct, fmt_w
from repro.analysis.paper import PAPER

__all__ = ["SuiteAggregator", "Table", "render_series", "fmt_pct",
           "fmt_w", "PAPER"]
