"""Process-global simulation-performance counters.

The fast-forward layer and the memoized power model count their work
here (cache hits/misses, epochs stepped vs analytically skipped).  The
counters are plain module state, mirroring the fault-injection context:
each pool worker accumulates its own, and the runner drains them at the
process that ran the job so they survive the trip back from workers and
land in the ``job_end`` JSONL metrics events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PerfCounters:
    """Cheap integer counters on the simulation hot path."""

    power_cache_hits: int = 0
    power_cache_misses: int = 0
    epochs_stepped: int = 0
    epochs_fast_forwarded: int = 0
    fast_forward_windows: int = 0
    #: Stepped epochs the span planner executed in bulk (a subset of
    #: ``epochs_stepped``) and the stable spans that batched them.
    epochs_batched: int = 0
    stable_spans: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Non-zero counters only, so quiet jobs emit nothing."""
        fields = {
            "power_cache_hits": self.power_cache_hits,
            "power_cache_misses": self.power_cache_misses,
            "epochs_stepped": self.epochs_stepped,
            "epochs_fast_forwarded": self.epochs_fast_forwarded,
            "fast_forward_windows": self.fast_forward_windows,
            "epochs_batched": self.epochs_batched,
            "stable_spans": self.stable_spans,
        }
        return {key: value for key, value in fields.items() if value}

    def reset(self) -> None:
        self.power_cache_hits = 0
        self.power_cache_misses = 0
        self.epochs_stepped = 0
        self.epochs_fast_forwarded = 0
        self.fast_forward_windows = 0
        self.epochs_batched = 0
        self.stable_spans = 0


#: The process-wide accumulator the hot paths increment directly.
GLOBAL = PerfCounters()


def drain_perf_counters() -> Dict[str, int]:
    """Snapshot and clear the process counters (one job's worth)."""
    snapshot = GLOBAL.as_dict()
    GLOBAL.reset()
    return snapshot
