"""Workload profile schema shared by the SPEC and data-center catalogs."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.trace import FootprintTrace


class Suite(enum.Enum):
    SPEC2006 = "SPECCPU2006"
    SPEC2017 = "SPECCPU2017"
    HIBENCH = "HiBench"
    CLOUDSUITE = "cloudsuite"


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the simulator needs to know about one application.

    Attributes
    ----------
    footprint:
        Resident-memory-vs-time trace; its dynamics drive on/off-lining.
    mpki:
        Last-level-cache misses per kilo-instruction — the memory
        intensity that determines how much interleaving matters (Fig. 3).
    base_ipc:
        Instructions per cycle with an ideal (zero-extra-latency) memory
        system; the performance model derates it with memory stalls.
    bandwidth_demand_bytes_per_s:
        DRAM traffic the application generates when running full speed.
    row_hit_rate:
        Row-buffer locality of its access stream.
    cpu_utilization:
        Average fraction of the CPU it keeps busy (for system power).
    mergeable_fraction / duplicate_fraction:
        Share of the footprint advised to KSM, and the share of those
        pages whose content duplicates another page (drives KSM savings).
    latency_critical:
        True for the cloudsuite serving workloads, where the paper checks
        tail latency rather than runtime.
    """

    name: str
    suite: Suite
    duration_s: float
    footprint: FootprintTrace
    mpki: float
    base_ipc: float = 1.6
    bandwidth_demand_bytes_per_s: float = 2e9
    row_hit_rate: float = 0.55
    cpu_utilization: float = 0.9
    mergeable_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    latency_critical: bool = False

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.mpki < 0:
            raise ConfigurationError("mpki must be non-negative")
        for frac in (self.row_hit_rate, self.cpu_utilization,
                     self.mergeable_fraction, self.duplicate_fraction):
            if not 0.0 <= frac <= 1.0:
                raise ConfigurationError("fractions must be in [0, 1]")

    @property
    def memory_intensive(self) -> bool:
        """The paper's informal split: high-MPKI workloads gain from
        interleaving; low-MPKI ones mostly pay its power cost."""
        return self.mpki >= 10.0

    @property
    def peak_footprint_bytes(self) -> int:
        return self.footprint.peak_bytes
