"""Unified lookup across the SPEC and data-center catalogs."""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.workloads.datacenter import DATACENTER_PROFILES
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec import SPEC_PROFILES

#: The application set of the Figure 9-11 energy/overhead evaluation.
EVALUATION_SET = (
    "403.gcc", "500.perlbench", "502.gcc", "429.mcf",
    "462.libquantum", "470.lbm", "519.lbm",
    "ml_linear", "data-caching", "data-serving", "web-serving",
)


def all_profiles() -> Dict[str, WorkloadProfile]:
    """Every known profile, keyed by name."""
    merged = dict(SPEC_PROFILES)
    merged.update(DATACENTER_PROFILES)
    return merged


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up any profile by name across both catalogs."""
    profiles = all_profiles()
    try:
        return profiles[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {sorted(profiles)}") from None
