"""An Azure-like VM arrival/consolidation trace generator.

Substitutes for the proprietary Microsoft Azure VM trace the paper replays
(Sections 3.1 and 6.3).  The generator reproduces the published setup:

* 100 distinct VM types (vCPU count, memory size, lifetime distribution);
* VM scheduling/consolidation every five minutes;
* vCPU consolidation ratio capped at 2x the physical cores;
* admitted memory never exceeding the server capacity;
* a diurnal load pattern calibrated so 24 hours of trace show ~48% mean
  memory utilization, swinging between roughly 7% and 92% (Figure 1).

Each VM carries an ``image_id``; VMs cloned from the same image share
page content, which is what gives KSM its cross-VM merging opportunities.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import GIB, MIB

#: The paper's scheduling/consolidation period.
SCHEDULING_PERIOD_S = 300.0

#: vCPU consolidation ratio bound ("less than or equal to two").
CONSOLIDATION_RATIO = 2.0


@dataclass(frozen=True)
class VMType:
    """One VM flavour: size plus a lognormal lifetime distribution."""

    name: str
    vcpus: int
    memory_bytes: int
    lifetime_mu: float  # of ln(lifetime_s)
    lifetime_sigma: float
    image_id: int

    def sample_lifetime_s(self, rng: random.Random) -> float:
        return min(rng.lognormvariate(self.lifetime_mu, self.lifetime_sigma),
                   7 * 24 * 3600.0)


@dataclass
class VMInstance:
    """A running VM admitted to the server."""

    vm_id: int
    vm_type: VMType
    arrival_s: float
    departure_s: float

    @property
    def owner_id(self) -> str:
        return f"vm{self.vm_id}"


@dataclass(frozen=True)
class VMEvent:
    """Arrival or departure, as the epoch simulation replays them."""

    time_s: float
    kind: str  # "arrive" | "depart"
    instance: VMInstance


@dataclass(frozen=True)
class UtilizationSample:
    time_s: float
    used_bytes: int
    vcpus_used: int


class AzureVMCatalog:
    """Builds the 100-type VM population.

    vCPU counts and per-vCPU memory follow the common Azure flavours;
    lifetimes follow the Resource Central observation that most VMs are
    short-lived while a tail runs for days.
    """

    VCPU_CHOICES = (1, 2, 4, 8, 16)
    VCPU_WEIGHTS = (0.35, 0.30, 0.20, 0.10, 0.05)
    #: Memory per vCPU, GiB.  Skewed to memory-heavy flavours: with the
    #: consolidation ratio capped at 2x cores, only high memory-per-vCPU
    #: mixes can reach the ~90% memory peaks the paper observes.
    GB_PER_VCPU = (2.0, 4.0, 8.0, 8.0, 16.0)
    NUM_IMAGES = 10

    def __init__(self, num_types: int = 100, seed: int = 2021):
        if num_types <= 0:
            raise ConfigurationError("need at least one VM type")
        rng = random.Random(seed)
        self.types: List[VMType] = []
        for i in range(num_types):
            vcpus = rng.choices(self.VCPU_CHOICES, self.VCPU_WEIGHTS)[0]
            gb_per_vcpu = rng.choice(self.GB_PER_VCPU)
            memory = int(vcpus * gb_per_vcpu * GIB)
            memory = max(memory, 768 * MIB)
            # Bimodal lifetimes: ~70% short (tens of minutes), rest long.
            if rng.random() < 0.7:
                mu, sigma = math.log(1800.0), 0.8
            else:
                mu, sigma = math.log(6 * 3600.0), 1.0
            self.types.append(VMType(
                name=f"type{i:03d}", vcpus=vcpus, memory_bytes=memory,
                lifetime_mu=mu, lifetime_sigma=sigma,
                image_id=rng.randrange(self.NUM_IMAGES)))

    def sample(self, rng: random.Random) -> VMType:
        return rng.choice(self.types)


@dataclass
class AzureTrace:
    """A generated 24h trace: events plus the ideal utilization series."""

    events: List[VMEvent]
    samples: List[UtilizationSample]
    capacity_bytes: int

    @property
    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.used_bytes for s in self.samples) / (
            len(self.samples) * self.capacity_bytes)

    def utilization_range(self) -> Tuple[float, float]:
        fractions = [s.used_bytes / self.capacity_bytes for s in self.samples]
        return min(fractions), max(fractions)


class AzureTraceGenerator:
    """Schedules VMs onto one server with the paper's admission rules."""

    def __init__(self, capacity_bytes: int = 256 * GIB,
                 physical_cores: int = 16,
                 catalog: Optional[AzureVMCatalog] = None,
                 duration_s: float = 24 * 3600.0,
                 seed: int = 7):
        self.capacity_bytes = capacity_bytes
        self.max_vcpus = int(physical_cores * CONSOLIDATION_RATIO)
        self.catalog = catalog or AzureVMCatalog()
        self.duration_s = duration_s
        self.rng = random.Random(seed)

    def _target_utilization(self, time_s: float) -> float:
        """Diurnal demand curve: quiet night, busy afternoon, plus noise."""
        day_fraction = (time_s % 86400.0) / 86400.0
        diurnal = 0.42 - 0.41 * math.cos(2 * math.pi * (day_fraction - 0.08))
        noise = self.rng.gauss(0.0, 0.05)
        return min(0.95, max(0.05, diurnal + noise))

    def generate(self) -> AzureTrace:
        """Produce arrivals/departures and the resulting utilization."""
        events: List[VMEvent] = []
        samples: List[UtilizationSample] = []
        running: List[VMInstance] = []
        next_id = 0
        steps = int(self.duration_s / SCHEDULING_PERIOD_S)
        for step in range(steps):
            now = step * SCHEDULING_PERIOD_S
            # Departures first.
            still: List[VMInstance] = []
            for vm in running:
                if vm.departure_s <= now:
                    events.append(VMEvent(now, "depart", vm))
                else:
                    still.append(vm)
            running = still
            # Admissions toward the diurnal target.
            target_bytes = int(self._target_utilization(now) * self.capacity_bytes)
            used = sum(vm.vm_type.memory_bytes for vm in running)
            vcpus = sum(vm.vm_type.vcpus for vm in running)
            attempts = 0
            while used < target_bytes and attempts < 64:
                attempts += 1
                vm_type = self.catalog.sample(self.rng)
                if used + vm_type.memory_bytes > self.capacity_bytes:
                    continue
                if used + vm_type.memory_bytes > target_bytes + 4 * GIB:
                    continue
                if vcpus + vm_type.vcpus > self.max_vcpus:
                    continue
                instance = VMInstance(
                    vm_id=next_id, vm_type=vm_type, arrival_s=now,
                    departure_s=now + vm_type.sample_lifetime_s(self.rng))
                next_id += 1
                running.append(instance)
                events.append(VMEvent(now, "arrive", instance))
                used += vm_type.memory_bytes
                vcpus += vm_type.vcpus
            samples.append(UtilizationSample(
                time_s=now, used_bytes=used, vcpus_used=vcpus))
        return AzureTrace(events=events, samples=samples,
                          capacity_bytes=self.capacity_bytes)
