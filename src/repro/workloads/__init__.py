"""Workload substrate.

The paper evaluates GreenDIMM with SPEC CPU2006/2017, HiBench, cloudsuite,
and the Microsoft Azure VM trace.  None of those binaries or traces can be
shipped, so this package provides synthetic equivalents that expose the
two things GreenDIMM actually observes: (1) the memory-footprint-vs-time
behaviour that drives on/off-lining, and (2) the memory intensity (MPKI /
bandwidth / locality) that drives performance and dynamic DRAM power.
Profiles are calibrated against the paper's per-application data
(Table 2, Figures 3 and 6-11); the Azure generator is calibrated to the
utilization statistics of Figure 1.
"""

from repro.workloads.trace import FootprintTrace, AccessTraceGenerator, oscillating_trace
from repro.workloads.profiles import WorkloadProfile, Suite
from repro.workloads.spec import SPEC_PROFILES, spec_profile, high_mpki_spec2006
from repro.workloads.datacenter import DATACENTER_PROFILES, datacenter_profile
from repro.workloads.registry import all_profiles, profile_by_name, EVALUATION_SET
from repro.workloads.azure import (
    AzureVMCatalog,
    AzureTraceGenerator,
    VMEvent,
    VMType,
    UtilizationSample,
)

__all__ = [
    "FootprintTrace",
    "AccessTraceGenerator",
    "oscillating_trace",
    "WorkloadProfile",
    "Suite",
    "SPEC_PROFILES",
    "spec_profile",
    "high_mpki_spec2006",
    "DATACENTER_PROFILES",
    "datacenter_profile",
    "all_profiles",
    "profile_by_name",
    "EVALUATION_SET",
    "AzureVMCatalog",
    "AzureTraceGenerator",
    "VMEvent",
    "VMType",
    "UtilizationSample",
]
