"""SPEC CPU2006 / CPU2017 synthetic profiles.

Footprint dynamics are calibrated so the GreenDIMM daemon reproduces the
paper's on/off-lining activity (Table 2: with 128MB blocks, mcf ~6
off-linings, gcc ~47, soplex ~36, lbm ~30, libquantum ~37, povray ~40).
The footprint traces bundle the application's anonymous memory together
with the page-cache/temporary churn the real runs exhibit — the paper's
libquantum has a 64MB resident footprint yet still drives ~37 off-lining
events, so the churn component clearly dominates the dynamics.

Memory-intensity numbers (MPKI, bandwidth, row locality, IPC) are typical
published characterizations of the benchmarks, not measurements.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.units import GIB, MIB
from repro.workloads.profiles import Suite, WorkloadProfile
from repro.workloads.trace import FootprintTrace, oscillating_trace

_RUN_S = 600.0


def _mcf_trace() -> FootprintTrace:
    """Ramp to the full 1.7GB working set, hold, release part at the end."""
    return FootprintTrace.of([
        (0.0, 200 * MIB),
        (30.0, int(1.7 * GIB)),
        (560.0, int(1.7 * GIB)),
        (575.0, 960 * MIB),
        (_RUN_S, 960 * MIB),
    ])


SPEC_PROFILES: Dict[str, WorkloadProfile] = {}


def _add(profile: WorkloadProfile) -> None:
    if profile.name in SPEC_PROFILES:
        raise ConfigurationError(f"duplicate profile {profile.name}")
    SPEC_PROFILES[profile.name] = profile


_add(WorkloadProfile(
    name="429.mcf", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=_mcf_trace(), mpki=65.0, base_ipc=0.35,
    bandwidth_demand_bytes_per_s=2.5e9, row_hit_rate=0.35))

_add(WorkloadProfile(
    name="403.gcc", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 400 * MIB, 1630 * MIB, cycles=5),
    mpki=6.0, base_ipc=1.1, bandwidth_demand_bytes_per_s=0.8e9,
    row_hit_rate=0.60))

_add(WorkloadProfile(
    name="450.soplex", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 300 * MIB, 1480 * MIB, cycles=4),
    mpki=25.0, base_ipc=0.6, bandwidth_demand_bytes_per_s=1.8e9,
    row_hit_rate=0.50))

_add(WorkloadProfile(
    name="470.lbm", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 420 * MIB, 1700 * MIB, cycles=3),
    mpki=30.0, base_ipc=0.55, bandwidth_demand_bytes_per_s=3.2e9,
    row_hit_rate=0.75))

_add(WorkloadProfile(
    name="462.libquantum", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 64 * MIB, 1270 * MIB, cycles=4),
    mpki=25.0, base_ipc=0.7, bandwidth_demand_bytes_per_s=2.8e9,
    row_hit_rate=0.85))

_add(WorkloadProfile(
    name="453.povray", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 30 * MIB, 1340 * MIB, cycles=4),
    mpki=0.3, base_ipc=1.9, bandwidth_demand_bytes_per_s=0.1e9,
    row_hit_rate=0.70))

_add(WorkloadProfile(
    name="500.perlbench", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 300 * MIB, 1550 * MIB, cycles=7),
    mpki=1.2, base_ipc=1.7, bandwidth_demand_bytes_per_s=0.3e9,
    row_hit_rate=0.65))

_add(WorkloadProfile(
    name="502.gcc", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 500 * MIB, 1850 * MIB, cycles=9),
    mpki=7.0, base_ipc=1.0, bandwidth_demand_bytes_per_s=0.9e9,
    row_hit_rate=0.60))

_add(WorkloadProfile(
    name="505.mcf", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=FootprintTrace.of([
        (0.0, 300 * MIB), (40.0, int(3.5 * GIB)),
        (550.0, int(3.5 * GIB)), (570.0, int(2.0 * GIB)),
        (_RUN_S, int(2.0 * GIB))]),
    mpki=40.0, base_ipc=0.45, bandwidth_demand_bytes_per_s=2.2e9,
    row_hit_rate=0.40))

_add(WorkloadProfile(
    name="519.lbm", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 400 * MIB, 1620 * MIB, cycles=5),
    mpki=35.0, base_ipc=0.5, bandwidth_demand_bytes_per_s=3.5e9,
    row_hit_rate=0.78))

_add(WorkloadProfile(
    name="523.xalancbmk", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 250 * MIB, 1420 * MIB, cycles=6),
    mpki=3.0, base_ipc=1.4, bandwidth_demand_bytes_per_s=0.5e9,
    row_hit_rate=0.62))


# --- the rest of the SPEC2006 set -------------------------------------------

_add(WorkloadProfile(
    name="401.bzip2", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 200 * MIB, 870 * MIB, cycles=6),
    mpki=3.5, base_ipc=1.3, bandwidth_demand_bytes_per_s=0.6e9,
    row_hit_rate=0.58))

_add(WorkloadProfile(
    name="433.milc", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 500 * MIB, 720 * MIB, cycles=3),
    mpki=28.0, base_ipc=0.55, bandwidth_demand_bytes_per_s=2.6e9,
    row_hit_rate=0.68))

_add(WorkloadProfile(
    name="437.leslie3d", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 120 * MIB, 200 * MIB, cycles=2),
    mpki=21.0, base_ipc=0.7, bandwidth_demand_bytes_per_s=2.0e9,
    row_hit_rate=0.72))

_add(WorkloadProfile(
    name="456.hmmer", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 30 * MIB, 64 * MIB, cycles=2),
    mpki=0.8, base_ipc=2.0, bandwidth_demand_bytes_per_s=0.15e9,
    row_hit_rate=0.80))

_add(WorkloadProfile(
    name="458.sjeng", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 150 * MIB, 180 * MIB, cycles=2),
    mpki=0.4, base_ipc=1.6, bandwidth_demand_bytes_per_s=0.1e9,
    row_hit_rate=0.55))

_add(WorkloadProfile(
    name="459.GemsFDTD", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 500 * MIB, 850 * MIB, cycles=3),
    mpki=24.0, base_ipc=0.6, bandwidth_demand_bytes_per_s=2.4e9,
    row_hit_rate=0.70))

_add(WorkloadProfile(
    name="464.h264ref", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 40 * MIB, 110 * MIB, cycles=4),
    mpki=0.6, base_ipc=1.9, bandwidth_demand_bytes_per_s=0.2e9,
    row_hit_rate=0.75))

_add(WorkloadProfile(
    name="471.omnetpp", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 130 * MIB, 175 * MIB, cycles=2),
    mpki=13.0, base_ipc=0.8, bandwidth_demand_bytes_per_s=1.0e9,
    row_hit_rate=0.40))

_add(WorkloadProfile(
    name="473.astar", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 180 * MIB, 330 * MIB, cycles=3),
    mpki=7.5, base_ipc=0.9, bandwidth_demand_bytes_per_s=0.8e9,
    row_hit_rate=0.45))

_add(WorkloadProfile(
    name="482.sphinx3", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 35 * MIB, 45 * MIB, cycles=2),
    mpki=11.0, base_ipc=0.9, bandwidth_demand_bytes_per_s=1.1e9,
    row_hit_rate=0.73))

_add(WorkloadProfile(
    name="483.xalancbmk", suite=Suite.SPEC2006, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 200 * MIB, 430 * MIB, cycles=4),
    mpki=9.0, base_ipc=0.9, bandwidth_demand_bytes_per_s=0.9e9,
    row_hit_rate=0.50))

# --- the rest of the SPEC2017 set -----------------------------------------------

_add(WorkloadProfile(
    name="503.bwaves", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 700 * MIB, 1400 * MIB, cycles=3),
    mpki=18.0, base_ipc=0.8, bandwidth_demand_bytes_per_s=2.1e9,
    row_hit_rate=0.78))

_add(WorkloadProfile(
    name="520.omnetpp", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 180 * MIB, 250 * MIB, cycles=2),
    mpki=14.0, base_ipc=0.7, bandwidth_demand_bytes_per_s=1.1e9,
    row_hit_rate=0.38))

_add(WorkloadProfile(
    name="525.x264", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 60 * MIB, 150 * MIB, cycles=5),
    mpki=0.9, base_ipc=2.1, bandwidth_demand_bytes_per_s=0.3e9,
    row_hit_rate=0.80))

_add(WorkloadProfile(
    name="531.deepsjeng", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 600 * MIB, 700 * MIB, cycles=2),
    mpki=1.1, base_ipc=1.5, bandwidth_demand_bytes_per_s=0.25e9,
    row_hit_rate=0.55))

_add(WorkloadProfile(
    name="541.leela", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 20 * MIB, 40 * MIB, cycles=2),
    mpki=0.3, base_ipc=1.8, bandwidth_demand_bytes_per_s=0.08e9,
    row_hit_rate=0.70))

_add(WorkloadProfile(
    name="548.exchange2", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 60 * MIB, 80 * MIB, cycles=2),
    mpki=0.05, base_ipc=2.4, bandwidth_demand_bytes_per_s=0.02e9,
    row_hit_rate=0.85))

_add(WorkloadProfile(
    name="549.fotonik3d", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 500 * MIB, 850 * MIB, cycles=3),
    mpki=22.0, base_ipc=0.7, bandwidth_demand_bytes_per_s=2.3e9,
    row_hit_rate=0.82))

_add(WorkloadProfile(
    name="554.roms", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 400 * MIB, 1000 * MIB, cycles=3),
    mpki=15.0, base_ipc=0.85, bandwidth_demand_bytes_per_s=1.8e9,
    row_hit_rate=0.76))

_add(WorkloadProfile(
    name="557.xz", suite=Suite.SPEC2017, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, 400 * MIB, 1150 * MIB, cycles=4),
    mpki=4.5, base_ipc=1.1, bandwidth_demand_bytes_per_s=0.7e9,
    row_hit_rate=0.48))


def spec_profile(name: str) -> WorkloadProfile:
    """Look up one SPEC profile by its paper-style name (e.g. '429.mcf')."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SPEC profile {name!r}; known: {sorted(SPEC_PROFILES)}"
        ) from None


def high_mpki_spec2006() -> List[WorkloadProfile]:
    """The high-MPKI SPEC2006 set of the Figure 3 interleaving study."""
    return [SPEC_PROFILES[n] for n in
            ("429.mcf", "450.soplex", "470.lbm", "462.libquantum")]


#: The six applications of the block-size and failure studies (Sec. 5).
BLOCKSIZE_STUDY_SET = ("429.mcf", "403.gcc", "450.soplex", "470.lbm",
                       "462.libquantum", "453.povray")
