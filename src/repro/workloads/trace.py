"""Footprint traces and synthetic access-trace generation."""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.memctrl.request import AccessType, MemoryRequest


@dataclass(frozen=True)
class FootprintTrace:
    """Piecewise-linear memory footprint over time.

    ``points`` is a sorted sequence of (time_s, bytes); queries between
    points interpolate linearly, queries beyond the ends clamp.
    """

    points: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("trace needs at least one point")
        times = tuple(t for t, _ in self.points)
        if list(times) != sorted(times):
            raise ConfigurationError("trace points must be time sorted")
        # The trace is immutable, so the query helpers' search arrays are
        # computed once here instead of being rebuilt on every at() /
        # constant_until() call (the simulator queries each footprint
        # twice per stepped epoch).  ``_run_ends`` holds the last point
        # of every flat run that is followed by a value change — the
        # only finite values constant_until() can return.
        object.__setattr__(self, "_times", times)
        object.__setattr__(self, "_run_ends", tuple(
            times[k] for k in range(len(times) - 1)
            if self.points[k][1] != self.points[k + 1][1]))

    @classmethod
    def of(cls, points: Sequence[Tuple[float, float]]) -> "FootprintTrace":
        return cls(tuple((float(t), int(b)) for t, b in points))

    @property
    def duration_s(self) -> float:
        return self.points[-1][0]

    @property
    def peak_bytes(self) -> int:
        return max(b for _, b in self.points)

    def at(self, time_s: float) -> int:
        """Footprint in bytes at *time_s* (clamped, interpolated)."""
        times: Tuple[float, ...] = self._times  # type: ignore[attr-defined]
        if time_s <= times[0]:
            return self.points[0][1]
        if time_s >= times[-1]:
            return self.points[-1][1]
        i = bisect.bisect_right(times, time_s)
        t0, b0 = self.points[i - 1]
        t1, b1 = self.points[i]
        frac = (time_s - t0) / (t1 - t0)
        return int(b0 + (b1 - b0) * frac)

    def constant_until(self, time_s: float) -> float:
        """End of the flat run containing *time_s* (``inf`` when it never
        changes again, *time_s* itself when the trace is ramping).

        The fast-forward layer may skip any query time ``u`` with
        ``time_s <= u < constant_until(time_s)`` knowing ``at(u)`` equals
        ``at(time_s)``; the bound itself also satisfies the equality when
        finite (it is the last point of the flat run).
        """
        times: Tuple[float, ...] = self._times  # type: ignore[attr-defined]
        if time_s >= times[-1]:
            return math.inf
        i = bisect.bisect_right(times, time_s)
        if i > 0 and self.points[i - 1][1] != self.points[i][1]:
            return time_s  # inside a ramp: no flat run to skip
        # Not ramping, so the answer is the end of the flat run holding
        # time_s: the first run end strictly after it.  Every run end at
        # index < i is <= time_s and every one at index >= i is > time_s
        # (bisect_right), so this bisect returns exactly the point the
        # old linear walk from i stopped at.
        run_ends: Tuple[float, ...] = self._run_ends  # type: ignore[attr-defined]
        j = bisect.bisect_right(run_ends, time_s)
        if j == len(run_ends):
            return math.inf
        return run_ends[j]

    def ramping_at(self, time_s: float) -> bool:
        """True when :meth:`constant_until` would veto (return *time_s*)."""
        times: Tuple[float, ...] = self._times  # type: ignore[attr-defined]
        if time_s >= times[-1]:
            return False
        i = bisect.bisect_right(times, time_s)
        return i > 0 and self.points[i - 1][1] != self.points[i][1]

    def flat_run_ends(self, before_s: float = math.inf) -> Tuple[float, ...]:
        """Every finite value :meth:`constant_until` can return (< *before_s*).

        These are the trace's quiescence-breaking timestamps: between two
        consecutive run ends the footprint either ramps (vetoed by
        :meth:`ramping_at`) or stays constant.  Sources feed them into an
        :class:`~repro.sim.calendar.EventCalendar` so the per-epoch
        horizon query is one heap peek instead of a trace scan.
        """
        run_ends: Tuple[float, ...] = self._run_ends  # type: ignore[attr-defined]
        return tuple(t for t in run_ends if t < before_s)

    def scaled(self, factor: float) -> "FootprintTrace":
        return FootprintTrace(tuple((t, int(b * factor)) for t, b in self.points))


def oscillating_trace(duration_s: float, low_bytes: int, high_bytes: int,
                      cycles: int, ramp_s: float = 4.0) -> FootprintTrace:
    """A footprint that ramps to *high*, drops to *low*, repeatedly.

    Models phase-structured applications (gcc compiling many units,
    soplex solving successive LPs): each cycle allocates up to the high
    watermark and releases back to the low one — the dynamics that drive
    GreenDIMM's on/off-lining counts (Table 2).
    """
    if cycles <= 0 or high_bytes <= low_bytes:
        raise ConfigurationError("need cycles > 0 and high > low")
    period = duration_s / cycles
    if ramp_s * 2 >= period:
        ramp_s = period / 4
    points: List[Tuple[float, int]] = [(0.0, low_bytes)]
    for c in range(cycles):
        start = c * period
        points.append((start + ramp_s, high_bytes))
        points.append((start + period - ramp_s, high_bytes))
        points.append((start + period, low_bytes))
    return FootprintTrace.of(points)


class AccessTraceGenerator:
    """Synthetic 64B-request streams for the memory controller.

    Models a footprint-limited access pattern with tunable row locality:
    with probability ``locality`` the next access continues sequentially
    from the previous one (same DRAM row), otherwise it jumps uniformly
    within the footprint.  Request arrivals are Poisson at ``rate_per_s``.
    """

    LINE = 64

    def __init__(self, footprint_bytes: int, rate_per_s: float,
                 locality: float = 0.6, write_fraction: float = 0.33,
                 region_offset: int = 0,
                 rng: Optional[random.Random] = None):
        if footprint_bytes < self.LINE:
            raise ConfigurationError("footprint smaller than one line")
        if not 0.0 <= locality <= 1.0:
            raise ConfigurationError("locality must be in [0, 1]")
        if rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        self.footprint_lines = footprint_bytes // self.LINE
        self.rate_per_s = rate_per_s
        self.locality = locality
        self.write_fraction = write_fraction
        self.region_offset = region_offset
        self.rng = rng or random.Random(1234)
        self._cursor = 0

    def _next_line(self) -> int:
        if self.rng.random() < self.locality:
            self._cursor = (self._cursor + 1) % self.footprint_lines
        else:
            self._cursor = self.rng.randrange(self.footprint_lines)
        return self._cursor

    def generate(self, count: int) -> List[MemoryRequest]:
        """Generate *count* requests with Poisson arrivals."""
        mean_gap_ns = 1e9 / self.rate_per_s
        now = 0.0
        requests = []
        for _ in range(count):
            now += self.rng.expovariate(1.0) * mean_gap_ns
            access = (AccessType.WRITE
                      if self.rng.random() < self.write_fraction
                      else AccessType.READ)
            address = self.region_offset + self._next_line() * self.LINE
            requests.append(MemoryRequest(address=address, access=access,
                                          arrival_ns=now))
        return requests


def merged_streams(generators: Sequence[AccessTraceGenerator],
                   count_each: int) -> List[MemoryRequest]:
    """Interleave several generators' streams by arrival time.

    Used to model N copies of a benchmark (the paper runs 16 copies of
    mcf for its busy-power measurements).
    """
    out: List[MemoryRequest] = []
    for gen in generators:
        out.extend(gen.generate(count_each))
    out.sort(key=lambda r: r.arrival_ns)
    return out
