"""HiBench and cloudsuite data-center workload profiles.

The paper's data-center set shows larger GreenDIMM savings than SPEC
(60% vs 38% DRAM energy, Section 6.2) because these services leave more
capacity idle and keep steadier footprints; the serving workloads are
latency-critical, and the paper verifies their 95th/99th-percentile
latency is unaffected.  Footprints here are sized against the paper's
64GB evaluation machine.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.units import GIB
from repro.workloads.profiles import Suite, WorkloadProfile
from repro.workloads.trace import FootprintTrace, oscillating_trace

_RUN_S = 600.0

DATACENTER_PROFILES: Dict[str, WorkloadProfile] = {}


def _add(profile: WorkloadProfile) -> None:
    if profile.name in DATACENTER_PROFILES:
        raise ConfigurationError(f"duplicate profile {profile.name}")
    DATACENTER_PROFILES[profile.name] = profile


def _steady(level_bytes: int, ramp_s: float = 60.0) -> FootprintTrace:
    """Serving workloads: ramp up once, then hold a constant footprint."""
    return FootprintTrace.of([
        (0.0, level_bytes // 8),
        (ramp_s, level_bytes),
        (_RUN_S, level_bytes),
    ])


_add(WorkloadProfile(
    name="ml_linear", suite=Suite.HIBENCH, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, int(4 * GIB), int(11 * GIB), cycles=4),
    mpki=22.0, base_ipc=0.7, bandwidth_demand_bytes_per_s=3.0e9,
    row_hit_rate=0.70, mergeable_fraction=0.3, duplicate_fraction=0.15))

_add(WorkloadProfile(
    name="ml_kmeans", suite=Suite.HIBENCH, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, int(3 * GIB), int(8 * GIB), cycles=5),
    mpki=15.0, base_ipc=0.9, bandwidth_demand_bytes_per_s=2.2e9,
    row_hit_rate=0.65, mergeable_fraction=0.3, duplicate_fraction=0.12))

_add(WorkloadProfile(
    name="wordcount", suite=Suite.HIBENCH, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, int(2 * GIB), int(6 * GIB), cycles=6),
    mpki=8.0, base_ipc=1.2, bandwidth_demand_bytes_per_s=1.2e9,
    row_hit_rate=0.72, mergeable_fraction=0.2, duplicate_fraction=0.10))

_add(WorkloadProfile(
    name="data-caching", suite=Suite.CLOUDSUITE, duration_s=_RUN_S,
    footprint=_steady(int(10 * GIB)), mpki=5.0, base_ipc=1.1,
    bandwidth_demand_bytes_per_s=1.0e9, row_hit_rate=0.45,
    cpu_utilization=0.6, mergeable_fraction=0.4, duplicate_fraction=0.20,
    latency_critical=True))

_add(WorkloadProfile(
    name="data-serving", suite=Suite.CLOUDSUITE, duration_s=_RUN_S,
    footprint=_steady(int(8 * GIB)), mpki=6.5, base_ipc=1.0,
    bandwidth_demand_bytes_per_s=1.1e9, row_hit_rate=0.48,
    cpu_utilization=0.65, mergeable_fraction=0.4, duplicate_fraction=0.18,
    latency_critical=True))

_add(WorkloadProfile(
    name="web-serving", suite=Suite.CLOUDSUITE, duration_s=_RUN_S,
    footprint=_steady(int(5 * GIB)), mpki=3.0, base_ipc=1.3,
    bandwidth_demand_bytes_per_s=0.6e9, row_hit_rate=0.55,
    cpu_utilization=0.55, mergeable_fraction=0.5, duplicate_fraction=0.25,
    latency_critical=True))

_add(WorkloadProfile(
    name="graph-analytics", suite=Suite.CLOUDSUITE, duration_s=_RUN_S,
    footprint=oscillating_trace(_RUN_S, int(3 * GIB), int(9 * GIB), cycles=3),
    mpki=28.0, base_ipc=0.5, bandwidth_demand_bytes_per_s=2.8e9,
    row_hit_rate=0.35, mergeable_fraction=0.2, duplicate_fraction=0.10))


def datacenter_profile(name: str) -> WorkloadProfile:
    """Look up one data-center profile by name."""
    try:
        return DATACENTER_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown data-center profile {name!r}; "
            f"known: {sorted(DATACENTER_PROFILES)}") from None
