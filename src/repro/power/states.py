"""DRAM power states and legal transitions.

The rank-granularity states (Section 2.2) are what commodity DDR4 offers:

* ``ACTIVE_STANDBY`` / ``PRECHARGE_STANDBY`` — fully on, rows open/closed.
* ``POWER_DOWN`` — CKE low, clock disabled, I/O off; ~18ns exit (tXP).
* ``SELF_REFRESH`` — DLL also off, DRAM refreshes itself; ~768ns exit (tXS).

GreenDIMM adds ``DEEP_POWER_DOWN`` *at the sub-array granularity*
(Section 4.3): refresh is stopped and the peripheral/IO circuits of the
gated sub-arrays are power-gated.  Because the DLL stays on (only part of
the device is gated), the exit latency is bounded by the power-down exit.
In GreenDIMM the exit latency is additionally *off the critical path*: the
OS only on-lines a block after polling that the sub-arrays have woken up,
so no demand request ever pays it.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

from repro.errors import PowerStateError


class PowerState(enum.Enum):
    """Power state of a rank — or, for DEEP_POWER_DOWN, of a sub-array."""

    ACTIVE_STANDBY = "active_standby"
    PRECHARGE_STANDBY = "precharge_standby"
    POWER_DOWN = "power_down"
    SELF_REFRESH = "self_refresh"
    DEEP_POWER_DOWN = "deep_power_down"


#: Exit latency to first command, nanoseconds (Section 2.2 / 4.3).
_EXIT_LATENCY_NS: Dict[PowerState, float] = {
    PowerState.ACTIVE_STANDBY: 0.0,
    PowerState.PRECHARGE_STANDBY: 0.0,
    PowerState.POWER_DOWN: 18.0,
    PowerState.SELF_REFRESH: 768.0,
    # Bounded by the power-down exit because the DLL is never turned off.
    PowerState.DEEP_POWER_DOWN: 18.0,
}

#: States in which a rank cannot serve requests without waking up.
_LOW_POWER: FrozenSet[PowerState] = frozenset(
    {PowerState.POWER_DOWN, PowerState.SELF_REFRESH, PowerState.DEEP_POWER_DOWN}
)

#: Legal state transitions for a rank-level state machine.  Low-power
#: states are entered from precharge standby and exit back to it.
ALLOWED_TRANSITIONS: Dict[PowerState, FrozenSet[PowerState]] = {
    PowerState.ACTIVE_STANDBY: frozenset(
        {PowerState.PRECHARGE_STANDBY, PowerState.ACTIVE_STANDBY}
    ),
    PowerState.PRECHARGE_STANDBY: frozenset(
        {
            PowerState.ACTIVE_STANDBY,
            PowerState.PRECHARGE_STANDBY,
            PowerState.POWER_DOWN,
            PowerState.SELF_REFRESH,
            PowerState.DEEP_POWER_DOWN,
        }
    ),
    PowerState.POWER_DOWN: frozenset(
        {PowerState.PRECHARGE_STANDBY, PowerState.POWER_DOWN}
    ),
    PowerState.SELF_REFRESH: frozenset(
        {PowerState.PRECHARGE_STANDBY, PowerState.SELF_REFRESH}
    ),
    PowerState.DEEP_POWER_DOWN: frozenset(
        {PowerState.PRECHARGE_STANDBY, PowerState.DEEP_POWER_DOWN}
    ),
}


def exit_latency_ns(state: PowerState) -> float:
    """Wake-up latency from *state* to the first servable command."""
    return _EXIT_LATENCY_NS[state]


def is_low_power(state: PowerState) -> bool:
    """True when a rank in *state* must wake before serving a request."""
    return state in _LOW_POWER


def check_transition(current: PowerState, target: PowerState) -> None:
    """Raise :class:`PowerStateError` if *current* -> *target* is illegal."""
    if target not in ALLOWED_TRANSITIONS[current]:
        raise PowerStateError(f"illegal transition {current.value} -> {target.value}")


def refreshes_in_state(state: PowerState) -> bool:
    """Whether DRAM contents are retained (refreshed) in *state*.

    Deep power-down does *not* refresh — which is safe in GreenDIMM only
    because the OS has off-lined the backing physical range first.
    """
    return state is not PowerState.DEEP_POWER_DOWN
