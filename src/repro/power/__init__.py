"""DRAM and system power models.

The models follow the JEDEC/Micron IDD structure: background power is set
by the rank's power state, refresh power by the tRFC/tREFI duty cycle, and
dynamic power by activation and read/write rates.  Constants are calibrated
against the paper's own measurements (Figure 2, Table 1): ~18W idle / ~26W
busy at 256GB, ~9W busy at 64GB, ~91W busy at 1TB, with the background
fraction growing from ~44% to ~78% across that range.
"""

from repro.power.states import PowerState, exit_latency_ns, is_low_power, ALLOWED_TRANSITIONS
from repro.power.idd import IDDValues, AccessEnergies, device_power_table
from repro.power.model import (
    DevicePowerModel,
    DRAMPowerModel,
    DRAMPowerBreakdown,
    RankPowerProfile,
    uniform_profile,
)
from repro.power.system import SystemPowerModel, CPUPowerModel
from repro.power.cacti import SubarrayGatingCost, estimate_gating_cost

__all__ = [
    "PowerState",
    "exit_latency_ns",
    "is_low_power",
    "ALLOWED_TRANSITIONS",
    "IDDValues",
    "AccessEnergies",
    "device_power_table",
    "DevicePowerModel",
    "DRAMPowerModel",
    "DRAMPowerBreakdown",
    "RankPowerProfile",
    "uniform_profile",
    "SystemPowerModel",
    "CPUPowerModel",
    "SubarrayGatingCost",
    "estimate_gating_cost",
]
