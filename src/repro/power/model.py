"""DRAM power model: background + refresh + dynamic, with sub-array DPD.

The model is evaluated per rank over an interval described by a
:class:`RankPowerProfile` (state residencies, achieved bandwidth, and the
fraction of the rank's sub-arrays held in GreenDIMM's deep power-down
state) and aggregated over the topology.

The key GreenDIMM term: a sub-array in deep power-down stops being
refreshed and has its peripheral/IO circuits power-gated, so it sheds its
proportional share of background *and* refresh power, down to a small
gate-leakage residual (``DPD_RESIDUAL_FRACTION``).  Spare repair rows
(~2%) are never gated (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro import perfcounters
from repro.dram.organization import MemoryOrganization
from repro.dram.timing import DDR4Timing, DDR4_2133, DDR4_2133_8GB
from repro.errors import ConfigurationError
from repro.power.idd import (
    DPD_RESIDUAL_FRACTION,
    SPARE_ROW_FRACTION,
    AccessEnergies,
    IDDValues,
    _energies_for,
    _idd_for,
)
from repro.power.states import PowerState

#: Per-access I/O termination energy added for each *other* rank sharing
#: the channel (on-die termination on non-target ranks).
ODT_ENERGY_PER_EXTRA_RANK_J = 1.2e-9

_ACCESS_BYTES = 64


@dataclass(frozen=True)
class RankPowerProfile:
    """How one rank spent an interval.

    ``state_residency`` maps rank power states to time fractions and must
    sum to 1.  ``dpd_fraction`` is the fraction of the rank's sub-arrays
    sitting in GreenDIMM deep power-down throughout the interval; it
    applies regardless of the rank state because the gated sub-arrays stay
    gated while the rest of the rank serves traffic.
    """

    state_residency: Dict[PowerState, float] = field(
        default_factory=lambda: {PowerState.PRECHARGE_STANDBY: 1.0})
    bandwidth_bytes_per_s: float = 0.0
    write_fraction: float = 0.33
    row_miss_rate: float = 0.5
    dpd_fraction: float = 0.0

    def __post_init__(self) -> None:
        total = sum(self.state_residency.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(f"state residencies sum to {total}, not 1")
        if any(v < -1e-12 for v in self.state_residency.values()):
            raise ConfigurationError("negative residency")
        if not 0.0 <= self.dpd_fraction <= 1.0:
            raise ConfigurationError("dpd_fraction must be in [0, 1]")
        if self.bandwidth_bytes_per_s < 0:
            raise ConfigurationError("bandwidth must be non-negative")


def uniform_profile(organization: MemoryOrganization,
                    total_bandwidth_bytes_per_s: float = 0.0,
                    state_residency: Optional[Dict[PowerState, float]] = None,
                    row_miss_rate: float = 0.5,
                    dpd_fraction: float = 0.0) -> "list[RankPowerProfile]":
    """Spread *total_bandwidth* evenly over all ranks (interleaved traffic)."""
    per_rank = total_bandwidth_bytes_per_s / organization.total_ranks
    if state_residency is None:
        state_residency = {PowerState.PRECHARGE_STANDBY: 1.0}
    profile = RankPowerProfile(state_residency=dict(state_residency),
                               bandwidth_bytes_per_s=per_rank,
                               row_miss_rate=row_miss_rate,
                               dpd_fraction=dpd_fraction)
    return [profile] * organization.total_ranks


@dataclass(frozen=True)
class DRAMPowerBreakdown:
    """Average power over an interval, by component, in watts."""

    background_w: float
    refresh_w: float
    activate_w: float
    rw_w: float
    io_w: float

    @property
    def total_w(self) -> float:
        return (self.background_w + self.refresh_w + self.activate_w
                + self.rw_w + self.io_w)

    @property
    def static_w(self) -> float:
        """Background + refresh: the power GreenDIMM attacks."""
        return self.background_w + self.refresh_w

    @property
    def background_fraction(self) -> float:
        """Fraction of total power that is background+refresh."""
        total = self.total_w
        return self.static_w / total if total else 0.0

    def __add__(self, other: "DRAMPowerBreakdown") -> "DRAMPowerBreakdown":
        return DRAMPowerBreakdown(
            background_w=self.background_w + other.background_w,
            refresh_w=self.refresh_w + other.refresh_w,
            activate_w=self.activate_w + other.activate_w,
            rw_w=self.rw_w + other.rw_w,
            io_w=self.io_w + other.io_w,
        )

    def scaled(self, factor: float) -> "DRAMPowerBreakdown":
        return DRAMPowerBreakdown(
            background_w=self.background_w * factor,
            refresh_w=self.refresh_w * factor,
            activate_w=self.activate_w * factor,
            rw_w=self.rw_w * factor,
            io_w=self.io_w * factor,
        )


ZERO_BREAKDOWN = DRAMPowerBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)

#: Bound on the busy-power memo; reached only by sweeps over thousands
#: of distinct operating points, at which point the dict is cleared.
_BUSY_CACHE_MAX = 4096


@dataclass
class PowerCacheStats:
    """Hit/miss counters of one model's busy-power memo."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DevicePowerModel:
    """Power of a single DRAM device given its IDD table."""

    def __init__(self, idd: IDDValues, timing: DDR4Timing):
        self.idd = idd
        self.timing = timing

    def background_power_w(self, state: PowerState) -> float:
        """Standby power in *state*, excluding refresh."""
        current = {
            PowerState.ACTIVE_STANDBY: self.idd.idd3n,
            PowerState.PRECHARGE_STANDBY: self.idd.idd2n,
            PowerState.POWER_DOWN: self.idd.idd2p,
            PowerState.SELF_REFRESH: self.idd.idd6,
            # Chip-global residual only; per-sub-array DPD accounting is
            # handled by the rank model's dpd_fraction.
            PowerState.DEEP_POWER_DOWN: self.idd.idd6 * DPD_RESIDUAL_FRACTION,
        }[state]
        return self.idd.vdd * current

    def refresh_power_w(self, state: PowerState) -> float:
        """Average auto-refresh power (0 in self/deep states: IDD6 covers
        self-refresh internally; deep power-down does not refresh)."""
        if state in (PowerState.SELF_REFRESH, PowerState.DEEP_POWER_DOWN):
            return 0.0
        burst = max(self.idd.idd5b - self.idd.idd2n, 0.0)
        return self.idd.vdd * burst * self.timing.refresh_duty_cycle


class DRAMPowerModel:
    """Power of the whole main memory for a set of rank profiles."""

    def __init__(self, organization: MemoryOrganization,
                 timing: Optional[DDR4Timing] = None,
                 idd: Optional[IDDValues] = None,
                 energies: Optional[AccessEnergies] = None):
        self.organization = organization
        if timing is None:
            density_gb = organization.device.density_bits / (1 << 30)
            timing = DDR4_2133 if density_gb <= 4 else DDR4_2133_8GB
        self.timing = timing
        self.idd = idd or _idd_for(organization.device)
        self.energies = energies or _energies_for(organization.device)
        self.device_model = DevicePowerModel(self.idd, timing)
        self._busy_cache: Dict[Tuple[float, float, float, float],
                               DRAMPowerBreakdown] = {}
        self.cache_stats = PowerCacheStats()

    # --- checkpoint/restore -----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The busy-power memo and its hit/miss counters.  The memo's
        contents are pure in their keys, but the eviction-at-capacity
        behaviour makes the *population* part of the deterministic
        trajectory, so it is carried across a restore."""
        return {"busy_cache": self._busy_cache,
                "cache_stats": self.cache_stats}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._busy_cache = state["busy_cache"]
        self.cache_stats = state["cache_stats"]

    # --- rank-level -------------------------------------------------------

    def _dpd_scale(self, dpd_fraction: float) -> float:
        """Multiplier on background/refresh given the gated fraction."""
        effective = dpd_fraction * (1.0 - SPARE_ROW_FRACTION)
        return 1.0 - effective * (1.0 - DPD_RESIDUAL_FRACTION)

    def rank_power(self, profile: RankPowerProfile) -> DRAMPowerBreakdown:
        """Average power of one rank over the profiled interval."""
        devices = self.organization.devices_per_rank
        background = 0.0
        refresh = 0.0
        for state, residency in profile.state_residency.items():
            background += residency * self.device_model.background_power_w(state)
            refresh += residency * self.device_model.refresh_power_w(state)
        scale = self._dpd_scale(profile.dpd_fraction)
        background *= devices * scale
        refresh *= devices * scale

        accesses_per_s = profile.bandwidth_bytes_per_s / _ACCESS_BYTES
        activate = accesses_per_s * profile.row_miss_rate * self.energies.act_j
        rw = accesses_per_s * self.energies.rw_j
        io_per_access = (self.energies.io_j + ODT_ENERGY_PER_EXTRA_RANK_J
                         * (self.organization.ranks_per_channel - 1))
        io = accesses_per_s * io_per_access
        return DRAMPowerBreakdown(background_w=background, refresh_w=refresh,
                                  activate_w=activate, rw_w=rw, io_w=io)

    # --- system-level -------------------------------------------------------

    def power(self, profiles: Iterable[RankPowerProfile]) -> DRAMPowerBreakdown:
        """Aggregate power over per-rank profiles (must cover every rank)."""
        profiles = list(profiles)
        if len(profiles) != self.organization.total_ranks:
            raise ConfigurationError(
                f"expected {self.organization.total_ranks} rank profiles, "
                f"got {len(profiles)}")
        total = ZERO_BREAKDOWN
        for profile in profiles:
            total = total + self.rank_power(profile)
        return total

    def power_batched(self,
                      profiles: Iterable[RankPowerProfile]
                      ) -> DRAMPowerBreakdown:
        """Vectorized :meth:`power`: one rank evaluation per *distinct*
        profile object, folded in one pass.

        Bit-for-bit equal to the reference loop: distinct profiles are
        deduplicated by identity (:func:`uniform_profile` returns one
        shared instance per rank, so the usual epoch evaluates exactly
        one ``rank_power``), and the reduction uses
        ``np.add.accumulate``, whose strictly-sequential per-column fold
        reproduces the scalar ``total = total + rank_power(p)`` chain's
        float association exactly (``np.sum``'s pairwise reduction would
        not).
        """
        profiles = list(profiles)
        if len(profiles) != self.organization.total_ranks:
            raise ConfigurationError(
                f"expected {self.organization.total_ranks} rank profiles, "
                f"got {len(profiles)}")
        rows: Dict[int, Tuple[float, ...]] = {}
        components = np.empty((len(profiles), 5), dtype=np.float64)
        for index, profile in enumerate(profiles):
            row = rows.get(id(profile))
            if row is None:
                breakdown = self.rank_power(profile)
                row = (breakdown.background_w, breakdown.refresh_w,
                       breakdown.activate_w, breakdown.rw_w,
                       breakdown.io_w)
                rows[id(profile)] = row
            components[index] = row
        totals = np.add.accumulate(components, axis=0)[-1]
        return DRAMPowerBreakdown(
            background_w=float(totals[0]), refresh_w=float(totals[1]),
            activate_w=float(totals[2]), rw_w=float(totals[3]),
            io_w=float(totals[4]))

    def idle_power(self, dpd_fraction: float = 0.0) -> DRAMPowerBreakdown:
        """All ranks in precharge standby (the paper's 'idle' operating point)."""
        return self.power_batched(uniform_profile(self.organization,
                                                  dpd_fraction=dpd_fraction))

    def busy_power(self, total_bandwidth_bytes_per_s: float,
                   active_residency: float = 1.0,
                   row_miss_rate: float = 0.5,
                   dpd_fraction: float = 0.0) -> DRAMPowerBreakdown:
        """All ranks serving interleaved traffic at the given bandwidth."""
        residency = {
            PowerState.ACTIVE_STANDBY: active_residency,
            PowerState.PRECHARGE_STANDBY: 1.0 - active_residency,
        }
        return self.power_batched(uniform_profile(
            self.organization, total_bandwidth_bytes_per_s,
            state_residency=residency, row_miss_rate=row_miss_rate,
            dpd_fraction=dpd_fraction))

    def busy_power_cached(self, total_bandwidth_bytes_per_s: float,
                          active_residency: float = 1.0,
                          row_miss_rate: float = 0.5,
                          dpd_fraction: float = 0.0) -> DRAMPowerBreakdown:
        """Memoized :meth:`busy_power`.

        The evaluation is pure in its four float arguments (the daemon's
        gated fraction is the only system state, passed explicitly as
        ``dpd_fraction``) and :class:`DRAMPowerBreakdown` is frozen, so
        cached instances are safe to share.  The epoch simulator asks for
        the same operating point thousands of times per run; hits and
        misses land in :data:`repro.perfcounters.GLOBAL` for the metrics
        bus and in :attr:`cache_stats` for per-model inspection.
        """
        key = (total_bandwidth_bytes_per_s, active_residency,
               row_miss_rate, dpd_fraction)
        cached = self._busy_cache.get(key)
        if cached is not None:
            self.cache_stats.hits += 1
            perfcounters.GLOBAL.power_cache_hits += 1
            return cached
        result = self.busy_power(total_bandwidth_bytes_per_s,
                                 active_residency=active_residency,
                                 row_miss_rate=row_miss_rate,
                                 dpd_fraction=dpd_fraction)
        if len(self._busy_cache) >= _BUSY_CACHE_MAX:
            self._busy_cache.clear()
        self._busy_cache[key] = result
        self.cache_stats.misses += 1
        perfcounters.GLOBAL.power_cache_misses += 1
        return result
