"""IDD current tables and access energies per DRAM device type.

The numbers follow the structure of DDR4 datasheet IDD/IPP registers and
are calibrated (see ``tests/test_power_calibration.py``) so that the full
model reproduces the paper's measured operating points:

* 64GB of 4Gb x8 DIMMs: ~9W busy, ~44% background (Fig. 2 / Sec. 3.2);
* 256GB of 8Gb x4 DIMMs: ~18W idle, ~26W busy (Fig. 2);
* 1TB of 8Gb x8 DIMMs: ~91W busy, ~78% background (Sec. 3.2).

They are not meant to match any specific vendor part; the *structure*
(background set by state, refresh by tRFC/tREFI, dynamic by access rate)
is what carries the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.device import DRAMDeviceConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IDDValues:
    """Background/refresh currents of one device, in amperes at ``vdd``.

    Attributes mirror the JEDEC register names:

    * ``idd3n`` — active standby (a row open somewhere in the device);
    * ``idd2n`` — precharge standby (all rows closed);
    * ``idd2p`` — power-down (CKE low);
    * ``idd6``  — self-refresh (includes the internal refresh current);
    * ``idd5b`` — burst-refresh current while a REF command executes;
    * ``idd0``  — one-bank activate-precharge cycling.
    """

    vdd: float
    idd0: float
    idd2n: float
    idd2p: float
    idd3n: float
    idd4r: float
    idd4w: float
    idd5b: float
    idd6: float

    def __post_init__(self) -> None:
        if not self.idd2p < self.idd2n <= self.idd3n:
            raise ConfigurationError("expect idd2p < idd2n <= idd3n")
        if self.idd6 >= self.idd2n:
            raise ConfigurationError("self-refresh must draw less than standby")


@dataclass(frozen=True)
class AccessEnergies:
    """Dynamic energy per event, for one *rank* access (all devices).

    * ``act_j`` — one activate+precharge pair across the rank;
    * ``rw_j`` — one 64-byte read or write burst, array+datapath;
    * ``io_j`` — one 64-byte burst's I/O driver + termination energy
      (a per-channel cost, independent of the rank's device count).
    """

    act_j: float
    rw_j: float
    io_j: float

    def energy_per_access_j(self, row_miss_rate: float) -> float:
        """Average energy of one 64B access given the row-miss rate."""
        if not 0.0 <= row_miss_rate <= 1.0:
            raise ConfigurationError("row_miss_rate must be in [0, 1]")
        return self.rw_j + self.io_j + row_miss_rate * self.act_j


#: Residual power of a deep-power-down sub-array, as a fraction of its
#: normal share of background power (leakage through the power gates).
#: "Practically eliminates" (Sec. 4.3) -> a few percent survives.
DPD_RESIDUAL_FRACTION = 0.03

#: Fraction of rows held in separate always-on repair arrays (Sec. 6.1:
#: spare rows occupy <2% of rows and are never gated).
SPARE_ROW_FRACTION = 0.02


def _idd_for(device: DRAMDeviceConfig) -> IDDValues:
    """Background-current table keyed by device density and width."""
    density_gb = device.density_bits / (1 << 30)
    if device.width == 8 and density_gb == 4:
        return IDDValues(vdd=1.2, idd0=0.046, idd2n=0.0225, idd2p=0.011,
                         idd3n=0.030, idd4r=0.140, idd4w=0.130,
                         idd5b=0.190, idd6=0.0030)
    if device.width == 4 and density_gb == 8:
        return IDDValues(vdd=1.2, idd0=0.052, idd2n=0.0450, idd2p=0.020,
                         idd3n=0.056, idd4r=0.110, idd4w=0.100,
                         idd5b=0.280, idd6=0.0052)
    if device.width == 8 and density_gb == 8:
        return IDDValues(vdd=1.2, idd0=0.055, idd2n=0.0450, idd2p=0.020,
                         idd3n=0.058, idd4r=0.150, idd4w=0.140,
                         idd5b=0.285, idd6=0.0052)
    # Generic fallback: scale the 4Gb x8 part by density.
    scale = density_gb / 4.0
    return IDDValues(vdd=1.2, idd0=0.046 * scale, idd2n=0.0225 * scale,
                     idd2p=0.011 * scale, idd3n=0.030 * scale,
                     idd4r=0.140, idd4w=0.130, idd5b=0.190 * scale,
                     idd6=0.0030 * scale)


def _energies_for(device: DRAMDeviceConfig) -> AccessEnergies:
    """Per-rank access energies; array energy scales with devices/rank."""
    devices_per_rank = 64 // device.width
    return AccessEnergies(
        act_j=1.6e-9 * devices_per_rank,
        rw_j=1.0e-9 * devices_per_rank,
        io_j=6.0e-9,
    )


def device_power_table(device: DRAMDeviceConfig) -> Dict[str, object]:
    """Return the (IDD, energies) pair for *device*.

    Exposed as a dict so experiment logs can dump the exact constants a
    run used.
    """
    return {"idd": _idd_for(device), "energies": _energies_for(device)}
