"""CACTI-lite: first-order area/cost estimates for sub-array power gating.

The paper (Section 4.3) reports, from a commercial 1x-nm 8Gb DRAM design:

* power-gate switch transistors of ~1500 um^2 per sub-array,
  together ~0.64% of the DRAM die;
* per-sub-array control logic below 1% of die area in total;
* overall cost comparable to PASR/PAAR control, ~0.1% of die area.

This module reproduces those numbers from the stated per-sub-array switch
area and a first-order die-area model, replacing the paper's use of CACTI 7
(which needs technology files we cannot ship).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.device import DRAMDeviceConfig
from repro.errors import ConfigurationError

#: Switch-transistor area per sub-array from the paper's commercial design.
SWITCH_AREA_UM2_PER_SUBARRAY = 1500.0

#: Per-sub-array enable/control logic area (conservative, < switch area).
CONTROL_AREA_UM2_PER_SUBARRAY = 700.0

#: Area budget of the 1x-nm 8Gb reference die, um^2.  Chosen so the 1024
#: sub-arrays' switches (1.536 mm^2) are 0.64% of the die, matching the
#: paper's figure for the commercial design it analysed.
REFERENCE_DIE_AREA_UM2 = 2.4e8
#: Cell-array fraction of a commodity DRAM die (periphery is the rest).
CELL_AREA_FRACTION = 0.55

#: Maximum design-rule-checked turn-on resistance of the power switch.
SWITCH_ON_RESISTANCE_OHM = 0.1


@dataclass(frozen=True)
class SubarrayGatingCost:
    """Estimated silicon cost of GreenDIMM's per-sub-array power gating."""

    die_area_um2: float
    switch_area_um2: float
    control_area_um2: float
    num_subarrays: int

    @property
    def switch_area_fraction(self) -> float:
        """Switch area / die area (paper: 0.64%)."""
        return self.switch_area_um2 / self.die_area_um2

    @property
    def total_overhead_fraction(self) -> float:
        """All gating silicon / die area (paper: < 1%)."""
        return (self.switch_area_um2 + self.control_area_um2) / self.die_area_um2


def _die_area_um2(device: DRAMDeviceConfig) -> float:
    """First-order die area: scale the 8Gb reference linearly in density,
    with the periphery share held constant."""
    density_gb = device.density_bits / (1 << 30)
    cell = REFERENCE_DIE_AREA_UM2 * CELL_AREA_FRACTION * (density_gb / 8.0)
    periphery = REFERENCE_DIE_AREA_UM2 * (1 - CELL_AREA_FRACTION) * (
        0.5 + 0.5 * density_gb / 8.0)
    return cell + periphery


def estimate_gating_cost(device: DRAMDeviceConfig) -> SubarrayGatingCost:
    """Estimate the power-gating area overhead for *device*.

    For the paper's 8Gb reference this reproduces ~0.64% switch area and a
    total overhead below 1% of the die.
    """
    num_subarrays = device.banks * device.subarrays_per_bank
    if num_subarrays <= 0:
        raise ConfigurationError("device has no sub-arrays")
    return SubarrayGatingCost(
        die_area_um2=_die_area_um2(device),
        switch_area_um2=SWITCH_AREA_UM2_PER_SUBARRAY * num_subarrays,
        control_area_um2=CONTROL_AREA_UM2_PER_SUBARRAY * num_subarrays,
        num_subarrays=num_subarrays,
    )
