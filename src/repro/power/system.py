"""Whole-server power model: CPU + DRAM + platform rest.

Calibrated so that the DRAM share matches the paper's system-level
results: reducing DRAM power 32% at 256GB moves system power ~9%, and
reducing it 36% at 1TB moves system power ~20% (Figure 13) — i.e. the
non-DRAM portion of a busy server is in the 70-90W range for the 16-core
Xeon platform of Section 3.2.

Also provides the paper's "simple linear model" (Section 6.3) for
extrapolating DRAM power to larger capacities from two measured points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.model import DRAMPowerBreakdown


@dataclass(frozen=True)
class CPUPowerModel:
    """Linear-in-utilization package power for the server CPU.

    Defaults approximate a 16-core Xeon: ~25W idle package power, ~65W at
    full load.
    """

    idle_w: float = 25.0
    peak_w: float = 65.0

    def __post_init__(self) -> None:
        if self.peak_w < self.idle_w:
            raise ConfigurationError("peak power below idle power")

    def power_w(self, utilization: float) -> float:
        """Package power at *utilization* in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization must be in [0, 1]")
        return self.idle_w + (self.peak_w - self.idle_w) * utilization


@dataclass(frozen=True)
class SystemPowerModel:
    """Server power = CPU + DRAM + everything else (fans, storage, VRs)."""

    cpu: CPUPowerModel = CPUPowerModel()
    platform_rest_w: float = 20.0

    def power_w(self, cpu_utilization: float, dram_power_w: float) -> float:
        """Total wall power for the given CPU utilization and DRAM power."""
        if dram_power_w < 0:
            raise ConfigurationError("dram power must be non-negative")
        return self.cpu.power_w(cpu_utilization) + dram_power_w + self.platform_rest_w

    def power_from_breakdown(self, cpu_utilization: float,
                             dram: DRAMPowerBreakdown) -> float:
        return self.power_w(cpu_utilization, dram.total_w)


@dataclass(frozen=True)
class LinearDRAMCapacityModel:
    """The paper's Section 6.3 linear extrapolation of DRAM power.

    Fit through two measured (capacity, power) points — the paper uses its
    64GB and 256GB measurements, yielding ~91W at 1TB.
    """

    slope_w_per_gib: float
    intercept_w: float

    @classmethod
    def fit(cls, capacity_a_gib: float, power_a_w: float,
            capacity_b_gib: float, power_b_w: float) -> "LinearDRAMCapacityModel":
        if capacity_a_gib == capacity_b_gib:
            raise ConfigurationError("need two distinct capacities to fit")
        slope = (power_b_w - power_a_w) / (capacity_b_gib - capacity_a_gib)
        intercept = power_a_w - slope * capacity_a_gib
        return cls(slope_w_per_gib=slope, intercept_w=intercept)

    def power_w(self, capacity_gib: float) -> float:
        """Extrapolated DRAM power at *capacity_gib*."""
        if capacity_gib <= 0:
            raise ConfigurationError("capacity must be positive")
        return self.intercept_w + self.slope_w_per_gib * capacity_gib
