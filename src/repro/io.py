"""Serialization: traces and results to/from JSON files.

Lets users capture a generated VM trace (so every policy comparison
replays the *same* day), save footprint traces for custom workloads, and
export epoch samples for external plotting.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

from repro.errors import ConfigurationError
from repro.sim.server import EpochSample
from repro.workloads.azure import (
    AzureTrace,
    UtilizationSample,
    VMEvent,
    VMInstance,
    VMType,
)
from repro.workloads.trace import FootprintTrace

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def _write(path: PathLike, kind: str, payload: dict) -> None:
    document = {"format": kind, "version": _FORMAT_VERSION, **payload}
    pathlib.Path(path).write_text(json.dumps(document, indent=1))


def _read(path: PathLike, kind: str) -> dict:
    document = json.loads(pathlib.Path(path).read_text())
    if document.get("format") != kind:
        raise ConfigurationError(
            f"{path} holds {document.get('format')!r}, expected {kind!r}")
    if document.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} version {document.get('version')}")
    return document


# --- footprint traces -------------------------------------------------------

def save_footprint_trace(trace: FootprintTrace, path: PathLike) -> None:
    """Write a footprint trace as JSON."""
    _write(path, "footprint-trace",
           {"points": [[t, b] for t, b in trace.points]})


def load_footprint_trace(path: PathLike) -> FootprintTrace:
    """Read a footprint trace written by :func:`save_footprint_trace`."""
    document = _read(path, "footprint-trace")
    return FootprintTrace.of([(t, b) for t, b in document["points"]])


# --- VM traces ------------------------------------------------------------------

def _vm_type_to_dict(vm_type: VMType) -> dict:
    return {"name": vm_type.name, "vcpus": vm_type.vcpus,
            "memory_bytes": vm_type.memory_bytes,
            "lifetime_mu": vm_type.lifetime_mu,
            "lifetime_sigma": vm_type.lifetime_sigma,
            "image_id": vm_type.image_id}


def save_azure_trace(trace: AzureTrace, path: PathLike) -> None:
    """Write an Azure-like VM trace (events + utilization) as JSON."""
    types: dict = {}
    events = []
    for event in trace.events:
        vm = event.instance
        types.setdefault(vm.vm_type.name, _vm_type_to_dict(vm.vm_type))
        events.append({"time_s": event.time_s, "kind": event.kind,
                       "vm_id": vm.vm_id, "type": vm.vm_type.name,
                       "arrival_s": vm.arrival_s,
                       "departure_s": vm.departure_s})
    samples = [{"time_s": s.time_s, "used_bytes": s.used_bytes,
                "vcpus_used": s.vcpus_used} for s in trace.samples]
    _write(path, "azure-trace", {
        "capacity_bytes": trace.capacity_bytes,
        "vm_types": types, "events": events, "samples": samples})


def load_azure_trace(path: PathLike) -> AzureTrace:
    """Read a VM trace written by :func:`save_azure_trace`.

    VM identity is preserved: the same ``vm_id`` maps to one
    :class:`VMInstance` shared by its arrive and depart events, exactly
    as the generator produces.
    """
    document = _read(path, "azure-trace")
    types = {name: VMType(**fields)
             for name, fields in document["vm_types"].items()}
    instances: dict = {}
    events: List[VMEvent] = []
    for record in document["events"]:
        vm_id = record["vm_id"]
        if vm_id not in instances:
            instances[vm_id] = VMInstance(
                vm_id=vm_id, vm_type=types[record["type"]],
                arrival_s=record["arrival_s"],
                departure_s=record["departure_s"])
        events.append(VMEvent(time_s=record["time_s"], kind=record["kind"],
                              instance=instances[vm_id]))
    samples = [UtilizationSample(**s) for s in document["samples"]]
    return AzureTrace(events=events, samples=samples,
                      capacity_bytes=document["capacity_bytes"])


# --- epoch samples ---------------------------------------------------------------

def save_epoch_samples(samples: List[EpochSample], path: PathLike) -> None:
    """Write a run's epoch series (for external plotting) as JSON."""
    _write(path, "epoch-samples", {"samples": [
        {"time_s": s.time_s, "used_pages": s.used_pages,
         "free_pages": s.free_pages, "offline_blocks": s.offline_blocks,
         "dpd_fraction": s.dpd_fraction, "dram_power_w": s.dram_power_w}
        for s in samples]})


def load_epoch_samples(path: PathLike) -> List[EpochSample]:
    """Read an epoch series written by :func:`save_epoch_samples`."""
    document = _read(path, "epoch-samples")
    return [EpochSample(**record) for record in document["samples"]]
