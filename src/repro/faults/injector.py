"""The deterministic fault injector that executes a :class:`FaultPlan`.

The injector holds no randomness of its own: given the same plan and
the same sequence of ``should_fail`` queries (which the simulation's
seeded determinism guarantees), it fires the same faults at the same
attempts every run.  Rules fire first-match in plan order, each
consuming one unit of its attempt budget (sticky rules never exhaust).

A :class:`FaultClock` carries simulation time into the wrapped kernel
surfaces, whose real APIs (``try_offline_block`` et al.) don't take a
timestamp; ``GreenDIMMSystem.step`` advances it every epoch.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan, FaultRule


@dataclass
class FaultClock:
    """Mutable simulation-time carrier shared by injector and wrappers."""

    now_s: float = 0.0


@dataclass
class FaultStats:
    """Counters of injected failures, keyed ``op:error``."""

    injected: Dict[str, int] = field(default_factory=dict)

    def count(self, op: str, error: str) -> None:
        key = f"{op}:{error}"
        self.injected[key] = self.injected.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.injected.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self.injected.items()))

    def merge(self, other: "FaultStats") -> None:
        for key, value in other.injected.items():
            self.injected[key] = self.injected.get(key, 0) + value


class FaultInjector:
    """Decides, per attempt, whether a fault plan fires.

    ``should_fail`` is the single consultation point the wrappers call;
    it returns the matching :class:`FaultRule` (after consuming one unit
    of its budget) or ``None``.  Every fired fault is appended to
    ``events`` — op, error, target, time — which the metrics bus turns
    into JSONL.
    """

    def __init__(self, plan: FaultPlan,
                 clock: Optional[FaultClock] = None):
        self.plan = plan
        self.clock = clock or FaultClock()
        self._remaining: List[int] = [rule.count for rule in plan.rules]
        self.stats = FaultStats()
        self.events: List[Dict[str, object]] = []
        # Rule-window calendar for quiescent_until(): windows whose start
        # lies in the future sit in a min-heap keyed by start time; as
        # queries advance they migrate into the active list, from which
        # expired (end passed) and exhausted rules drop out.  Amortized
        # O(log n) per query instead of rescanning the whole plan.
        self._window_starts: List[tuple] = sorted(
            (rule.start_s, index) for index, rule in enumerate(plan.rules))
        self._future_windows: List[tuple] = list(self._window_starts)
        self._active_windows: List[int] = []
        self._window_query_s = -math.inf

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    def advance(self, now_s: float) -> None:
        """Move the injector's notion of simulation time forward."""
        self.clock.now_s = now_s

    def should_fail(self, op: str,
                    target: Optional[int] = None) -> Optional[FaultRule]:
        """First live matching rule for this attempt, or ``None``.

        A hit consumes one unit of the rule's budget (sticky rules are
        bottomless) and records the injection in ``stats``/``events``.
        """
        now = self.clock.now_s
        for index, rule in enumerate(self.plan.rules):
            if self._remaining[index] == 0:
                continue
            if not rule.matches(op, target, now):
                continue
            if self._remaining[index] > 0:
                self._remaining[index] -= 1
            self.stats.count(op, rule.error)
            self.events.append({"op": op, "error": rule.error,
                                "target": target, "time_s": now,
                                "rule": rule.label or index})
            return rule
        return None

    def quiescent_until(self, now_s: float) -> float:
        """Earliest future time a rule could start matching, or *now_s*.

        Returns *now_s* itself while any unexhausted rule is live (its
        window contains *now_s*) — the fast-forward layer reads that as
        "not quiescent" and steps epoch by epoch so every ``should_fail``
        consultation happens exactly as in the slow path.  Otherwise the
        bound is the nearest future ``start_s`` (``inf`` when no rule can
        ever fire again); no query strictly before it can match any rule.

        Queries normally advance monotonically (simulation time); one
        that moves backwards (the injector reused for a fresh run)
        rebuilds the calendar from the immutable plan, so only that call
        pays a rescan.
        """
        if now_s < self._window_query_s:
            self._future_windows = list(self._window_starts)
            self._active_windows = []
        self._window_query_s = now_s
        rules = self.plan.rules
        remaining = self._remaining
        future = self._future_windows
        while future and future[0][0] <= now_s:
            _, index = heapq.heappop(future)
            self._active_windows.append(index)
        live = [index for index in self._active_windows
                if remaining[index] != 0 and rules[index].end_s > now_s]
        self._active_windows = live
        if live:
            return now_s
        # Exhaustion is permanent, so spent rules can be dropped from the
        # heap for good as they surface.
        while future and remaining[future[0][1]] == 0:
            heapq.heappop(future)
        return future[0][0] if future else math.inf

    def exhausted(self) -> bool:
        """True once every non-sticky rule has spent its budget."""
        return all(r == 0 for r in self._remaining if r >= 0)

    # --- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Injection position: clock, per-rule budgets, fired events, and
        the quiescence calendar (so a restore mid-storm resumes with the
        identical active/future window split)."""
        return {"now_s": self.clock.now_s,
                "remaining": self._remaining,
                "stats": self.stats,
                "events": self.events,
                "future_windows": self._future_windows,
                "active_windows": self._active_windows,
                "window_query_s": self._window_query_s}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.clock.now_s = state["now_s"]
        self._remaining = state["remaining"]
        self.stats = state["stats"]
        self.events = state["events"]
        self._future_windows = state["future_windows"]
        self._active_windows = state["active_windows"]
        self._window_query_s = state["window_query_s"]
