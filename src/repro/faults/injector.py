"""The deterministic fault injector that executes a :class:`FaultPlan`.

The injector holds no randomness of its own: given the same plan and
the same sequence of ``should_fail`` queries (which the simulation's
seeded determinism guarantees), it fires the same faults at the same
attempts every run.  Rules fire first-match in plan order, each
consuming one unit of its attempt budget (sticky rules never exhaust).

A :class:`FaultClock` carries simulation time into the wrapped kernel
surfaces, whose real APIs (``try_offline_block`` et al.) don't take a
timestamp; ``GreenDIMMSystem.step`` advances it every epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan, FaultRule


@dataclass
class FaultClock:
    """Mutable simulation-time carrier shared by injector and wrappers."""

    now_s: float = 0.0


@dataclass
class FaultStats:
    """Counters of injected failures, keyed ``op:error``."""

    injected: Dict[str, int] = field(default_factory=dict)

    def count(self, op: str, error: str) -> None:
        key = f"{op}:{error}"
        self.injected[key] = self.injected.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.injected.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self.injected.items()))

    def merge(self, other: "FaultStats") -> None:
        for key, value in other.injected.items():
            self.injected[key] = self.injected.get(key, 0) + value


class FaultInjector:
    """Decides, per attempt, whether a fault plan fires.

    ``should_fail`` is the single consultation point the wrappers call;
    it returns the matching :class:`FaultRule` (after consuming one unit
    of its budget) or ``None``.  Every fired fault is appended to
    ``events`` — op, error, target, time — which the metrics bus turns
    into JSONL.
    """

    def __init__(self, plan: FaultPlan,
                 clock: Optional[FaultClock] = None):
        self.plan = plan
        self.clock = clock or FaultClock()
        self._remaining: List[int] = [rule.count for rule in plan.rules]
        self.stats = FaultStats()
        self.events: List[Dict[str, object]] = []

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    def advance(self, now_s: float) -> None:
        """Move the injector's notion of simulation time forward."""
        self.clock.now_s = now_s

    def should_fail(self, op: str,
                    target: Optional[int] = None) -> Optional[FaultRule]:
        """First live matching rule for this attempt, or ``None``.

        A hit consumes one unit of the rule's budget (sticky rules are
        bottomless) and records the injection in ``stats``/``events``.
        """
        now = self.clock.now_s
        for index, rule in enumerate(self.plan.rules):
            if self._remaining[index] == 0:
                continue
            if not rule.matches(op, target, now):
                continue
            if self._remaining[index] > 0:
                self._remaining[index] -= 1
            self.stats.count(op, rule.error)
            self.events.append({"op": op, "error": rule.error,
                                "target": target, "time_s": now,
                                "rule": rule.label or index})
            return rule
        return None

    def quiescent_until(self, now_s: float) -> float:
        """Earliest future time a rule could start matching, or *now_s*.

        Returns *now_s* itself while any unexhausted rule is live (its
        window contains *now_s*) — the fast-forward layer reads that as
        "not quiescent" and steps epoch by epoch so every ``should_fail``
        consultation happens exactly as in the slow path.  Otherwise the
        bound is the nearest future ``start_s`` (``inf`` when no rule can
        ever fire again); no query strictly before it can match any rule.
        """
        horizon = math.inf
        for index, rule in enumerate(self.plan.rules):
            if self._remaining[index] == 0:
                continue
            if rule.start_s <= now_s < rule.end_s:
                return now_s
            if rule.start_s > now_s:
                horizon = min(horizon, rule.start_s)
        return horizon

    def exhausted(self) -> bool:
        """True once every non-sticky rule has spent its budget."""
        return all(r == 0 for r in self._remaining if r >= 0)
