"""Process-global fault-plan context for the experiment runner.

``repro run --fault-plan`` must apply one plan to every system an
experiment constructs, including inside pool worker processes where the
CLI cannot reach.  The runner therefore serializes the plan into the
job (where it also keys the result cache) and ``execute_job`` activates
it here before the experiment runs; ``GreenDIMMSystem`` consults
:func:`get_active_plan` when no explicit plan was passed.

Injectors created under an active plan register themselves so the
runner can drain their counters into the JSONL metrics stream after the
job finishes — one ``faults`` dict per ``job_end`` event.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FaultPlan

_active_plan: Optional[FaultPlan] = None
_injectors: List[FaultInjector] = []


def get_active_plan() -> Optional[FaultPlan]:
    """The plan activated for the current job, if any."""
    return _active_plan


def set_active_plan(plan: Optional[FaultPlan]) -> None:
    """Activate *plan* process-wide (``None`` deactivates)."""
    global _active_plan
    _active_plan = plan


def register_injector(injector: FaultInjector) -> None:
    """Track an injector created under the active plan for draining."""
    _injectors.append(injector)


def drain_fault_counts() -> Dict[str, int]:
    """Merge and clear every registered injector's counters.

    Returns the combined ``op:error -> count`` mapping for the job that
    just ran (empty when no faults were injected).
    """
    merged = FaultStats()
    for injector in _injectors:
        merged.merge(injector.stats)
    _injectors.clear()
    return merged.as_dict()


@contextmanager
def active_plan(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Scope *plan* to a ``with`` block, restoring the prior plan after."""
    previous = _active_plan
    set_active_plan(plan)
    try:
        yield
    finally:
        set_active_plan(previous)
