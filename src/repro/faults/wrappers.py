"""Fault-injecting wrappers around the simulated kernel surfaces.

Each wrapper delegates everything to the real component and intercepts
only the operations a :class:`~repro.faults.injector.FaultInjector` can
fail.  Injected failures are indistinguishable from organic ones to the
daemon: they raise the same exception types, carry the same modelled
latencies, and count in the same :class:`~repro.os.hotplug.HotplugStats`
counters, so every downstream experiment sees one coherent failure
stream.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.errors import (
    AllocationError,
    OfflineAgainError,
    OfflineBusyError,
    OnlineError,
    WakeupTimeoutError,
)
from repro.faults.injector import FaultInjector
from repro.os.hotplug import (
    MemoryBlockManager,
    OfflineResult,
)
from repro.os.mm import PhysicalMemoryManager
from repro.os.page import OwnerKind, PageExtent
from repro.units import MICROSECOND

#: Wake-up poll budget charged when a ready-bit timeout is injected and
#: the rule specifies no ``extra_latency_s`` of its own (Section 4.2's
#: poll loop, abandoned).
DEFAULT_WAKEUP_TIMEOUT_S = 100 * MICROSECOND


class _FaultyDelegate:
    """Composition base: forward any unknown attribute to the inner object."""

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


class FaultyPhysicalMemoryManager(_FaultyDelegate):
    """Injects allocation-pressure spikes into a PhysicalMemoryManager.

    An ``allocate``/``ENOMEM`` fault makes one allocation fail as if the
    online free memory had vanished between the daemon's monitoring
    passes — exactly the squeeze that forces ``emergency_online``.
    """

    def __init__(self, inner: PhysicalMemoryManager,
                 injector: FaultInjector):
        super().__init__(inner, injector)

    def allocate(self, owner_id: str, n_pages: int,
                 kind: OwnerKind = OwnerKind.USER,
                 mergeable: bool = False) -> List[PageExtent]:
        rule = self.injector.should_fail("allocate")
        if rule is not None:
            raise AllocationError(
                f"injected pressure spike ({rule.label or 'fault plan'}): "
                f"{n_pages} pages for {owner_id!r} denied")
        return self.inner.allocate(owner_id, n_pages, kind=kind,
                                   mergeable=mergeable)


class FaultyMemoryBlockManager(_FaultyDelegate):
    """Injects EBUSY/EAGAIN storms, migration stalls, and on-line
    failures into a MemoryBlockManager."""

    def __init__(self, inner: MemoryBlockManager, injector: FaultInjector):
        super().__init__(inner, injector)

    # --- off-lining ---------------------------------------------------------

    def offline_block(self, index: int) -> OfflineResult:
        rule = self.injector.should_fail("offline", index)
        if rule is not None:
            latency_model = self.inner.latency
            if rule.error == "EBUSY":
                latency = latency_model.failure_ebusy_s + rule.extra_latency_s
                self.inner.stats.ebusy_failures += 1
                self.inner.stats.record("ebusy", latency)
                error: OfflineBusyError = OfflineBusyError(
                    f"block {index}: injected EBUSY ({rule.label or 'fault'})")
            else:
                latency = latency_model.failure_eagain_s + rule.extra_latency_s
                self.inner.stats.eagain_failures += 1
                self.inner.stats.record("eagain", latency)
                error = OfflineAgainError(
                    f"block {index}: injected EAGAIN ({rule.label or 'fault'})")
            error.latency_s = latency
            raise error
        result = self.inner.offline_block(index)
        stall = self.injector.should_fail("migration", index)
        if stall is not None and stall.extra_latency_s > 0:
            self.inner.stats.record("stall", stall.extra_latency_s)
            result = replace(result,
                             latency_s=result.latency_s + stall.extra_latency_s)
        return result

    def try_offline_block(self, index: int) -> OfflineResult:
        try:
            return self.offline_block(index)
        except (OfflineBusyError, OfflineAgainError) as err:
            return OfflineResult(block=index, success=False,
                                 latency_s=getattr(err, "latency_s", 0.0),
                                 errno_name=err.errno_name)

    # --- on-lining ----------------------------------------------------------

    def online_block(self, index: int) -> float:
        rule = self.injector.should_fail("online", index)
        if rule is not None:
            error = OnlineError(
                f"block {index}: injected on-lining failure "
                f"({rule.label or 'fault'})")
            error.latency_s = rule.extra_latency_s
            raise error
        return self.inner.online_block(index)

    def try_online_block(self, index: int):
        """Mirror the inner manager's non-raising wrapper through the
        fault layer, so injected EINVALs surface as results too."""
        from repro.os.hotplug import OnlineAttempt

        try:
            return OnlineAttempt(block=index, success=True,
                                 latency_s=self.online_block(index))
        except OnlineError as err:
            return OnlineAttempt(block=index, success=False,
                                 latency_s=getattr(err, "latency_s", 0.0),
                                 errno_name=err.errno_name)


class FaultyPowerControl(_FaultyDelegate):
    """Injects wake-up ready-bit timeouts into GreenDIMMPowerControl."""

    def prepare_online(self, block: int, now_s: float = 0.0) -> float:
        rule = self.injector.should_fail("prepare_online", block)
        if rule is not None:
            wait_s = rule.extra_latency_s or DEFAULT_WAKEUP_TIMEOUT_S
            # The abandoned poll still burned controller wait time; the
            # groups stay gated because nothing was un-gated yet.
            self.inner.wakeup_wait_s += wait_s
            error = WakeupTimeoutError(
                f"block {block}: wake-up ready bit never set "
                f"({rule.label or 'fault'})")
            error.wait_s = wait_s
            raise error
        return self.inner.prepare_online(block, now_s)


def wrap_system_components(mm: PhysicalMemoryManager,
                           hotplug: MemoryBlockManager,
                           power_control,
                           injector: Optional[FaultInjector]):
    """Wrap the three injectable surfaces (no-op when *injector* is None)."""
    if injector is None:
        return mm, hotplug, power_control
    return (FaultyPhysicalMemoryManager(mm, injector),
            FaultyMemoryBlockManager(hotplug, injector),
            FaultyPowerControl(power_control, injector))
