"""Deterministic, seedable fault injection for the hot-plug/daemon path.

GreenDIMM's mechanism lives or dies on an error-prone kernel interface:
Section 5.2 shows ``offline_pages()`` failing constantly with EBUSY and
EAGAIN, and Table 3's latencies matter precisely because the daemon must
absorb those failures without stalling the server.  This package lets a
run *provoke* those failures on demand — declaratively, reproducibly —
instead of waiting for the simulation's organic randomness to produce
them:

* :mod:`repro.faults.plan` — the declarative schedule (``FaultRule`` /
  ``FaultPlan``) plus the seeded :func:`storm_plan` generator;
* :mod:`repro.faults.injector` — the deterministic executor;
* :mod:`repro.faults.wrappers` — drop-in wrappers for the memory-block
  manager, the power control, and the physical memory manager;
* :mod:`repro.faults.context` — the process-global plan the parallel
  runner uses to reach experiments inside worker processes.
"""

from repro.faults.context import (
    active_plan,
    drain_fault_counts,
    get_active_plan,
    register_injector,
    set_active_plan,
)
from repro.faults.injector import FaultClock, FaultInjector, FaultStats
from repro.faults.plan import (
    FAULT_OPS,
    STICKY,
    FaultPlan,
    FaultRule,
    storm_plan,
)
from repro.faults.wrappers import (
    DEFAULT_WAKEUP_TIMEOUT_S,
    FaultyMemoryBlockManager,
    FaultyPhysicalMemoryManager,
    FaultyPowerControl,
    wrap_system_components,
)

__all__ = [
    "FAULT_OPS",
    "STICKY",
    "DEFAULT_WAKEUP_TIMEOUT_S",
    "FaultClock",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "FaultyMemoryBlockManager",
    "FaultyPhysicalMemoryManager",
    "FaultyPowerControl",
    "active_plan",
    "drain_fault_counts",
    "get_active_plan",
    "register_injector",
    "set_active_plan",
    "storm_plan",
    "wrap_system_components",
]
