"""Declarative fault plans: what fails, when, and how often.

A :class:`FaultPlan` is an ordered set of :class:`FaultRule` entries.
Each rule names one simulated kernel surface (``op``), an errno-style
failure to inject (``error``), an optional target memory block, a time
window, and an attempt budget.  Plans are plain data: they serialize to
canonical JSON, compose with ``+``, and — via :func:`storm_plan` —
expand deterministically from a seed, so any failure run is replayable
bit-for-bit (including under the result cache, which hashes the
canonical JSON into the job key).

Supported operations and errors:

========================  ==========================================
``offline`` / ``EBUSY``   ``offline_pages()`` refuses: unmovable pages
``offline`` / ``EAGAIN``  page migration fails transiently
``online`` / ``EINVAL``   ``online_pages()`` fails outright
``prepare_online`` / ``ETIMEDOUT``  the wake-up ready-bit never sets
``allocate`` / ``ENOMEM`` a pressure spike starves an allocation
``migration`` / ``STALL`` migration succeeds but stalls (extra latency)
========================  ==========================================
"""

from __future__ import annotations

import json
import math
import pathlib
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError

PathLike = Union[str, pathlib.Path]

#: Every injectable operation, with the errors it may fail with.
FAULT_OPS: Dict[str, Tuple[str, ...]] = {
    "offline": ("EBUSY", "EAGAIN"),
    "online": ("EINVAL",),
    "prepare_online": ("ETIMEDOUT",),
    "allocate": ("ENOMEM",),
    "migration": ("STALL",),
}

#: Sentinel for a sticky rule: it keeps firing for as long as it matches.
STICKY = -1


@dataclass(frozen=True)
class FaultRule:
    """One injection: fail *op* (on *target*) with *error*, *count* times.

    ``target`` of ``None`` matches any block (and is the only sensible
    value for ``allocate``, which has no block).  ``count`` is the number
    of matching attempts to fail; ``STICKY`` (-1) never exhausts — the
    per-block sticky failure of a genuinely unpluggable block.  The rule
    is live for ``start_s <= now < end_s`` of simulation time.
    ``extra_latency_s`` adds injected delay: the stall length for
    ``migration``, the abandoned poll time for ``prepare_online``.
    """

    op: str
    error: str
    target: Optional[int] = None
    start_s: float = 0.0
    end_s: float = math.inf
    count: int = 1
    extra_latency_s: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise ConfigurationError(
                f"unknown fault op {self.op!r}; known: "
                f"{', '.join(sorted(FAULT_OPS))}")
        if self.error not in FAULT_OPS[self.op]:
            raise ConfigurationError(
                f"op {self.op!r} cannot fail with {self.error!r}; "
                f"allowed: {', '.join(FAULT_OPS[self.op])}")
        if self.count == 0 or self.count < STICKY:
            raise ConfigurationError(
                "count must be positive or STICKY (-1)")
        if self.end_s <= self.start_s:
            raise ConfigurationError("need start_s < end_s")
        if self.extra_latency_s < 0:
            raise ConfigurationError("extra latency cannot be negative")

    @property
    def sticky(self) -> bool:
        return self.count == STICKY

    def matches(self, op: str, target: Optional[int], now_s: float) -> bool:
        """Does this rule apply to one attempt at *now_s*?"""
        if op != self.op:
            return False
        if self.target is not None and target != self.target:
            return False
        return self.start_s <= now_s < self.end_s

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"op": self.op, "error": self.error,
                                  "start_s": self.start_s, "count": self.count}
        if self.target is not None:
            out["target"] = self.target
        if not math.isinf(self.end_s):
            out["end_s"] = self.end_s
        if self.extra_latency_s:
            out["extra_latency_s"] = self.extra_latency_s
        if self.label:
            out["label"] = self.label
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        known = {"op", "error", "target", "start_s", "end_s", "count",
                 "extra_latency_s", "label"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault-rule field(s): {', '.join(sorted(unknown))}")
        fields = dict(data)
        fields.setdefault("end_s", math.inf)
        return cls(**fields)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, composable collection of fault rules.

    Rule order matters: the injector fires the first live rule that
    matches an attempt.  ``seed`` records the generator seed for
    provenance (storm plans) and participates in the canonical JSON, so
    two storms with different seeds never collide in the result cache.
    """

    name: str = "plan"
    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans; the left plan's rules take precedence."""
        return FaultPlan(name=f"{self.name}+{other.name}", seed=self.seed,
                         rules=self.rules + other.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def shifted(self, offset_s: float) -> "FaultPlan":
        """The same plan with every rule's window moved by *offset_s*."""
        return replace(self, rules=tuple(
            replace(r, start_s=r.start_s + offset_s,
                    end_s=r.end_s + offset_s if not math.isinf(r.end_s)
                    else r.end_s)
            for r in self.rules))

    # --- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "seed": self.seed,
                "rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        rules = tuple(FaultRule.from_dict(r)
                      for r in data.get("rules", []))  # type: ignore[union-attr]
        return cls(name=str(data.get("name", "plan")),
                   seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
                   rules=rules)

    def canonical(self) -> str:
        """Deterministic JSON rendering — the cache-key payload."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=1) + "\n")

    @classmethod
    def from_file(cls, path: PathLike) -> "FaultPlan":
        try:
            text = pathlib.Path(path).read_text()
        except OSError as err:
            raise ConfigurationError(f"cannot read fault plan: {err}") from err
        try:
            return cls.from_json(text)
        except (json.JSONDecodeError, TypeError, ValueError) as err:
            raise ConfigurationError(
                f"malformed fault plan {path}: {err}") from err


#: Relative firing rates of the storm generator's fault kinds, roughly
#: matching Section 5.2's observed mix (EAGAIN dominates, EBUSY next).
_STORM_MIX = (
    ("offline", "EAGAIN", 0.40),
    ("offline", "EBUSY", 0.25),
    ("prepare_online", "ETIMEDOUT", 0.12),
    ("online", "EINVAL", 0.10),
    ("allocate", "ENOMEM", 0.08),
    ("migration", "STALL", 0.05),
)


def storm_plan(seed: int, intensity: float = 1.0, duration_s: float = 120.0,
               num_blocks: int = 64, name: Optional[str] = None) -> FaultPlan:
    """Generate a deterministic failure storm from a seed.

    ``intensity`` scales the expected number of injected fault windows
    (roughly one window per 4 seconds at intensity 1.0).  The generator
    draws every random choice from one ``random.Random(seed)`` in a fixed
    order, so the same (seed, intensity, duration, blocks) quadruple
    always yields the identical plan — the replayability the acceptance
    bar demands.  About a third of the rules are untargeted (they hit
    whichever block the daemon touches next), the rest pin a specific
    block; a small fraction are sticky, modelling permanently-stuck
    blocks.
    """
    if intensity < 0:
        raise ConfigurationError("intensity cannot be negative")
    if duration_s <= 0 or num_blocks <= 0:
        raise ConfigurationError("need positive duration and block count")
    rng = random.Random(seed)
    n_rules = max(1, int(round(intensity * duration_s / 4.0)))
    weights = [w for _op, _err, w in _STORM_MIX]
    rules = []
    for index in range(n_rules):
        op, error, _w = rng.choices(_STORM_MIX, weights=weights)[0]
        start = rng.uniform(0.0, duration_s)
        window = min(duration_s - start, rng.expovariate(1.0 / 10.0)) or 1.0
        target: Optional[int] = None
        if op not in ("allocate",) and rng.random() < 0.65:
            target = rng.randrange(num_blocks)
        sticky = op == "offline" and rng.random() < 0.08
        count = STICKY if sticky else rng.randint(1, 4)
        extra = 0.0
        if op == "migration":
            extra = rng.uniform(1e-3, 8e-3)
        elif op == "prepare_online":
            extra = rng.uniform(5e-5, 5e-4)
        rules.append(FaultRule(op=op, error=error, target=target,
                               start_s=start, end_s=start + max(window, 1.0),
                               count=count, extra_latency_s=extra,
                               label=f"storm{index}"))
    rules.sort(key=lambda r: (r.start_s, r.label))
    return FaultPlan(name=name or f"storm-s{seed}-i{intensity:g}",
                     seed=seed, rules=tuple(rules))
