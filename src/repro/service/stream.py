"""An appendable, infinite-horizon workload source for resident servers.

:class:`StreamSource` is :class:`~repro.sim.kernel.TraceSource`'s
open-ended sibling: instead of replaying a fixed, fully known event
list, it lets a fleet daemon keep *pushing* VM arrivals and departures
into a simulator that never finishes (``duration_s`` is infinite).  The
service drives it in bounded slices via
``EpochKernel.advance(state, until_s=..., exact=True)``.

The kernel's fast-forward machinery works unchanged: between events the
source is quiescent, so the horizon is simply the next queued event's
timestamp (or infinity while the queue is drained — the ``exact`` cap
bounds the window).  Events must be pushed at or after the paused
clock; the service clamps network-delivered timestamps to the server's
current time, mirroring a scheduler that cannot place a VM in the past.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.errors import SimulationError
from repro.ksm.content import RegionContent
from repro.units import PAGE_SIZE
from repro.workloads.azure import VMEvent

if TYPE_CHECKING:
    from repro.sim.server import ServerSimulator


@dataclass
class StreamSource:
    """VM events pushed at runtime, replayed exactly like a trace."""

    sim: "ServerSimulator"
    mean_vm_bandwidth_bytes_per_s: float = 0.4e9
    events: List[VMEvent] = field(default_factory=list)
    cursor: int = 0
    running: int = 0
    #: Never finishes on its own; the service ticks it in bounded slices.
    duration_s: float = math.inf

    def __getstate__(self) -> Dict[str, object]:
        # Snapshot support: drop the simulator back-reference (the
        # snapshot layer re-binds it on restore).
        state = self.__dict__.copy()
        state["sim"] = None
        return state

    # --- ingestion ----------------------------------------------------------

    def push(self, event: VMEvent) -> None:
        """Queue *event*; it must not land behind the replay cursor."""
        if self.cursor and self.events \
                and event.time_s < self.events[self.cursor - 1].time_s:
            raise SimulationError(
                f"event at t={event.time_s} behind the replay cursor "
                f"(t={self.events[self.cursor - 1].time_s})")
        bisect.insort(self.events, event, lo=self.cursor,
                      key=lambda e: e.time_s)

    @property
    def pending(self) -> int:
        """Events queued but not yet applied."""
        return len(self.events) - self.cursor

    # --- WorkloadSource -----------------------------------------------------

    def prepare(self) -> None:
        pass

    def apply(self, t: float) -> None:
        sim = self.sim
        ksm = sim.system.ksm
        while self.cursor < len(self.events) \
                and self.events[self.cursor].time_s <= t:
            event = self.events[self.cursor]
            self.cursor += 1
            vm = event.instance
            if event.kind == "arrive":
                pages = vm.vm_type.memory_bytes // PAGE_SIZE
                sim._resize_owner(vm.owner_id, pages, t, mergeable=True,
                                  emergency=True)
                self.running += 1
                if ksm is not None:
                    ksm.register(RegionContent(
                        owner_id=vm.owner_id, total_pages=pages,
                        image_id=vm.vm_type.image_id))
            else:
                if ksm is not None:
                    ksm.unregister(vm.owner_id)
                sim.system.mm.free_all(vm.owner_id)
                sim.swap.release(vm.owner_id)
                self.running = max(0, self.running - 1)

    def operating_point(self, t: float) -> Tuple[float, float]:
        return self.running * self.mean_vm_bandwidth_bytes_per_s, 0.5

    def horizon(self, t: float) -> float:
        if self.cursor < len(self.events):
            next_event_s = self.events[self.cursor].time_s
            return t if next_event_s <= t else next_event_s
        return math.inf

    def stable_until(self, t: float) -> float:
        # Identical reasoning to TraceSource: between events apply() is
        # a pure cursor peek and the operating point only moves at
        # events.
        return self.horizon(t)
