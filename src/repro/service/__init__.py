"""The resident fleet service: warm simulators + a REST control plane.

``repro serve`` keeps a fleet of GreenDIMM servers resident and
controllable over HTTP; ``repro ctl`` is the matching client.  The
pieces compose from the rest of the library: servers are
:class:`~repro.sim.snapshot.ServerSpec`-built simulators over an
appendable :class:`~repro.service.stream.StreamSource`, ticked in
bounded slices by the epoch kernel, and checkpointed/migrated with
:mod:`repro.sim.snapshot`.
"""

from repro.service.client import ControlClient
from repro.service.fleet_service import FleetService, ServiceServer
from repro.service.http import ControlPlane, serve
from repro.service.stream import StreamSource

__all__ = [
    "ControlClient",
    "ControlPlane",
    "FleetService",
    "ServiceServer",
    "StreamSource",
    "serve",
]
