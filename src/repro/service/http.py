"""The REST/JSON control plane over a :class:`FleetService`.

Pure standard library: ``asyncio.start_server`` plus a deliberately
small HTTP/1.1 implementation (request line, headers, Content-Length
body, ``Connection: close`` responses).  Every route is a thin JSON
skin over a :class:`~repro.service.fleet_service.FleetService` method;
snapshots travel as raw ``application/octet-stream`` bodies so a
checkpoint round-trip is byte-transparent.

Routes::

    GET  /status                    fleet summary (time, energy, layout)
    GET  /servers                   per-server summaries
    GET  /servers/{i}               one server: residency, energy, config
    GET  /servers/{i}/events?n=K    daemon decision log tail
    GET  /servers/{i}/snapshot      checkpoint (binary)
    POST /servers/{i}/restore       restore from a checkpoint body
    POST /servers/{i}/migrate       {"worker": w}
    POST /servers/{i}/fault         a fault-plan JSON document
    POST /ingest                    {"vm_id", "memory_bytes", "time_s",
                                     "lifetime_s"?, "vcpus"?, "image_id"?}
    POST /depart                    {"vm_id", "time_s"}
    POST /advance                   {"until_s"} or {"dt_s"}
    POST /retune                    {"overrides": {...}, "server"?: i}
    POST /reshard                   {"workers": n}
    POST /shutdown                  stop serving

Simulation work runs under one lock (the service is single-threaded
state), with slow operations pushed to a worker thread so the event
loop keeps accepting connections while a long ``/advance`` ticks.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.service.fleet_service import FleetService

#: Largest accepted request body (snapshots of big fleets are MBs).
MAX_BODY_BYTES = 256 * 1024 * 1024

_SERVER_ROUTE = re.compile(r"^/servers/(\d+)(/[a-z]+)?$")


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class ControlPlane:
    """Serves one :class:`FleetService` over HTTP until shut down."""

    def __init__(self, service: FleetService, host: str = "127.0.0.1",
                 port: int = 8023):
        self.service = service
        self.host = host
        self.port = port
        self._lock = asyncio.Lock()
        self._shutdown = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def bound_port(self) -> int:
        """The actual port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise ReproError("control plane is not serving")
        return self._server.sockets[0].getsockname()[1]

    # --- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)

    async def serve_until_shutdown(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()

    # --- plumbing -----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, content_type, body = await self._respond(reader)
        except _HttpError as err:
            status, content_type, body = (
                err.status, "application/json",
                json.dumps({"error": err.message}).encode())
        except ReproError as err:
            status, content_type, body = (
                400, "application/json",
                json.dumps({"error": str(err)}).encode())
        except Exception as err:  # pragma: no cover - defensive
            status, content_type, body = (
                500, "application/json",
                json.dumps({"error": f"{type(err).__name__}: {err}"})
                .encode())
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        try:
            writer.write(head + body)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line.strip():
            raise _HttpError(400, "empty request")
        try:
            method, target, _version = \
                request_line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _json(body: bytes) -> Dict[str, object]:
        if not body:
            return {}
        try:
            data = json.loads(body)
        except json.JSONDecodeError as err:
            raise _HttpError(400, f"malformed JSON body: {err}") from None
        if not isinstance(data, dict):
            raise _HttpError(400, "JSON body must be an object")
        return data

    @staticmethod
    def _ok(payload: object) -> Tuple[int, str, bytes]:
        return 200, "application/json", json.dumps(payload).encode()

    # --- routing ------------------------------------------------------------

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, str, bytes]:
        method, target, _headers, body = await self._read_request(reader)
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        service = self.service

        match = _SERVER_ROUTE.match(path)
        if match:
            index = int(match.group(1))
            sub = match.group(2)
            return await self._server_route(method, index, sub, query, body)

        if method == "GET":
            if path == "/status":
                async with self._lock:
                    return self._ok(service.status())
            if path == "/servers":
                async with self._lock:
                    return self._ok(service.servers())
            raise _HttpError(404, f"unknown path {path!r}")

        if method != "POST":
            raise _HttpError(405, f"unsupported method {method}")

        if path == "/ingest":
            data = self._json(body)
            async with self._lock:
                return self._ok(service.ingest(
                    vm_id=int(data["vm_id"]),
                    memory_bytes=int(data["memory_bytes"]),
                    time_s=float(data.get("time_s", service.now_s)),
                    lifetime_s=(float(data["lifetime_s"])
                                if "lifetime_s" in data else None),
                    vcpus=int(data.get("vcpus", 2)),
                    image_id=int(data.get("image_id", 0))))
        if path == "/depart":
            data = self._json(body)
            async with self._lock:
                return self._ok(service.depart(
                    vm_id=int(data["vm_id"]),
                    time_s=float(data.get("time_s", service.now_s))))
        if path == "/advance":
            data = self._json(body)
            until_s = (float(data["until_s"])
                       if "until_s" in data else None)
            dt_s = float(data["dt_s"]) if "dt_s" in data else None
            async with self._lock:
                now = await asyncio.to_thread(service.advance,
                                              until_s=until_s, dt_s=dt_s)
            return self._ok({"now_s": now})
        if path == "/retune":
            data = self._json(body)
            overrides = data.get("overrides")
            if not isinstance(overrides, dict) or not overrides:
                raise _HttpError(400, "need a non-empty 'overrides' object")
            index = int(data["server"]) if "server" in data else None
            async with self._lock:
                return self._ok(service.retune(overrides, index=index))
        if path == "/reshard":
            data = self._json(body)
            async with self._lock:
                result = await asyncio.to_thread(
                    service.reshard, int(data["workers"]))
            return self._ok(result)
        if path == "/shutdown":
            self._shutdown.set()
            return self._ok({"shutdown": True})
        raise _HttpError(404, f"unknown path {path!r}")

    async def _server_route(self, method: str, index: int,
                            sub: Optional[str], query: Dict[str, list],
                            body: bytes) -> Tuple[int, str, bytes]:
        service = self.service
        if method == "GET":
            if sub is None:
                async with self._lock:
                    return self._ok(service.server_status(index))
            if sub == "/events":
                limit = int(query.get("n", ["50"])[0])
                async with self._lock:
                    return self._ok(service.server_events(index,
                                                          limit=limit))
            if sub == "/snapshot":
                async with self._lock:
                    blob = await asyncio.to_thread(service.snapshot, index)
                return 200, "application/octet-stream", blob
            raise _HttpError(404, f"unknown server endpoint {sub!r}")
        if method != "POST":
            raise _HttpError(405, f"unsupported method {method}")
        if sub == "/restore":
            if not body:
                raise _HttpError(400, "restore needs a snapshot body")
            async with self._lock:
                await asyncio.to_thread(service.restore, index, body)
            return self._ok({"server": index, "restored": True})
        if sub == "/migrate":
            data = self._json(body)
            async with self._lock:
                return self._ok(service.migrate(index,
                                                int(data["worker"])))
        if sub == "/fault":
            data = self._json(body)
            async with self._lock:
                return self._ok(service.inject_fault_plan(index, data))
        raise _HttpError(404, f"unknown server endpoint {sub!r}")


async def serve(service: FleetService, host: str = "127.0.0.1",
                port: int = 8023,
                ready: Optional[asyncio.Event] = None) -> None:
    """Run the control plane until ``POST /shutdown``."""
    plane = ControlPlane(service, host=host, port=port)
    await plane.start()
    if ready is not None:
        ready.set()
    print(f"repro service: {service.num_servers} servers on "
          f"{service.num_workers} workers, "
          f"http://{host}:{plane.bound_port}", flush=True)
    await plane.serve_until_shutdown()
