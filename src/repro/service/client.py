"""A stdlib client for the fleet control plane (``repro ctl``)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.errors import ReproError


class ControlClient:
    """Synchronous HTTP client mirroring the REST routes one-to-one."""

    def __init__(self, base_url: str = "http://127.0.0.1:8023",
                 timeout_s: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # --- transport ----------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[bytes] = None,
                 content_type: str = "application/json") -> bytes:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": content_type} if body else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return response.read()
        except urllib.error.HTTPError as err:
            detail = err.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ReproError(
                f"{method} {path}: HTTP {err.code}: {detail}") from None
        except urllib.error.URLError as err:
            raise ReproError(
                f"cannot reach service at {self.base_url}: "
                f"{err.reason}") from None

    def _get(self, path: str) -> Dict[str, object]:
        return json.loads(self._request("GET", path))

    def _post(self, path: str,
              payload: Optional[Dict[str, object]] = None):
        body = json.dumps(payload or {}).encode()
        return json.loads(self._request("POST", path, body=body))

    # --- routes -------------------------------------------------------------

    def status(self):
        return self._get("/status")

    def servers(self):
        return self._get("/servers")

    def server(self, index: int):
        return self._get(f"/servers/{index}")

    def events(self, index: int, limit: int = 50):
        return self._get(f"/servers/{index}/events?n={limit}")

    def ingest(self, vm_id: int, memory_bytes: int,
               time_s: Optional[float] = None,
               lifetime_s: Optional[float] = None, vcpus: int = 2,
               image_id: int = 0):
        payload: Dict[str, object] = {"vm_id": vm_id,
                                      "memory_bytes": memory_bytes,
                                      "vcpus": vcpus, "image_id": image_id}
        if time_s is not None:
            payload["time_s"] = time_s
        if lifetime_s is not None:
            payload["lifetime_s"] = lifetime_s
        return self._post("/ingest", payload)

    def depart(self, vm_id: int, time_s: Optional[float] = None):
        payload: Dict[str, object] = {"vm_id": vm_id}
        if time_s is not None:
            payload["time_s"] = time_s
        return self._post("/depart", payload)

    def advance(self, until_s: Optional[float] = None,
                dt_s: Optional[float] = None):
        payload: Dict[str, object] = {}
        if until_s is not None:
            payload["until_s"] = until_s
        if dt_s is not None:
            payload["dt_s"] = dt_s
        return self._post("/advance", payload)

    def snapshot(self, index: int) -> bytes:
        return self._request("GET", f"/servers/{index}/snapshot")

    def restore(self, index: int, blob: bytes):
        return json.loads(self._request(
            "POST", f"/servers/{index}/restore", body=blob,
            content_type="application/octet-stream"))

    def migrate(self, index: int, worker: int):
        return self._post(f"/servers/{index}/migrate", {"worker": worker})

    def inject_fault_plan(self, index: int, plan: Dict[str, object]):
        return self._post(f"/servers/{index}/fault", plan)

    def retune(self, overrides: Dict[str, object],
               server: Optional[int] = None):
        payload: Dict[str, object] = {"overrides": overrides}
        if server is not None:
            payload["server"] = server
        return self._post("/retune", payload)

    def reshard(self, workers: int):
        return self._post("/reshard", {"workers": workers})

    def shutdown(self):
        return self._post("/shutdown")
