"""A resident fleet of warm simulators behind one control surface.

The batch path (:mod:`repro.sim.fleet`) answers "replay this 24 h trace
on N servers"; this module keeps those same servers *resident*: built
once, ticked forever, fed VM arrivals as they happen, and inspectable /
reconfigurable / checkpointable while running.  The REST layer in
:mod:`repro.service.http` is a thin JSON skin over the
:class:`FleetService` methods here, so everything is equally usable
in-process (tests drive it directly).

Layout: ``num_servers`` simulators are dealt round-robin onto
``num_workers`` logical worker shards
(:func:`repro.sim.fleet.shard_assignment`), and VMs route to servers by
``vm_id % num_servers`` — the same placement the batch fleet uses.
Checkpoints make the shards elastic: :meth:`FleetService.reshard`
snapshots every server, recomputes the assignment for the new worker
count, and restores each snapshot on its new worker;
:meth:`FleetService.migrate` moves one server the same way.  Because a
restored server continues bit-for-bit (``tests/test_snapshot.py``),
rebalancing never perturbs simulation results.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.daemon import GreenDIMMDaemon
from repro.errors import ConfigurationError, SimulationError
from repro.faults.plan import FaultPlan
from repro.policies.registry import DEFAULT_POLICY
from repro.sim import snapshot as snapshot_mod
from repro.sim.fleet import fleet_server_spec, shard_assignment
from repro.sim.snapshot import ServerSpec
from repro.service.stream import StreamSource
from repro.units import GIB
from repro.workloads.azure import VMEvent, VMInstance, VMType


class ServiceServer:
    """One warm simulator: a paused kernel run over a stream source."""

    def __init__(self, spec: ServerSpec, epoch_s: float = 5.0,
                 pinned_churn: bool = False):
        self.spec = spec
        self.sim = spec.build()
        source = StreamSource(self.sim)
        self.state = self.sim.kernel.begin(source, epoch_s,
                                           pinned_churn=pinned_churn)

    @property
    def source(self) -> StreamSource:
        return self.state.source  # type: ignore[return-value]

    @property
    def daemon(self) -> GreenDIMMDaemon:
        return self.sim.system.daemon

    # --- driving ------------------------------------------------------------

    def ingest(self, event: VMEvent) -> None:
        self.source.push(event)

    def tick(self, until_s: float) -> None:
        """Advance the paused run to *until_s* of simulation time."""
        if until_s > self.state.now_s:
            self.sim.kernel.advance(self.state, until_s=until_s, exact=True)

    # --- checkpoint/restore -------------------------------------------------

    def snapshot(self) -> bytes:
        return snapshot_mod.capture(self.sim, run_state=self.state,
                                    spec=self.spec)

    @classmethod
    def from_snapshot(cls, blob: bytes) -> "ServiceServer":
        restored = snapshot_mod.restore(blob)
        if restored.run_state is None or restored.spec is None:
            raise SimulationError(
                "service snapshots carry a run state and a spec")
        server = cls.__new__(cls)
        server.spec = restored.spec
        server.sim = restored.sim
        server.state = restored.run_state
        return server

    # --- reconfiguration ----------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> None:
        self.sim.system.install_fault_plan(plan, now_s=self.state.now_s)

    def retune(self, **overrides) -> None:
        self.sim.system.retune(**overrides)

    # --- observability ------------------------------------------------------

    def status(self) -> Dict[str, object]:
        system = self.sim.system
        mm = system.mm
        stats = self.daemon.stats
        residency = self.state.residency
        return {
            "now_s": self.state.now_s,
            "policy": system.policy_name,
            "running_vms": self.source.running,
            "pending_events": self.source.pending,
            "applied_events": self.source.cursor,
            "dram_energy_j": self.state.dram_energy,
            "baseline_dram_energy_j": self.state.baseline_energy,
            "residency_s": residency.as_dict(),
            "residency_fractions": residency.fractions(),
            "offline_blocks": system.policy.offline_block_count,
            "dpd_fraction": system.policy.dpd_fraction(),
            "free_pages": mm.free_pages,
            "online_pages": mm.online_pages,
            "offline_events": stats.offline_events,
            "online_events": stats.online_events,
            "emergency_onlines": stats.emergency_onlines,
            "fault_plan": (system.fault_plan.name
                           if system.fault_plan is not None else None),
            "config": {
                "off_thr_fraction": system.config.off_thr_fraction,
                "on_thr_fraction": system.config.on_thr_fraction,
                "monitor_period_s": system.config.monitor_period_s,
            },
        }

    def events(self, limit: int = 50) -> List[Dict[str, object]]:
        """The daemon's most recent decisions, newest last."""
        log = self.daemon.event_log
        tail = list(log)[-max(0, limit):]
        return [{"time_s": e.time_s, "kind": e.kind, "block": e.block}
                for e in tail]


class FleetService:
    """All resident servers, their worker shards, and the fleet clock."""

    def __init__(self, num_servers: int = 4, num_workers: int = 2,
                 policy: str = DEFAULT_POLICY, seed: int = 7,
                 epoch_s: float = 5.0, enable_ksm: bool = False,
                 pinned_churn: bool = False,
                 kernel_boot_bytes: int = 2 * GIB):
        if num_servers < 1:
            raise ConfigurationError("need at least one fleet server")
        self.num_servers = num_servers
        self.policy = policy
        self.seed = seed
        self.epoch_s = epoch_s
        self.now_s = 0.0
        self._vm_types: Dict[int, VMType] = {}
        self.assignment = shard_assignment(num_servers, num_workers)
        self.workers: List[Dict[int, ServiceServer]] = [
            {} for _ in range(num_workers)]
        for index in range(num_servers):
            spec = fleet_server_spec(index, seed=seed, policy=policy,
                                     enable_ksm=enable_ksm,
                                     kernel_boot_bytes=kernel_boot_bytes)
            self.workers[self.assignment[index]][index] = ServiceServer(
                spec, epoch_s=epoch_s, pinned_churn=pinned_churn)

    # --- lookup -------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def server(self, index: int) -> ServiceServer:
        try:
            return self.workers[self.assignment[index]][index]
        except KeyError:
            raise ConfigurationError(
                f"no server {index} (fleet has {self.num_servers})") from None

    def route(self, vm_id: int) -> int:
        """The server a VM lands on (same placement as batch fleets)."""
        return vm_id % self.num_servers

    # --- ingestion ----------------------------------------------------------

    def ingest(self, vm_id: int, memory_bytes: int, time_s: float,
               lifetime_s: Optional[float] = None, vcpus: int = 2,
               image_id: int = 0) -> Dict[str, object]:
        """Admit one VM: an arrival now (or at *time_s*, if later than
        the server's clock) plus, with a lifetime, its departure.

        Returns the placement, so callers can follow up on the server.
        """
        if memory_bytes <= 0:
            raise ConfigurationError("VM memory must be positive")
        index = self.route(vm_id)
        server = self.server(index)
        arrival = max(time_s, server.state.now_s)
        departure = (arrival + lifetime_s if lifetime_s is not None
                     else math.inf)
        vm_type = self._vm_types.get(vm_id)
        if vm_type is None:
            vm_type = VMType(name=f"ingest-{vm_id}", vcpus=vcpus,
                             memory_bytes=memory_bytes,
                             lifetime_mu=0.0, lifetime_sigma=1.0,
                             image_id=image_id)
            self._vm_types[vm_id] = vm_type
        instance = VMInstance(vm_id=vm_id, vm_type=vm_type,
                              arrival_s=arrival, departure_s=departure)
        server.ingest(VMEvent(time_s=arrival, kind="arrive",
                              instance=instance))
        if lifetime_s is not None:
            server.ingest(VMEvent(time_s=departure, kind="depart",
                                  instance=instance))
        return {"vm_id": vm_id, "server": index,
                "worker": self.assignment[index], "arrival_s": arrival}

    def depart(self, vm_id: int, time_s: float) -> Dict[str, object]:
        """Explicitly retire a VM that was admitted without a lifetime."""
        vm_type = self._vm_types.get(vm_id)
        if vm_type is None:
            raise ConfigurationError(f"unknown VM {vm_id}")
        index = self.route(vm_id)
        server = self.server(index)
        when = max(time_s, server.state.now_s)
        instance = VMInstance(vm_id=vm_id, vm_type=vm_type,
                              arrival_s=0.0, departure_s=when)
        server.ingest(VMEvent(time_s=when, kind="depart",
                              instance=instance))
        return {"vm_id": vm_id, "server": index, "departure_s": when}

    # --- the fleet clock ----------------------------------------------------

    def advance(self, until_s: Optional[float] = None,
                dt_s: Optional[float] = None) -> float:
        """Tick every server to one shared simulation time."""
        if (until_s is None) == (dt_s is None):
            raise ConfigurationError("pass exactly one of until_s / dt_s")
        target = self.now_s + dt_s if dt_s is not None else until_s
        if target < self.now_s:
            raise ConfigurationError(
                f"cannot rewind the fleet clock ({target} < {self.now_s})")
        for worker in self.workers:
            for server in worker.values():
                server.tick(target)
        self.now_s = target
        return self.now_s

    # --- checkpointing and elasticity ---------------------------------------

    def snapshot(self, index: int) -> bytes:
        return self.server(index).snapshot()

    def restore(self, index: int, blob: bytes) -> None:
        """Replace server *index* with a restored snapshot, in place."""
        if index not in self.assignment:
            raise ConfigurationError(f"no server {index}")
        server = ServiceServer.from_snapshot(blob)
        self.workers[self.assignment[index]][index] = server

    def migrate(self, index: int, worker: int) -> Dict[str, object]:
        """Move one server to another worker via checkpoint/restore."""
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(
                f"no worker {worker} (fleet has {self.num_workers})")
        source_worker = self.assignment[index]
        blob = self.snapshot(index)
        del self.workers[source_worker][index]
        self.assignment[index] = worker
        self.workers[worker][index] = ServiceServer.from_snapshot(blob)
        return {"server": index, "from": source_worker, "to": worker,
                "snapshot_bytes": len(blob)}

    def reshard(self, num_workers: int) -> Dict[str, object]:
        """Elastically change the worker count, checkpoint-based.

        Every server is snapshotted, the round-robin assignment is
        recomputed for the new shape, and each snapshot is restored on
        its new worker.  Results are unaffected: a restored server
        continues bit-for-bit.
        """
        moved = 0
        blobs = {index: self.snapshot(index)
                 for index in range(self.num_servers)}
        new_assignment = shard_assignment(self.num_servers, num_workers)
        workers: List[Dict[int, ServiceServer]] = [
            {} for _ in range(num_workers)]
        for index, blob in blobs.items():
            if new_assignment[index] != self.assignment.get(index):
                moved += 1
            workers[new_assignment[index]][index] = \
                ServiceServer.from_snapshot(blob)
        self.workers = workers
        self.assignment = new_assignment
        return {"workers": num_workers, "servers": self.num_servers,
                "moved": moved}

    # --- runtime reconfiguration --------------------------------------------

    def inject_fault_plan(self, index: int,
                          plan: Dict[str, object]) -> Dict[str, object]:
        fault_plan = FaultPlan.from_dict(plan)
        self.server(index).install_fault_plan(fault_plan)
        return {"server": index, "plan": fault_plan.name,
                "rules": len(fault_plan)}

    def retune(self, overrides: Dict[str, object],
               index: Optional[int] = None) -> Dict[str, object]:
        """Retune daemon thresholds — one server or the whole fleet."""
        targets = ([index] if index is not None
                   else list(range(self.num_servers)))
        for target in targets:
            self.server(target).retune(**overrides)
        return {"servers": targets, "overrides": overrides}

    # --- observability ------------------------------------------------------

    def status(self) -> Dict[str, object]:
        dram = sum(self.server(i).state.dram_energy
                   for i in range(self.num_servers))
        baseline = sum(self.server(i).state.baseline_energy
                       for i in range(self.num_servers))
        running = sum(self.server(i).source.running
                      for i in range(self.num_servers))
        return {
            "now_s": self.now_s,
            "servers": self.num_servers,
            "workers": self.num_workers,
            "policy": self.policy,
            "epoch_s": self.epoch_s,
            "running_vms": running,
            "fleet_dram_energy_j": dram,
            "fleet_baseline_dram_energy_j": baseline,
            "fleet_dram_energy_saving": (
                1.0 - dram / baseline if baseline > 0 else 0.0),
            "assignment": {str(k): v for k, v in self.assignment.items()},
        }

    def servers(self) -> List[Dict[str, object]]:
        out = []
        for index in range(self.num_servers):
            summary = self.server(index).status()
            summary["server"] = index
            summary["worker"] = self.assignment[index]
            out.append(summary)
        return out

    def server_status(self, index: int) -> Dict[str, object]:
        summary = self.server(index).status()
        summary["server"] = index
        summary["worker"] = self.assignment[index]
        return summary

    def server_events(self, index: int,
                      limit: int = 50) -> List[Dict[str, object]]:
        return self.server(index).events(limit=limit)
