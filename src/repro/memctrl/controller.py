"""A cycle-approximate DDR4 memory controller.

Per-channel FR-FCFS scheduling over a small reorder window, per-bank
open-page row-buffer timing, channel data-bus contention, and
rank-granularity low-power management with wake-up penalties.  Fidelity
is deliberately at the level the motivation experiments need: it shows
*when ranks get to sleep* and *what wake-ups cost*, not exact command-bus
behaviour.

Outputs plug straight into the power model: :meth:`ControllerStats.rank_profiles`
produces the per-rank state residencies and bandwidths that
:class:`repro.power.DRAMPowerModel` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.address import AddressMapping
from repro.dram.organization import MemoryOrganization
from repro.dram.timing import DDR4Timing
from repro.errors import ConfigurationError
from repro.memctrl.bankstate import BankState
from repro.memctrl.lowpower import LowPowerConfig, RankLowPowerPolicy, RankResidency
from repro.memctrl.request import MemoryRequest
from repro.power.model import RankPowerProfile
from repro.power.states import PowerState


@dataclass
class ControllerStats:
    """Aggregate results of one controller run."""

    total_time_ns: float
    requests: int
    reads: int
    writes: int
    row_hits: int
    row_misses: int
    wakeups: int
    bytes_transferred: int
    latencies_ns: np.ndarray
    refresh_stalls: int = 0
    residencies: List[RankResidency] = field(default_factory=list)
    rank_bytes: List[int] = field(default_factory=list)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def mean_latency_ns(self) -> float:
        return float(self.latencies_ns.mean()) if self.latencies_ns.size else 0.0

    def percentile_latency_ns(self, pct: float) -> float:
        if not self.latencies_ns.size:
            return 0.0
        return float(np.percentile(self.latencies_ns, pct))

    @property
    def bandwidth_bytes_per_s(self) -> float:
        if self.total_time_ns <= 0:
            return 0.0
        return self.bytes_transferred / (self.total_time_ns * 1e-9)

    def selfrefresh_fraction(self) -> float:
        """Average self-refresh residency over all ranks (Figure 3b)."""
        if not self.residencies:
            return 0.0
        return sum(r.fraction(PowerState.SELF_REFRESH)
                   for r in self.residencies) / len(self.residencies)

    def lowpower_fraction(self) -> float:
        """Average power-down + self-refresh residency over all ranks."""
        if not self.residencies:
            return 0.0
        total = 0.0
        for r in self.residencies:
            total += r.fraction(PowerState.SELF_REFRESH)
            total += r.fraction(PowerState.POWER_DOWN)
        return total / len(self.residencies)

    def rank_profiles(self, row_miss_rate: Optional[float] = None
                      ) -> List[RankPowerProfile]:
        """Per-rank :class:`RankPowerProfile` list for the power model."""
        if row_miss_rate is None:
            row_miss_rate = 1.0 - self.row_hit_rate
        seconds = max(self.total_time_ns * 1e-9, 1e-12)
        profiles = []
        for residency, nbytes in zip(self.residencies, self.rank_bytes):
            profiles.append(RankPowerProfile(
                state_residency=residency.residency_map(),
                bandwidth_bytes_per_s=nbytes / seconds,
                row_miss_rate=row_miss_rate))
        return profiles


class MemoryController:
    """Schedules a request trace onto the DRAM topology.

    Parameters
    ----------
    organization / mapping:
        Topology and address mapping (interleaved or not — the comparison
        at the heart of Figure 3).
    timing:
        Speed grade; defaults to the mapping-appropriate DDR4-2133 set.
    lowpower:
        Rank demotion policy (timeouts for power-down / self-refresh).
    window:
        FR-FCFS reorder window per channel.
    """

    LINE_BYTES = 64

    def __init__(self, organization: MemoryOrganization,
                 mapping: Optional[AddressMapping] = None,
                 timing: Optional[DDR4Timing] = None,
                 lowpower: Optional[LowPowerConfig] = None,
                 window: int = 16):
        from repro.dram.timing import DDR4_2133, DDR4_2133_8GB

        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.organization = organization
        self.mapping = mapping or AddressMapping(organization)
        if self.mapping.organization is not organization:
            raise ConfigurationError("mapping built for a different topology")
        density_gb = organization.device.density_bits / (1 << 30)
        self.timing = timing or (DDR4_2133 if density_gb <= 4 else DDR4_2133_8GB)
        self.lowpower = lowpower or LowPowerConfig()
        self.window = window
        self._local_row_bits = organization.device.local_row_bits

    # --- helpers ---------------------------------------------------------

    def _rank_index(self, channel: int, rank: int) -> int:
        return channel * self.organization.ranks_per_channel + rank

    # --- simulation ---------------------------------------------------------

    def run(self, requests: Sequence[MemoryRequest]) -> ControllerStats:
        """Simulate *requests* (must be sorted by arrival time)."""
        org = self.organization
        timing = self.timing
        n_ranks = org.total_ranks
        banks: Dict[Tuple[int, int, int], BankState] = {}
        policies = [RankLowPowerPolicy(self.lowpower) for _ in range(n_ranks)]
        bus_free_ns = [0.0] * org.channels
        rank_bytes = [0] * n_ranks
        # Auto-refresh bookkeeping: each rank takes a REF every tREFI and
        # is unavailable for tRFC (self-refreshing ranks refresh
        # internally and are exempt until they wake).
        next_ref_ns = [timing.trefi_ns] * n_ranks
        refresh_stalls = 0

        # Split by channel; each channel schedules independently.
        per_channel: List[List[Tuple[MemoryRequest, int, int, int]]] = [
            [] for _ in range(org.channels)]
        for req in requests:
            d = self.mapping.decode(req.address)
            row = d.row(self._local_row_bits)
            per_channel[d.channel].append((req, d.rank, d.bank, row))

        latencies: List[float] = []
        reads = writes = row_hits = row_misses = wakeups = 0
        end_ns = 0.0

        for channel, queue in enumerate(per_channel):
            position = 0
            now = 0.0
            while position < len(queue):
                # Candidate window: requests that have arrived, up to `window`.
                limit = min(position + self.window, len(queue))
                chosen = None
                for i in range(position, limit):
                    req, rank, bank, row = queue[i]
                    if req.arrival_ns > now and i > position:
                        break
                    bank_state = banks.get((channel, rank, bank))
                    if bank_state is not None and bank_state.open_row == row:
                        chosen = i
                        break
                if chosen is None:
                    chosen = position
                queue[position], queue[chosen] = queue[chosen], queue[position]
                req, rank, bank, row = queue[position]
                position += 1

                key = (channel, rank, bank)
                bank_state = banks.setdefault(key, BankState())
                rank_id = self._rank_index(channel, rank)
                policy = policies[rank_id]

                start = max(req.arrival_ns, bus_free_ns[channel])
                # Catch up this rank's refresh schedule; a request landing
                # inside a REF window waits out the remaining tRFC.
                while next_ref_ns[rank_id] + timing.trfc_ns < start:
                    next_ref_ns[rank_id] += timing.trefi_ns
                if (next_ref_ns[rank_id] <= start
                        and policy.state_at(start) is not PowerState.SELF_REFRESH):
                    blocked_until = next_ref_ns[rank_id] + timing.trfc_ns
                    if blocked_until > start:
                        start = blocked_until
                        refresh_stalls += 1
                    next_ref_ns[rank_id] += timing.trefi_ns
                penalty = policy.wake_penalty_ns(start)
                if penalty:
                    wakeups += 1
                    # Waking from a low-power state finds all banks closed.
                    for (ch, rk, _b), state in banks.items():
                        if ch == channel and rk == rank:
                            state.precharge()
                            state.ready_ns = max(state.ready_ns, start + penalty)
                hits_before = bank_state.row_hits
                finish = bank_state.access(row, start + penalty, timing)
                if bank_state.row_hits > hits_before:
                    row_hits += 1
                else:
                    row_misses += 1
                bus_free_ns[channel] = finish
                policy.note_activity(finish, busy_from_ns=start + penalty)
                req.finish_ns = finish
                latencies.append(finish - req.arrival_ns)
                rank_bytes[rank_id] += self.LINE_BYTES
                if req.is_write:
                    writes += 1
                else:
                    reads += 1
                # The next pick happens once this burst holds the bus:
                # everything that has arrived by then is a candidate.
                now = max(now, bus_free_ns[channel])
                end_ns = max(end_ns, finish)

        for policy in policies:
            policy.account_until(end_ns)

        return ControllerStats(
            total_time_ns=end_ns,
            requests=len(requests),
            reads=reads,
            writes=writes,
            row_hits=row_hits,
            row_misses=row_misses,
            wakeups=wakeups,
            bytes_transferred=len(requests) * self.LINE_BYTES,
            refresh_stalls=refresh_stalls,
            latencies_ns=np.array(latencies, dtype=float),
            residencies=[p.residency for p in policies],
            rank_bytes=rank_bytes,
        )
