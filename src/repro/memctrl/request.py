"""Memory requests as seen by the controller."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class MemoryRequest:
    """One 64-byte demand access.

    ``arrival_ns`` is when the request reaches the controller;
    ``finish_ns`` is filled in by the controller when data transfer
    completes (including any low-power wake-up the target rank paid).
    """

    address: int
    access: AccessType = AccessType.READ
    arrival_ns: float = 0.0
    finish_ns: float = field(default=0.0, compare=False)

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE

    @property
    def latency_ns(self) -> float:
        """Arrival-to-finish latency (valid after simulation)."""
        return self.finish_ns - self.arrival_ns
