"""Per-bank row-buffer state and timing bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import DDR4Timing


@dataclass
class BankState:
    """One (channel, rank, bank) row buffer.

    ``ready_ns`` is the earliest time the bank can accept a new column or
    row command; the controller advances it as it schedules commands.
    """

    open_row: Optional[int] = None
    ready_ns: float = 0.0
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0

    def access(self, row: int, now_ns: float, timing: DDR4Timing) -> float:
        """Schedule one 64B access to *row* at or after *now_ns*.

        Returns the completion time of the data burst.  Implements the
        classic open-page policy: row hit pays CL+burst, row miss pays
        (PRE +) ACT + CL + burst.
        """
        start = max(now_ns, self.ready_ns)
        if self.open_row == row:
            self.row_hits += 1
            finish = start + timing.cl_ns + timing.burst_duration_ns
            self.ready_ns = start + timing.burst_duration_ns
        else:
            penalty = timing.trp_ns if self.open_row is not None else 0.0
            self.row_misses += 1
            self.activations += 1
            start += penalty
            finish = start + timing.trcd_ns + timing.cl_ns + timing.burst_duration_ns
            self.ready_ns = start + timing.trcd_ns + timing.burst_duration_ns
            self.open_row = row
        return finish

    def precharge(self) -> None:
        """Close the open row (needed before the rank enters a low-power
        state, which requires all banks precharged)."""
        self.open_row = None

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
