"""Partial Array Self-Refresh (PASR) mask registers.

The comparison baseline of Sections 4.3 and 6.2: a controller supporting
PASR keeps a refresh-enable bit per *bank* per rank — 16 bits per rank,
so 128 bits for the paper's 4-channel x 2-rank setup — and idle banks can
stop refreshing.  GreenDIMM contrasts this with its single 64-bit
register: one bit per sub-array *group*, independent of channel and rank
counts.
"""

from __future__ import annotations

from typing import List

from repro.dram.organization import MemoryOrganization
from repro.errors import ConfigurationError


class PASRBitVector:
    """Per-rank, per-bank refresh-enable mask (1 = refreshing)."""

    def __init__(self, organization: MemoryOrganization):
        self.organization = organization
        self.banks_per_rank = organization.device.banks
        self._masks: List[int] = [
            (1 << self.banks_per_rank) - 1 for _ in range(organization.total_ranks)]

    @property
    def register_bits(self) -> int:
        """Total control-register bits this scheme needs (paper: 128 for
        4 channels x 2 ranks of 16-bank devices)."""
        return self.organization.total_ranks * self.banks_per_rank

    def _check(self, rank: int, bank: int) -> None:
        if not 0 <= rank < self.organization.total_ranks:
            raise ConfigurationError(f"rank {rank} out of range")
        if not 0 <= bank < self.banks_per_rank:
            raise ConfigurationError(f"bank {bank} out of range")

    def disable_refresh(self, rank: int, bank: int) -> None:
        self._check(rank, bank)
        self._masks[rank] &= ~(1 << bank)

    def enable_refresh(self, rank: int, bank: int) -> None:
        self._check(rank, bank)
        self._masks[rank] |= 1 << bank

    def is_refreshing(self, rank: int, bank: int) -> bool:
        self._check(rank, bank)
        return bool(self._masks[rank] >> bank & 1)

    def refreshing_fraction(self) -> float:
        """Fraction of all banks still being refreshed."""
        total = self.register_bits
        on = sum(bin(mask).count("1") for mask in self._masks)
        return on / total if total else 1.0

    def rank_mask(self, rank: int) -> int:
        if not 0 <= rank < self.organization.total_ranks:
            raise ConfigurationError(f"rank {rank} out of range")
        return self._masks[rank]
