"""Rank-granularity low-power management (the baseline mechanism).

Commodity controllers demote an idle rank to power-down after a short
idle window and to self-refresh after a longer one; any request to the
rank first pays the wake-up latency (Section 2.2).  The residency
counters collected here back the Figure 3b reproduction, where
interleaving drives self-refresh residency to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.tracer import GLOBAL_TRACER as TRACER
from repro.power.states import PowerState, exit_latency_ns


@dataclass(frozen=True)
class LowPowerConfig:
    """Idle-timeout policy for one rank.

    Defaults follow common BIOS behaviour: demote to power-down within
    about a microsecond of idleness and to self-refresh after a long
    quiet period.  ``enabled=False`` models power management turned off.
    """

    enabled: bool = True
    powerdown_idle_ns: float = 1_000.0
    selfrefresh_idle_ns: float = 64_000.0

    def __post_init__(self) -> None:
        if self.selfrefresh_idle_ns < self.powerdown_idle_ns:
            raise ConfigurationError(
                "self-refresh threshold must be >= power-down threshold")


@dataclass
class RankResidency:
    """Time a rank spent in each state, in nanoseconds."""

    time_ns: Dict[PowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in PowerState})

    def add(self, state: PowerState, duration_ns: float) -> None:
        self.time_ns[state] += duration_ns

    @property
    def total_ns(self) -> float:
        return sum(self.time_ns.values())

    def fraction(self, state: PowerState) -> float:
        total = self.total_ns
        return self.time_ns[state] / total if total else 0.0

    def residency_map(self) -> Dict[PowerState, float]:
        """Normalized residency fractions (for the DRAM power model)."""
        total = self.total_ns
        if not total:
            return {PowerState.PRECHARGE_STANDBY: 1.0}
        return {state: t / total for state, t in self.time_ns.items() if t > 0}


class RankLowPowerPolicy:
    """Tracks one rank's idleness and applies the timeout demotion policy.

    The caller tells it when requests finish on the rank
    (:meth:`note_activity`) and asks what wake-penalty a request arriving
    at a given time pays (:meth:`wake_penalty_ns`); :meth:`account_until`
    folds elapsed time into the residency counters.
    """

    def __init__(self, config: LowPowerConfig):
        self.config = config
        self.last_activity_ns = 0.0
        self._accounted_ns = 0.0
        self.residency = RankResidency()
        self.wakeups = 0

    def _state_at_idle(self, idle_ns: float) -> PowerState:
        if not self.config.enabled:
            return PowerState.PRECHARGE_STANDBY
        if idle_ns >= self.config.selfrefresh_idle_ns:
            return PowerState.SELF_REFRESH
        if idle_ns >= self.config.powerdown_idle_ns:
            return PowerState.POWER_DOWN
        return PowerState.PRECHARGE_STANDBY

    def state_at(self, now_ns: float) -> PowerState:
        """Power state the rank is in at *now_ns* (if still idle)."""
        return self._state_at_idle(max(0.0, now_ns - self.last_activity_ns))

    def wake_penalty_ns(self, now_ns: float) -> float:
        """Exit latency a request arriving at *now_ns* must pay."""
        state = self.state_at(now_ns)
        penalty = exit_latency_ns(state)
        if penalty:
            self.wakeups += 1
            # Counters, not per-wakeup events: this sits on the
            # per-request path and would flood the ring buffer.
            TRACER.counter("memctrl.wakeups." + state.value)
        return penalty

    def account_until(self, now_ns: float) -> None:
        """Attribute [last accounted, now) to the states the rank passed
        through while idle."""
        start = self._accounted_ns
        if now_ns <= start:
            return
        idle_origin = self.last_activity_ns
        if start < idle_origin:
            busy_end = min(idle_origin, now_ns)
            self.residency.add(PowerState.ACTIVE_STANDBY, busy_end - start)
            start = busy_end
            self._accounted_ns = start
            if now_ns <= start:
                return
        # Boundaries where the state changes, in absolute time.
        boundaries = [
            (idle_origin + self.config.powerdown_idle_ns, PowerState.PRECHARGE_STANDBY),
            (idle_origin + self.config.selfrefresh_idle_ns, PowerState.POWER_DOWN),
            (float("inf"), PowerState.SELF_REFRESH),
        ]
        if not self.config.enabled:
            boundaries = [(float("inf"), PowerState.PRECHARGE_STANDBY)]
        cursor = start
        for boundary, state in boundaries:
            if cursor >= now_ns:
                break
            span_end = min(boundary, now_ns)
            if span_end > cursor:
                self.residency.add(state, span_end - cursor)
                cursor = span_end
        self._accounted_ns = now_ns

    def note_activity(self, finish_ns: float,
                      busy_from_ns: Optional[float] = None) -> None:
        """A request was served on this rank, finishing at *finish_ns*.

        When *busy_from_ns* is given, the span [busy_from, finish) is
        attributed to ACTIVE_STANDBY (a row was open serving the burst);
        the idle time before it is attributed by the demotion ladder.
        """
        if busy_from_ns is not None and busy_from_ns < finish_ns:
            self.account_until(min(busy_from_ns, finish_ns))
            start = max(self._accounted_ns, busy_from_ns)
            if finish_ns > start:
                self.residency.add(PowerState.ACTIVE_STANDBY,
                                   finish_ns - start)
                self._accounted_ns = finish_ns
        else:
            self.account_until(finish_ns)
        self.last_activity_ns = max(self.last_activity_ns, finish_ns)
