"""DRAM mode registers: how the gating commands actually reach devices.

Section 4.3: "the memory controller sets the DRAM mode register such
that the peripheral and I/O circuits of sub-arrays are turned off ...
after the DRAM mode register of every DRAM device in a rank is
concurrently updated, each DRAM device turns off the power gates".

This module models that command path: a per-rank mode-register file
whose GreenDIMM field is the 64-bit sub-array-group mask, programmed
with MRS commands.  An MRS command carries 16 payload bits (one MR
write), so refreshing the full mask costs four MRS commands per rank,
each taking tMRD.  All devices of a rank latch the same MRS broadcast —
that is why the paper needs no per-device state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError

#: MRS-to-MRS command spacing, nanoseconds (DDR4 tMRD = 8 tCK).
TMRD_NS = 7.5

#: Payload bits one MRS write can update.
MRS_PAYLOAD_BITS = 16


@dataclass
class RankModeState:
    """The mode-register fields one rank's devices currently hold."""

    #: The vendor-defined sub-array-gate mask (bit i = group i gated).
    subarray_gate_mask: int = 0
    #: MRS commands issued to this rank so far.
    mrs_commands: int = 0


class ModeRegisterFile:
    """Controller-side shadow of every rank's mode registers.

    ``program_gate_mask`` computes which 16-bit MR slices changed and
    issues only those MRS writes, returning the command latency — the
    realistic cost of a gating update.
    """

    def __init__(self, total_ranks: int, mask_bits: int = 64):
        if total_ranks <= 0:
            raise ConfigurationError("need at least one rank")
        if mask_bits % MRS_PAYLOAD_BITS:
            raise ConfigurationError(
                "mask width must be a multiple of the MRS payload")
        self.total_ranks = total_ranks
        self.mask_bits = mask_bits
        self._ranks: List[RankModeState] = [RankModeState()
                                            for _ in range(total_ranks)]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.total_ranks:
            raise ConfigurationError(f"rank {rank} out of range")

    def rank_state(self, rank: int) -> RankModeState:
        self._check_rank(rank)
        return self._ranks[rank]

    def _changed_slices(self, old: int, new: int) -> List[int]:
        slices = []
        for index in range(self.mask_bits // MRS_PAYLOAD_BITS):
            shift = index * MRS_PAYLOAD_BITS
            payload_mask = ((1 << MRS_PAYLOAD_BITS) - 1) << shift
            if (old ^ new) & payload_mask:
                slices.append(index)
        return slices

    def program_gate_mask(self, rank: int, mask: int) -> float:
        """Bring one rank's gate mask to *mask*; returns MRS latency (ns)."""
        self._check_rank(rank)
        if mask >> self.mask_bits:
            raise ConfigurationError("mask wider than the register")
        state = self._ranks[rank]
        slices = self._changed_slices(state.subarray_gate_mask, mask)
        state.subarray_gate_mask = mask
        state.mrs_commands += len(slices)
        return len(slices) * TMRD_NS

    def broadcast_gate_mask(self, mask: int) -> float:
        """Program every rank (GreenDIMM gates groups across all ranks).

        Ranks on different channels program in parallel; ranks sharing a
        command bus serialize — we return the worst-rank latency times
        one, as channels dominate parallelism in practice, and expose
        per-rank command counts for finer accounting.
        """
        if mask >> self.mask_bits:
            raise ConfigurationError("mask wider than the register")
        # Under the lock-step invariant every rank holds the same old
        # mask, so the changed-slice count can be computed once and
        # reused until a rank with a different shadow appears.
        worst = 0
        last_old = -1
        cached = 0
        n_slices = self.mask_bits // MRS_PAYLOAD_BITS
        for state in self._ranks:
            old = state.subarray_gate_mask
            if old != last_old:
                diff = old ^ mask
                cached = 0
                for index in range(n_slices):
                    if (diff >> (index * MRS_PAYLOAD_BITS)) & 0xFFFF:
                        cached += 1
                last_old = old
            state.subarray_gate_mask = mask
            state.mrs_commands += cached
            if cached > worst:
                worst = cached
        return worst * TMRD_NS

    def consistent(self) -> bool:
        """All ranks hold the same mask (the lock-step invariant)."""
        masks = {state.subarray_gate_mask for state in self._ranks}
        return len(masks) <= 1

    def command_counts(self) -> Dict[int, int]:
        return {rank: state.mrs_commands
                for rank, state in enumerate(self._ranks)}

    # --- checkpoint/restore -----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {"ranks": self._ranks}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._ranks = state["ranks"]
