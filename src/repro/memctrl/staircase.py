"""gem5-style idle/power-down staircase microbenchmarks.

The gem5 power-down integration paper (Jagtap et al., arXiv 1803.07613)
validates DRAM low-power state machines with an idle-period sweep: a
short access burst followed by an idle gap of growing length.  As the
gap crosses each demotion threshold the rank steps down the ladder —
precharge standby, then precharge power-down, then self-refresh — and
the idle-energy-vs-idle-time curve bends at exactly those thresholds,
its slope dropping to the deeper state's background power.  That
staircase shape is an *independent* reference for the
:mod:`repro.memctrl` state machines: it pins entry thresholds, exit
latencies, and residency accounting against published behaviour instead
of only GreenDIMM's own measurements.

Three sweeps live here:

* :func:`run_staircase` — drives :class:`~repro.memctrl.lowpower.
  RankLowPowerPolicy` through the idle sweep and prices each point with
  the :class:`~repro.power.model.DRAMPowerModel` background/refresh
  terms.
* :func:`run_pasr_sweep` — walks :class:`~repro.memctrl.pasr.
  PASRBitVector` through progressive bank gating (refresh fraction must
  fall monotonically, one bank's worth per step).
* :func:`run_mrs_sweep` — programs growing gate masks through
  :class:`~repro.memctrl.moderegister.ModeRegisterFile`, checking MRS
  command latency accounting and the lock-step rank invariant.

``validate.py`` exposes the headline assertions as paper-anchor checks,
and the ``gem5-staircase`` experiment feeds the whole sweep into the
figure regression suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.organization import MemoryOrganization, spec_server_memory
from repro.errors import ConfigurationError
from repro.memctrl.lowpower import LowPowerConfig, RankLowPowerPolicy
from repro.memctrl.moderegister import (
    MRS_PAYLOAD_BITS,
    TMRD_NS,
    ModeRegisterFile,
)
from repro.memctrl.pasr import PASRBitVector
from repro.power.model import DRAMPowerModel
from repro.power.states import PowerState, exit_latency_ns

#: Length of the access burst that precedes every idle gap, ns.
BURST_NS = 100.0

#: Idle-gap sweep, ns: dense around the default demotion thresholds
#: (1 us to power-down, 64 us to self-refresh) and stretching well past
#: them so each regime contributes several points.
DEFAULT_IDLE_SWEEP_NS: Tuple[float, ...] = (
    100.0, 300.0, 700.0, 999.0, 1_000.0, 1_500.0, 3_000.0, 10_000.0,
    30_000.0, 63_999.0, 64_000.0, 100_000.0, 300_000.0, 1_000_000.0,
)


@dataclass(frozen=True)
class StaircasePoint:
    """One idle gap's worth of the sweep."""

    idle_ns: float
    #: State the rank is in at the end of the gap (before wake-up).
    state: PowerState
    #: Exit latency the wake-up access pays, ns.
    wake_penalty_ns: float
    #: Residency buckets over the whole window (burst + idle), ns.
    residency_ns: Dict[PowerState, float]
    #: Background+refresh energy spent over the idle gap, nJ.
    idle_energy_nj: float

    @property
    def idle_power_w(self) -> float:
        """Mean background+refresh power over the idle gap."""
        return (self.idle_energy_nj / self.idle_ns) if self.idle_ns else 0.0


def _idle_state_power_w(model: DRAMPowerModel, state: PowerState) -> float:
    """One rank's background+refresh power in *state*, watts."""
    devices = model.organization.devices_per_rank
    return devices * (model.device_model.background_power_w(state)
                      + model.device_model.refresh_power_w(state))


def run_staircase(organization: Optional[MemoryOrganization] = None,
                  config: Optional[LowPowerConfig] = None,
                  idle_sweep_ns: Tuple[float, ...] = DEFAULT_IDLE_SWEEP_NS,
                  ) -> List[StaircasePoint]:
    """Drive a fresh rank policy through every idle gap of the sweep."""
    organization = organization or spec_server_memory()
    config = config or LowPowerConfig()
    model = DRAMPowerModel(organization)
    state_power = {state: _idle_state_power_w(model, state)
                   for state in PowerState}
    points: List[StaircasePoint] = []
    for idle_ns in idle_sweep_ns:
        if idle_ns <= 0:
            raise ConfigurationError("idle gaps must be positive")
        policy = RankLowPowerPolicy(config)
        policy.note_activity(BURST_NS, busy_from_ns=0.0)
        end_ns = BURST_NS + idle_ns
        state = policy.state_at(end_ns)
        penalty = policy.wake_penalty_ns(end_ns)
        policy.account_until(end_ns)
        residency = dict(policy.residency.time_ns)
        idle_energy_nj = sum(
            duration * state_power[bucket_state]
            for bucket_state, duration in residency.items()
            if bucket_state is not PowerState.ACTIVE_STANDBY)
        points.append(StaircasePoint(
            idle_ns=idle_ns, state=state, wake_penalty_ns=penalty,
            residency_ns=residency, idle_energy_nj=idle_energy_nj))
    return points


def detect_entry_threshold(target: PowerState,
                           config: Optional[LowPowerConfig] = None,
                           hi_ns: float = 10_000_000.0) -> float:
    """Smallest idle gap (ns) at which the policy reaches *target*.

    Bisects the policy's own ``state_at`` ladder, so the detected
    threshold is a measurement of the state machine, not a read-back of
    its configuration — the point of an independent validation.
    """
    config = config or LowPowerConfig()
    policy = RankLowPowerPolicy(config)

    def reached(idle_ns: float) -> bool:
        state = policy.state_at(policy.last_activity_ns + idle_ns)
        if target is PowerState.POWER_DOWN:
            return state in (PowerState.POWER_DOWN, PowerState.SELF_REFRESH)
        return state is target
    lo, hi = 0.0, hi_ns
    if not reached(hi):
        raise ConfigurationError(
            f"{target.value} never entered within {hi_ns:g} ns")
    for _ in range(80):  # float64 bisection converges long before this
        mid = (lo + hi) / 2.0
        if reached(mid):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass
class StaircaseValidation:
    """Aggregate verdicts over one staircase sweep."""

    points: List[StaircasePoint]
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


def validate_staircase(points: List[StaircasePoint],
                       config: Optional[LowPowerConfig] = None) -> StaircaseValidation:
    """Check the staircase contract over a sweep's points.

    * states step down the ladder exactly at the configured thresholds;
    * every wake-up pays its state's published exit latency;
    * residency buckets close over the whole window (burst + idle);
    * idle energy grows monotonically with idle time while the marginal
      power (the curve's slope) never increases — the staircase shape.
    """
    config = config or LowPowerConfig()
    validation = StaircaseValidation(points=points)
    problems = validation.violations
    for point in points:
        expected = PowerState.PRECHARGE_STANDBY
        if config.enabled and point.idle_ns >= config.selfrefresh_idle_ns:
            expected = PowerState.SELF_REFRESH
        elif config.enabled and point.idle_ns >= config.powerdown_idle_ns:
            expected = PowerState.POWER_DOWN
        if point.state is not expected:
            problems.append(
                f"idle {point.idle_ns:g} ns: in {point.state.value}, "
                f"expected {expected.value}")
        if point.wake_penalty_ns != exit_latency_ns(point.state):
            problems.append(
                f"idle {point.idle_ns:g} ns: wake penalty "
                f"{point.wake_penalty_ns:g} ns != "
                f"{exit_latency_ns(point.state):g} ns ({point.state.value})")
        accounted = sum(point.residency_ns.values())
        window = BURST_NS + point.idle_ns
        if abs(accounted - window) > 1e-6 * window:
            problems.append(
                f"idle {point.idle_ns:g} ns: residency sums to "
                f"{accounted:g} ns over a {window:g} ns window")
    ordered = sorted(points, key=lambda p: p.idle_ns)
    last_slope = float("inf")
    for before, after in zip(ordered, ordered[1:]):
        if after.idle_energy_nj < before.idle_energy_nj - 1e-9:
            problems.append(
                f"idle energy fell between {before.idle_ns:g} and "
                f"{after.idle_ns:g} ns")
        slope = ((after.idle_energy_nj - before.idle_energy_nj)
                 / (after.idle_ns - before.idle_ns))
        if slope > last_slope * (1.0 + 1e-9):
            problems.append(
                f"marginal idle power rose between {before.idle_ns:g} and "
                f"{after.idle_ns:g} ns ({slope:g} > {last_slope:g} W) — "
                f"not a staircase")
        last_slope = slope
    return validation


# --- PASR and mode-register sweeps --------------------------------------------

def run_pasr_sweep(organization: Optional[MemoryOrganization] = None
                   ) -> List[Tuple[int, float]]:
    """Disable refresh bank by bank; returns (banks gated, fraction) steps.

    The refreshing fraction must fall by exactly one bank's share per
    step — the PASR mask has no hidden coupling between banks.
    """
    organization = organization or spec_server_memory()
    pasr = PASRBitVector(organization)
    steps = [(0, pasr.refreshing_fraction())]
    gated = 0
    for rank in range(organization.total_ranks):
        for bank in range(pasr.banks_per_rank):
            pasr.disable_refresh(rank, bank)
            gated += 1
            steps.append((gated, pasr.refreshing_fraction()))
    return steps


def validate_pasr_sweep(steps: List[Tuple[int, float]],
                        organization: Optional[MemoryOrganization] = None) -> List[str]:
    organization = organization or spec_server_memory()
    problems: List[str] = []
    total = organization.total_ranks * organization.device.banks
    for (gated_a, frac_a), (gated_b, frac_b) in zip(steps, steps[1:]):
        expected = 1.0 - gated_b / total
        if abs(frac_b - expected) > 1e-12:
            problems.append(f"after gating {gated_b} banks the refreshing "
                            f"fraction is {frac_b:g}, expected {expected:g}")
        if frac_b > frac_a:
            problems.append(f"refreshing fraction rose at step {gated_b}")
    if steps and steps[-1][1] != 0.0:
        problems.append("full gating left banks refreshing")
    return problems


def run_mrs_sweep(organization: Optional[MemoryOrganization] = None,
                  mask_bits: int = 64) -> Dict[str, float]:
    """Program growing gate masks; returns MRS accounting headlines.

    Growing the mask one 16-bit slice at a time must cost exactly one
    tMRD per step, re-programming an identical mask must be free, and
    the rank shadows must stay lock-step consistent throughout.
    """
    organization = organization or spec_server_memory()
    mrf = ModeRegisterFile(organization.total_ranks, mask_bits=mask_bits)
    slices = mask_bits // MRS_PAYLOAD_BITS
    per_slice_ns: List[float] = []
    consistent = True
    for index in range(slices):
        mask = (1 << ((index + 1) * MRS_PAYLOAD_BITS)) - 1
        per_slice_ns.append(mrf.broadcast_gate_mask(mask))
        consistent = consistent and mrf.consistent()
    idempotent_ns = mrf.broadcast_gate_mask((1 << mask_bits) - 1)
    mrf_full = ModeRegisterFile(organization.total_ranks,
                                mask_bits=mask_bits)
    full_update_ns = mrf_full.broadcast_gate_mask((1 << mask_bits) - 1)
    commands = mrf.command_counts()
    return {
        "slice_update_ns": max(per_slice_ns) if per_slice_ns else 0.0,
        "slice_updates_uniform": float(len(set(per_slice_ns)) <= 1),
        "idempotent_update_ns": idempotent_ns,
        "full_update_ns": full_update_ns,
        "expected_full_update_ns": slices * TMRD_NS,
        "consistent": float(consistent and mrf.consistent()),
        "commands_per_rank": float(commands[0]) if commands else 0.0,
        "commands_uniform": float(len(set(commands.values())) <= 1),
    }
