"""Memory-controller substrate.

A cycle-approximate DDR4 controller used for the motivation experiments
(Section 3.3): it shows how interleaving spreads even tiny footprints over
every rank and kills rank/bank low-power residency, and how disabling
interleaving restores it at a bandwidth cost.  It also hosts the
controller-side hardware GreenDIMM adds: the sub-array-group refresh-mask
register (one bit per group, 64 bits total regardless of topology) and the
wake-up ready bit the OS polls before on-lining (Section 4.3).
"""

from repro.memctrl.request import MemoryRequest, AccessType
from repro.memctrl.bankstate import BankState
from repro.memctrl.lowpower import RankLowPowerPolicy, LowPowerConfig, RankResidency
from repro.memctrl.pasr import PASRBitVector
from repro.memctrl.registers import GreenDIMMControlRegister
from repro.memctrl.controller import MemoryController, ControllerStats

__all__ = [
    "MemoryRequest",
    "AccessType",
    "BankState",
    "RankLowPowerPolicy",
    "LowPowerConfig",
    "RankResidency",
    "PASRBitVector",
    "GreenDIMMControlRegister",
    "MemoryController",
    "ControllerStats",
]
