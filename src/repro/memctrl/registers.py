"""GreenDIMM's controller-side control register (Section 4.3).

One bit per sub-array *group*: because a group spans every channel, rank,
and bank with the same sub-array index, 64 groups need only 64 bits —
regardless of how many channels or ranks the system has (contrast
:class:`repro.memctrl.pasr.PASRBitVector`).  Setting a bit gates the
group: refresh stops and the sub-arrays' peripheral/IO circuits power
down.  Clearing a bit starts the wake-up; the OS polls the per-group
ready bit (bounded by the 18 ns power-down exit) before on-lining the
backing memory block.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import ConfigurationError, PowerStateError
from repro.power.states import PowerState, exit_latency_ns


class GreenDIMMControlRegister:
    """The gate/ready bit pair for each sub-array group."""

    def __init__(self, num_groups: int = 64):
        if num_groups <= 0:
            raise ConfigurationError("need at least one group")
        self.num_groups = num_groups
        self._gated = 0  # bit i set -> group i in deep power-down
        self._wake_ready_at_ns: Dict[int, float] = {}

    @property
    def register_bits(self) -> int:
        """Bits of gating state (the paper's 64, vs PASR's per-rank x16)."""
        return self.num_groups

    def _check(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise ConfigurationError(f"group {group} out of range")

    # --- gating --------------------------------------------------------------

    def gate(self, group: int) -> None:
        """Put *group* into deep power-down (refresh off, periphery gated).

        Only legal for groups whose backing block the OS has off-lined —
        the register cannot check that, but the power-control layer does.
        """
        self._check(group)
        if group in self._wake_ready_at_ns:
            raise PowerStateError(f"group {group} is mid-wake-up")
        self._gated |= 1 << group

    def ungate(self, group: int, now_ns: float) -> float:
        """Begin waking *group*; returns the time at which it is ready."""
        self._check(group)
        if not self.is_gated(group):
            raise PowerStateError(f"group {group} is not gated")
        self._gated &= ~(1 << group)
        ready = now_ns + exit_latency_ns(PowerState.DEEP_POWER_DOWN)
        self._wake_ready_at_ns[group] = ready
        return ready

    # --- status ----------------------------------------------------------------

    def is_gated(self, group: int) -> bool:
        self._check(group)
        return bool(self._gated >> group & 1)

    def is_ready(self, group: int, now_ns: float) -> bool:
        """The ready bit the OS polls before calling ``online_pages()``."""
        self._check(group)
        if self.is_gated(group):
            return False
        ready_at = self._wake_ready_at_ns.get(group)
        if ready_at is None:
            return True
        if now_ns >= ready_at:
            del self._wake_ready_at_ns[group]
            return True
        return False

    def gated_groups(self) -> Iterable[int]:
        return (g for g in range(self.num_groups) if self.is_gated(g))

    @property
    def gated_count(self) -> int:
        return bin(self._gated).count("1")

    def gated_fraction(self) -> float:
        return self.gated_count / self.num_groups

    def raw_value(self) -> int:
        """The 64-bit register value (for sysfs-style inspection)."""
        return self._gated

    # --- checkpoint/restore -----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {"gated": self._gated,
                "wake_ready_at_ns": self._wake_ready_at_ns}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._gated = state["gated"]
        self._wake_ready_at_ns = state["wake_ready_at_ns"]
