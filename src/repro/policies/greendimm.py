"""The GreenDIMM daemon behind the :class:`PowerPolicy` surface.

A pure adapter: every obligation delegates to the wrapped
:class:`~repro.core.daemon.GreenDIMMDaemon` without adding, removing, or
reordering a single float operation, so a run through the adapter is
bit-for-bit identical to the pre-refactor kernel (pinned by
``tests/golden/kernel_golden.json``).  ``stats`` is a live view of the
daemon's own counter object — code that reads ``system.daemon.stats``
directly (the golden canonicalizer, examples) keeps seeing the same
object the kernel resets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.daemon import DaemonStats, GreenDIMMDaemon

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem


class GreenDIMMPolicy:
    """Adapter wrapping the threshold-offlining daemon."""

    name = "greendimm"
    span_batchable = True

    def __init__(self, system: "GreenDIMMSystem"):
        self.system = system
        self.daemon: GreenDIMMDaemon = system.daemon

    # --- stats lifecycle --------------------------------------------------

    @property
    def stats(self) -> DaemonStats:
        return self.daemon.stats

    def reset_stats(self) -> None:
        self.daemon.stats = DaemonStats()

    # --- stepping ---------------------------------------------------------

    def step(self, now_s: float, dt_s: float) -> None:
        self.daemon.step(now_s, dt_s)

    def tick_quiescent(self, dt_s: float) -> None:
        self.daemon.tick_quiescent(dt_s)

    def monitor_is_noop(self) -> bool:
        return self.daemon.monitor_is_noop()

    # --- replay surface ---------------------------------------------------

    @property
    def monitor_period_s(self) -> float:
        return self.daemon.config.monitor_period_s

    @property
    def monitor_timer(self) -> float:
        return self.daemon._since_monitor_s

    @monitor_timer.setter
    def monitor_timer(self, value: float) -> None:
        self.daemon._since_monitor_s = value

    # --- power / pressure surface ----------------------------------------

    def dpd_fraction(self) -> float:
        return self.daemon.dpd_fraction()

    @property
    def offline_block_count(self) -> int:
        return self.daemon.offline_block_count

    def emergency_online(self, needed_pages: int, now_s: float = 0.0) -> int:
        return self.daemon.emergency_online(needed_pages, now_s)

    def extra_power_w(self) -> float:
        return 0.0

    def runtime_overhead_fraction(self) -> float:
        return 0.0

    def policy_metrics(self) -> Dict[str, float]:
        return {}

    # --- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Stateless adapter: everything lives in the daemon, which the
        system snapshot captures directly."""
        return {}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        pass
