"""In-kernel RAMZzz: hot/cold rank reshaping with proactive demotion.

The live counterpart of :class:`repro.baselines.ramzzz.RAMZzzPolicy`:
page stats pack the cold majority of the live footprint into sleepable
ranks, so only ``HOT_FRACTION`` of current usage pins ranks awake, and
the manufactured-idle ranks are demoted proactively
(``DEMOTED_EFFICIENCY`` self-refresh capture).  The monitoring and
migration machinery costs the analytical model's constant runtime
overhead.
"""

from __future__ import annotations

import math

from repro.baselines.ramzzz import (
    DEMOTED_EFFICIENCY,
    HOT_FRACTION,
    RUNTIME_OVERHEAD,
)
from repro.policies.calibration import rank_mix_dpd, resident_ranks
from repro.policies.ranklevel import RankLevelPolicy
from repro.power.states import PowerState


class RAMZzzKernelPolicy(RankLevelPolicy):
    """Cold-page packing plus predictive demotion of the emptied ranks."""

    name = "ramzzz"

    IDLE_MIX = {PowerState.SELF_REFRESH: DEMOTED_EFFICIENCY,
                PowerState.POWER_DOWN: 0.15}

    def _compute_dpd(self, used_bytes: int) -> float:
        organization = self.system.organization
        plain = resident_ranks(used_bytes, organization)
        hot_ranks = math.ceil(used_bytes * HOT_FRACTION
                              / organization.rank_capacity_bytes)
        resident = max(1, min(plain, hot_ranks))
        idle = 1.0 - resident / organization.total_ranks
        return rank_mix_dpd(self.system.power_model, idle, self.IDLE_MIX)

    def runtime_overhead_fraction(self) -> float:
        return RUNTIME_OVERHEAD
