"""The policy registry: one name space for every power policy.

Kernel policies (things the epoch kernel can drive live) and analytical
estimators (the closed-form :mod:`repro.baselines` used by Figures
9-11) register side by side under one name, so the figure experiments,
``repro run --policy``, and ``repro tournament`` all agree on what a
policy is called.  Registration is **lazy**: specs hold factories, and
nothing is instantiated until a caller asks — importing this module (or
:mod:`repro.sim.experiment`) constructs no policy objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem
    from repro.policies.base import PowerPolicy

#: Name of the policy a system runs when nothing else is selected.
DEFAULT_POLICY = "greendimm"


@dataclass(frozen=True)
class PolicySpec:
    """One registered policy: how to build it, in either incarnation."""

    name: str
    description: str
    #: Builds the live in-kernel policy for one system.
    kernel_factory: Callable[["GreenDIMMSystem"], "PowerPolicy"]
    #: Builds the closed-form estimator (``None``: no analytical form).
    estimator_factory: Optional[Callable[[], object]] = None


def _make_greendimm(system: "GreenDIMMSystem") -> "PowerPolicy":
    from repro.policies.greendimm import GreenDIMMPolicy
    return GreenDIMMPolicy(system)


def _make_srf(system: "GreenDIMMSystem") -> "PowerPolicy":
    from repro.policies.srf import SelfRefreshTimeoutPolicy
    return SelfRefreshTimeoutPolicy(system)


def _make_ramzzz(system: "GreenDIMMSystem") -> "PowerPolicy":
    from repro.policies.ramzzz import RAMZzzKernelPolicy
    return RAMZzzKernelPolicy(system)


def _make_pasr(system: "GreenDIMMSystem") -> "PowerPolicy":
    from repro.policies.pasr import PASRKernelPolicy
    return PASRKernelPolicy(system)


def _make_migration(system: "GreenDIMMSystem") -> "PowerPolicy":
    from repro.policies.migration import RankAwareMigrationPolicy
    return RankAwareMigrationPolicy(system)


def _make_demotion(system: "GreenDIMMSystem") -> "PowerPolicy":
    from repro.policies.demotion import AdaptiveDemotionPolicy
    return AdaptiveDemotionPolicy(system)


def _estimate_srf() -> object:
    from repro.baselines.srf_only import SelfRefreshOnlyPolicy
    return SelfRefreshOnlyPolicy()


def _estimate_ramzzz() -> object:
    from repro.baselines.ramzzz import RAMZzzPolicy
    return RAMZzzPolicy()


def _estimate_pasr() -> object:
    from repro.baselines.pasr_policy import PASRPolicy
    return PASRPolicy()


_REGISTRY: Optional[Dict[str, PolicySpec]] = None


def _registry() -> Dict[str, PolicySpec]:
    """Build the spec table once, in canonical order.

    The analytical baselines come first in the order the figure suite
    has always evaluated them (srf_only, ramzzz, pasr), then GreenDIMM,
    then the kernel-only Lu et al. policies.
    """
    global _REGISTRY
    if _REGISTRY is None:
        specs = (
            PolicySpec("srf_only",
                       "rank-granularity self-refresh timeout",
                       _make_srf, _estimate_srf),
            PolicySpec("ramzzz",
                       "RAMZzz hot/cold rank reshaping (SC'12)",
                       _make_ramzzz, _estimate_ramzzz),
            PolicySpec("pasr",
                       "partial-array self-refresh bank masking",
                       _make_pasr, _estimate_pasr),
            PolicySpec("greendimm",
                       "sub-array power-down daemon (the paper)",
                       _make_greendimm),
            PolicySpec("rank-migration",
                       "hot-page concentration with migration "
                       "accounting (Lu et al.)",
                       _make_migration),
            PolicySpec("adaptive-demotion",
                       "per-rank demotion depth from observed idle "
                       "distributions (Lu et al.)",
                       _make_demotion),
        )
        _REGISTRY = {spec.name: spec for spec in specs}
    return _REGISTRY


def policy_names() -> Tuple[str, ...]:
    """Every registered policy name, in canonical order."""
    return tuple(_registry())


def analytical_policy_names() -> Tuple[str, ...]:
    """Policies with a closed-form estimator, in evaluation order."""
    return tuple(name for name, spec in _registry().items()
                 if spec.estimator_factory is not None)


def policy_spec(name: str) -> PolicySpec:
    try:
        return _registry()[name]
    except KeyError:
        known = ", ".join(_registry())
        raise ConfigurationError(
            f"unknown policy {name!r} (known: {known})") from None


def create_policy(name: str, system: "GreenDIMMSystem") -> "PowerPolicy":
    """Instantiate the in-kernel policy *name* for *system*."""
    return policy_spec(name).kernel_factory(system)


def create_estimator(name: str) -> object:
    """Instantiate the analytical estimator for *name*."""
    spec = policy_spec(name)
    if spec.estimator_factory is None:
        raise ConfigurationError(
            f"policy {name!r} has no closed-form estimator")
    return spec.estimator_factory()
