"""Rank-aware page migration (Lu et al., arXiv 1409.5567).

Concentrates hot pages onto the fewest ranks that can hold them and
parks the emptied ranks deep — but unlike the closed-form RAMZzz
estimate, the migrations themselves are accounted for: every
re-concentration at a monitor fire moves real bytes, and the policy
charges their access energy as extra DRAM power over the following
monitor period plus a stall that shows up in the run's busy time.

Page-granularity packing beats RAMZzz's rank-group granularity on two
axes: a smaller hot working set pins fewer ranks
(``HOT_FRACTION`` < RAMZzz's) and the cold ranks sit deeper
(``IDLE_MIX``).  The price is the migration traffic, which this policy
is the only one to pay explicitly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict

from repro.policies.calibration import rank_mix_dpd, resident_ranks
from repro.policies.ranklevel import RankLevelPolicy
from repro.power.states import PowerState

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem

#: Fraction of live usage hot enough to stay on the awake ranks
#: (page-granularity stats pack tighter than RAMZzz's rank groups).
HOT_FRACTION = 0.20

#: Residency of a concentrated-out rank (deep proactive demotion).
IDLE_MIX = {PowerState.SELF_REFRESH: 0.85, PowerState.POWER_DOWN: 0.10}

#: Sustained bandwidth of the migration copy loop.
MIGRATION_BANDWIDTH_BYTES_PER_S = 8e9

#: Runtime dilation from the access-stats monitoring machinery.
MONITORING_OVERHEAD = 0.01

#: Row-miss rate of the streaming migration copies (sequential sweeps).
_MIGRATION_ROW_MISS = 0.5


class RankAwareMigrationPolicy(RankLevelPolicy):
    """Hot-page concentration with explicit migration-cost accounting."""

    name = "rank-migration"

    _STATE_ATTRS = RankLevelPolicy._STATE_ATTRS + (
        "_current_resident", "_extra_power_w", "_migrations",
        "_migrated_bytes", "_migration_energy_j", "_migration_stall_s")

    def __init__(self, system: "GreenDIMMSystem"):
        super().__init__(system)
        self._current_resident = 0  # 0 = nothing packed yet
        self._extra_power_w = 0.0
        self._migrations = 0
        self._migrated_bytes = 0
        self._migration_energy_j = 0.0
        self._migration_stall_s = 0.0

    # --- posture ----------------------------------------------------------

    def _desired_resident(self, used_bytes: int) -> int:
        organization = self.system.organization
        plain = resident_ranks(used_bytes, organization)
        hot = math.ceil(used_bytes * HOT_FRACTION
                        / organization.rank_capacity_bytes)
        return max(1, min(plain, hot))

    def _compute_dpd(self, used_bytes: int) -> float:
        organization = self.system.organization
        idle = 1.0 - (self._desired_resident(used_bytes)
                      / organization.total_ranks)
        return rank_mix_dpd(self.system.power_model, idle, IDLE_MIX)

    # --- monitor ----------------------------------------------------------

    def monitor_once(self, now_s: float) -> None:
        used = self._used_bytes()
        desired = self._desired_resident(used)
        self._extra_power_w = 0.0
        if desired != self._current_resident:
            self._migrate(used, desired)
            self._current_resident = desired
        self._effective_dpd = self._compute_dpd(used)

    def _migrate(self, used_bytes: int, desired: int) -> None:
        """Charge one re-concentration: cold data crosses the boundary."""
        organization = self.system.organization
        cold_bytes = int(used_bytes * (1.0 - HOT_FRACTION))
        if self._current_resident:
            shift = abs(desired - self._current_resident)
            moved = min(cold_bytes,
                        shift * organization.rank_capacity_bytes)
        else:
            moved = cold_bytes  # initial packing moves the cold majority
        if moved <= 0:
            return
        energies = self.system.power_model.energies
        # Each 64B line is read from the source rank and written to the
        # destination rank.
        energy = (moved / 64.0) * 2.0 * energies.energy_per_access_j(
            _MIGRATION_ROW_MISS)
        stall = moved / MIGRATION_BANDWIDTH_BYTES_PER_S
        self._migrations += 1
        self._migrated_bytes += moved
        self._migration_energy_j += energy
        self._migration_stall_s += stall
        self.stats.busy_s += stall
        # Amortize the burst over the period until the next fire; the
        # sampler adds it to DRAM power while it is nonzero.
        self._extra_power_w = energy / self.monitor_period_s

    def monitor_is_noop(self) -> bool:
        # A fire would clear the amortized migration power and may start
        # a new migration: only a settled placement with no charge
        # pending is a no-op.
        if self._extra_power_w != 0.0:
            return False
        return self._desired_resident(self._used_bytes()) \
            == self._current_resident

    # --- costs ------------------------------------------------------------

    def extra_power_w(self) -> float:
        return self._extra_power_w

    def runtime_overhead_fraction(self) -> float:
        return MONITORING_OVERHEAD

    def policy_metrics(self) -> Dict[str, float]:
        return {"migrations": float(self._migrations),
                "migrated_bytes": float(self._migrated_bytes),
                "migration_energy_j": self._migration_energy_j,
                "migration_stall_s": self._migration_stall_s}
