"""Calibrated state-to-dpd conversion for rank-level in-kernel policies.

The epoch kernel projects a policy's whole power posture onto one
``dpd_fraction`` float (the capacity-fraction whose background + refresh
power is gone, with the residual/spare-row losses of
:meth:`repro.power.model.DRAMPowerModel._dpd_scale` applied).  Rank-level
schemes think in *states* — a rank parked in self-refresh or power-down —
so this module converts a per-rank state mix into the equivalent dpd
fraction using the platform's own IDD table:

    saved(state)   = 1 - static(state) / static(PRECHARGE_STANDBY)
    equiv_dpd      = saved / ((1 - spare)(1 - residual))

where ``static`` is background + refresh power of one device.  Because
the conversion and the analytical :mod:`repro.baselines` estimates both
derive from the same :class:`~repro.power.model.DevicePowerModel`, the
in-kernel policy ranking tracks the Figure 9/10 analytical ranking by
construction.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping

from repro.power.idd import DPD_RESIDUAL_FRACTION, SPARE_ROW_FRACTION
from repro.power.states import PowerState

if TYPE_CHECKING:
    from repro.dram.organization import MemoryOrganization
    from repro.power.model import DRAMPowerModel


def static_power_w(power_model: "DRAMPowerModel",
                   state: PowerState) -> float:
    """Background + refresh power of one device parked in *state*."""
    device = power_model.device_model
    return device.background_power_w(state) + device.refresh_power_w(state)


def state_mix_dpd(power_model: "DRAMPowerModel",
                  residency: Mapping[PowerState, float]) -> float:
    """Equivalent dpd of a rank spending *residency* across states.

    Residencies may sum to less than 1; the remainder is precharge
    standby (zero saving).  Clamped to [0, 1]: a state mix can save at
    most everything the dpd scale can express.
    """
    standby = static_power_w(power_model, PowerState.PRECHARGE_STANDBY)
    saved = 0.0
    for state, fraction in residency.items():
        saved += fraction * (1.0 - static_power_w(power_model, state)
                             / standby)
    loss = (1.0 - SPARE_ROW_FRACTION) * (1.0 - DPD_RESIDUAL_FRACTION)
    return min(1.0, max(0.0, saved / loss))


def rank_mix_dpd(power_model: "DRAMPowerModel",
                 idle_fraction: float,
                 idle_residency: Mapping[PowerState, float],
                 all_rank_dpd: float = 0.0) -> float:
    """Equivalent dpd of a whole channel: idle ranks in a state mix.

    ``idle_fraction`` of ranks spend *idle_residency* across low-power
    states (remainder precharge standby); every rank additionally sheds
    ``all_rank_dpd`` of its background + refresh power (PASR-style bank
    masking, applied through the same dpd scale the power model uses).
    Returns the single dpd value whose static saving equals the mix's.
    """
    standby = static_power_w(power_model, PowerState.PRECHARGE_STANDBY)
    idle_static = 0.0
    covered = 0.0
    for state, fraction in idle_residency.items():
        idle_static += fraction * static_power_w(power_model, state)
        covered += fraction
    idle_static += max(0.0, 1.0 - covered) * standby
    loss = (1.0 - SPARE_ROW_FRACTION) * (1.0 - DPD_RESIDUAL_FRACTION)
    scale = 1.0 - all_rank_dpd * loss
    remaining = scale * ((1.0 - idle_fraction)
                         + idle_fraction * idle_static / standby)
    return min(1.0, max(0.0, (1.0 - remaining) / loss))


def resident_ranks(used_bytes: int,
                   organization: "MemoryOrganization") -> int:
    """Ranks a non-interleaved placement needs for *used_bytes*.

    The in-kernel analogue of
    :func:`repro.baselines.base.resident_ranks_for` with
    ``kernel_bytes=0``: live memory-manager usage already includes the
    kernel boot allocation, so nothing is added back.
    """
    ranks = math.ceil(used_bytes / organization.rank_capacity_bytes)
    return max(1, min(organization.total_ranks, ranks))


def idle_rank_fraction(used_bytes: int,
                       organization: "MemoryOrganization") -> float:
    """Fraction of ranks holding no data under non-interleaved placement."""
    resident = resident_ranks(used_bytes, organization)
    return 1.0 - resident / organization.total_ranks


def idle_bank_fraction(used_bytes: int,
                       organization: "MemoryOrganization") -> float:
    """Fraction of logical banks the footprint leaves untouched."""
    banks_used = math.ceil(
        used_bytes / organization.logical_bank_capacity_bytes)
    return 1.0 - min(1.0, banks_used / organization.total_banks)
