"""In-kernel PASR: bank-granularity partial-array self-refresh.

The live counterpart of :class:`repro.baselines.pasr_policy.PASRPolicy`:
idle ranks self-refresh at the timeout capture rate, and on *every*
rank the banks the current usage leaves untouched stop refreshing
(``PASR_BANK_SAVING`` of their background share), expressed as a
whole-channel dpd term through the same dpd scale the power model
applies.  Both terms move with live usage at every monitor fire.
"""

from __future__ import annotations

from repro.baselines.pasr_policy import PASR_BANK_SAVING
from repro.baselines.srf_only import SELF_REFRESH_EFFICIENCY
from repro.policies.calibration import (
    idle_bank_fraction,
    idle_rank_fraction,
    rank_mix_dpd,
)
from repro.policies.ranklevel import RankLevelPolicy
from repro.power.states import PowerState


class PASRKernelPolicy(RankLevelPolicy):
    """Refresh masking for idle banks, on top of the timeout policy."""

    name = "pasr"

    IDLE_MIX = {PowerState.SELF_REFRESH: SELF_REFRESH_EFFICIENCY}

    def _compute_dpd(self, used_bytes: int) -> float:
        organization = self.system.organization
        idle_ranks = idle_rank_fraction(used_bytes, organization)
        bank_dpd = (idle_bank_fraction(used_bytes, organization)
                    * PASR_BANK_SAVING)
        return rank_mix_dpd(self.system.power_model, idle_ranks,
                            self.IDLE_MIX, all_rank_dpd=bank_dpd)
