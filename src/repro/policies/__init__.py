"""Pluggable power-management policies for the epoch kernel.

The :class:`~repro.policies.base.PowerPolicy` protocol names the surface
:class:`~repro.sim.kernel.EpochKernel` drives; the registry maps policy
names to lazy factories for both the in-kernel implementations and the
closed-form analytical estimators.  See ``docs/ARCHITECTURE.md`` for the
protocol obligations and the span-planner veto contract.
"""

from repro.policies.base import PeriodicPolicy, PowerPolicy
from repro.policies.context import (
    get_active_policy,
    policy_scope,
    set_active_policy,
)
from repro.policies.registry import (
    DEFAULT_POLICY,
    PolicySpec,
    analytical_policy_names,
    create_estimator,
    create_policy,
    policy_names,
    policy_spec,
)
from repro.policies.schema import PolicyRow, render_rows

__all__ = [
    "DEFAULT_POLICY",
    "PeriodicPolicy",
    "PolicyRow",
    "PolicySpec",
    "PowerPolicy",
    "analytical_policy_names",
    "create_estimator",
    "create_policy",
    "get_active_policy",
    "policy_names",
    "policy_scope",
    "policy_spec",
    "render_rows",
    "set_active_policy",
]
