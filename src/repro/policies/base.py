"""The ``PowerPolicy`` protocol: what the simulator demands of a policy.

:class:`~repro.sim.kernel.EpochKernel` and the span planner were written
against :class:`~repro.core.daemon.GreenDIMMDaemon`'s surface.  This
module names that surface explicitly so any power-management scheme —
the GreenDIMM daemon itself, rank-level baselines, or page-migration
policies from the literature — can plug into the same run loop.

The obligations, in the order the kernel exercises them:

``step(now_s, dt_s)``
    Advance the policy by one dynamic epoch.  May touch memory, move
    pages, or change the power state; this is the only entry point that
    is allowed side effects on the system.

``tick_quiescent(dt_s)``
    Advance internal timers through an epoch the caller has *proven* to
    be a no-op.  Must be a bit-exact mirror of :meth:`step`'s timer
    arithmetic so a later dynamic epoch fires at the identical simulated
    time either way.

``monitor_is_noop()``
    True when a :meth:`step` right now would take no action and consume
    no randomness.  :func:`~repro.sim.fastforward.quiescent_horizon`
    refuses to open a fast-forward window unless this holds.

``monitor_timer`` / ``monitor_period_s``
    The replay surface: batched fast-forward advances the timer with
    :func:`repro.soa.monitor_timer_after`, which assumes the standard
    ``since += dt; if since >= period: since = 0.0`` chain.  A policy
    whose timer does not follow that chain must clear
    :attr:`span_batchable` (see below).

``span_batchable``
    Declares that (a) the timer follows the standard replay chain and
    (b) between monitor fires :meth:`step` is pure timer arithmetic.
    The span planner treats a missing/false flag as a veto: spans are
    left on the dynamic path — correctness first, batching second.

``dpd_fraction()``
    The policy's whole power-relevant state projected onto one float in
    [0, 1]: the capacity-fraction whose background + refresh power is
    gone.  Keys the memoized power model.

``emergency_online(needed_pages, now_s)``
    Allocation pressure between monitor passes.  Policies that never
    offline memory return 0 (the allocation then spills to swap).

``stats`` / ``reset_stats()``
    A :class:`~repro.core.daemon.DaemonStats` the result layers read.

``extra_power_w()`` / ``runtime_overhead_fraction()``
    Costs the dpd projection cannot express: migration traffic drawn as
    extra DRAM power, and runtime dilation from monitoring/migration
    interference.  Both must return exactly ``0.0`` when unused so the
    kernel can skip the additions bit-exactly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict

from repro.core.daemon import DaemonStats

try:  # pragma: no cover - Protocol exists on every supported python
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem


@runtime_checkable
class PowerPolicy(Protocol):
    """Structural type for anything the epoch kernel can drive."""

    name: str
    stats: DaemonStats
    #: Timer follows the standard replay chain; see the module docstring.
    span_batchable: bool

    def reset_stats(self) -> None: ...

    def step(self, now_s: float, dt_s: float) -> None: ...

    def tick_quiescent(self, dt_s: float) -> None: ...

    def monitor_is_noop(self) -> bool: ...

    @property
    def monitor_period_s(self) -> float: ...

    @property
    def monitor_timer(self) -> float: ...

    def dpd_fraction(self) -> float: ...

    @property
    def offline_block_count(self) -> int: ...

    def emergency_online(self, needed_pages: int,
                         now_s: float = 0.0) -> int: ...

    def extra_power_w(self) -> float: ...

    def runtime_overhead_fraction(self) -> float: ...

    def policy_metrics(self) -> Dict[str, float]: ...

    def state_dict(self) -> Dict[str, object]: ...

    def load_state_dict(self, state: Dict[str, object]) -> None: ...


class PeriodicPolicy:
    """Base class for policies that recompute state at monitor fires.

    Mirrors the daemon's timer discipline exactly: ``step`` advances
    ``monitor_timer`` by ``dt_s`` and calls :meth:`monitor_once` when the
    period elapses; between fires ``step`` is pure timer arithmetic, so
    the batched replay (:func:`repro.soa.monitor_timer_after`) and the
    span planner's timer cap both stay valid — ``span_batchable`` holds
    by construction.

    Subclasses implement :meth:`monitor_once` (recompute the power
    posture from live system state) and :meth:`monitor_is_noop` (would a
    recomputation right now change anything?).
    """

    name = "periodic"
    span_batchable = True

    def __init__(self, system: "GreenDIMMSystem"):
        self.system = system
        self.stats = DaemonStats()
        self._since_monitor_s = math.inf  # fire on the first step

    # --- stats lifecycle --------------------------------------------------

    def reset_stats(self) -> None:
        self.stats = DaemonStats()

    # --- stepping ---------------------------------------------------------

    def step(self, now_s: float, dt_s: float) -> None:
        self._since_monitor_s += dt_s
        if self._since_monitor_s < self.monitor_period_s:
            return
        self._since_monitor_s = 0.0
        self.monitor_once(now_s)

    def tick_quiescent(self, dt_s: float) -> None:
        """Bit-exact mirror of :meth:`step` below the period."""
        self._since_monitor_s += dt_s
        if self._since_monitor_s < self.monitor_period_s:
            return
        self._since_monitor_s = 0.0

    def monitor_once(self, now_s: float) -> None:
        raise NotImplementedError

    def monitor_is_noop(self) -> bool:
        raise NotImplementedError

    # --- replay surface ---------------------------------------------------

    @property
    def monitor_period_s(self) -> float:
        return self.system.config.monitor_period_s

    @property
    def monitor_timer(self) -> float:
        return self._since_monitor_s

    @monitor_timer.setter
    def monitor_timer(self, value: float) -> None:
        self._since_monitor_s = value

    # --- power / pressure surface ----------------------------------------

    def dpd_fraction(self) -> float:
        return 0.0

    @property
    def offline_block_count(self) -> int:
        return 0

    def emergency_online(self, needed_pages: int, now_s: float = 0.0) -> int:
        """Rank-level schemes keep all memory online: nothing to bring back."""
        return 0

    def extra_power_w(self) -> float:
        return 0.0

    def runtime_overhead_fraction(self) -> float:
        return 0.0

    def policy_metrics(self) -> Dict[str, float]:
        """Policy-specific counters for tournament/report rows."""
        return {}

    # --- checkpoint/restore -----------------------------------------------

    #: Extra mutable attributes a subclass carries between monitor fires;
    #: extended (not replaced) down the class hierarchy.
    _STATE_ATTRS: "tuple[str, ...]" = ()

    def state_dict(self) -> Dict[str, object]:
        state: Dict[str, object] = {"stats": self.stats,
                                    "since_monitor_s": self._since_monitor_s}
        for name in self._STATE_ATTRS:
            state[name] = getattr(self, name)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.stats = state["stats"]
        self._since_monitor_s = state["since_monitor_s"]
        for name in self._STATE_ATTRS:
            setattr(self, name, state[name])
