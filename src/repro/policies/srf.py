"""In-kernel self-refresh-only policy (the commodity timeout baseline).

The live counterpart of
:class:`repro.baselines.srf_only.SelfRefreshOnlyPolicy`: ranks the
current usage does not touch (non-interleaved placement) spend
``SELF_REFRESH_EFFICIENCY`` of their time in self-refresh and
``IDLE_POWERDOWN_FRACTION`` in power-down — the same Figure-3b-anchored
capture fractions the analytical estimate uses, converted to an
effective dpd through the platform's IDD table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.srf_only import (
    IDLE_POWERDOWN_FRACTION,
    SELF_REFRESH_EFFICIENCY,
)
from repro.policies.calibration import idle_rank_fraction, rank_mix_dpd
from repro.policies.ranklevel import RankLevelPolicy
from repro.power.states import PowerState

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem


class SelfRefreshTimeoutPolicy(RankLevelPolicy):
    """Rank-granularity timeout demotion, nothing else."""

    name = "srf_only"

    #: Time an idle rank spends in each low-power state once the
    #: timeout ladder settles (self-refresh after the long threshold,
    #: power-down after the short one).
    IDLE_MIX = {PowerState.SELF_REFRESH: SELF_REFRESH_EFFICIENCY,
                PowerState.POWER_DOWN: IDLE_POWERDOWN_FRACTION}

    def __init__(self, system: "GreenDIMMSystem"):
        super().__init__(system)

    def _compute_dpd(self, used_bytes: int) -> float:
        idle = idle_rank_fraction(used_bytes, self.system.organization)
        return rank_mix_dpd(self.system.power_model, idle, self.IDLE_MIX)
