"""One serialization schema for policy-comparison results.

Three layers used to carry their own ad-hoc shapes: the Figure 9/10
matrix cells (:class:`repro.sim.experiment.PolicyResult`), the
closed-form :class:`repro.baselines.base.BaselineEstimate`, and the
tournament's per-cell measurements.  They all flatten into a
:class:`PolicyRow` here, so tournament tables, figure expectations, and
``repro report`` sections render from the same field set and round-trip
through the JSONL metrics stream without bespoke glue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.analysis.report import Table

#: The scalar core every producer fills (extras carry the rest).
POLICY_ROW_FIELDS = ("policy", "scenario", "runtime_s", "dram_power_w",
                     "dram_energy_j", "baseline_dram_energy_j",
                     "dram_energy_saving", "system_energy_j",
                     "overhead_fraction", "notes")


@dataclass(frozen=True)
class PolicyRow:
    """One policy evaluated in one scenario, flattened for transport."""

    policy: str
    scenario: str
    runtime_s: float = 0.0
    dram_power_w: float = 0.0
    dram_energy_j: float = 0.0
    baseline_dram_energy_j: float = 0.0
    #: 1 - dram_energy / baseline (0 when no baseline was measured).
    dram_energy_saving: float = 0.0
    system_energy_j: float = 0.0
    overhead_fraction: float = 0.0
    notes: str = ""
    #: Producer-specific scalars (residencies, tail power, fault counts,
    #: migration totals, ...), kept flat so they serialize as-is.
    extras: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flatten to one JSON-ready mapping (extras inline)."""
        out: Dict[str, object] = {
            name: getattr(self, name) for name in POLICY_ROW_FIELDS}
        out.update(self.extras)
        return out

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "PolicyRow":
        """Inverse of :meth:`as_dict`: unknown keys become extras."""
        core = {name for name in POLICY_ROW_FIELDS}
        kwargs = {name: mapping[name] for name in core if name in mapping}
        extras = {key: value for key, value in mapping.items()
                  if key not in core}
        return cls(extras=extras, **kwargs)  # type: ignore[arg-type]


def render_rows(title: str, rows: Sequence[PolicyRow]) -> Table:
    """The canonical fixed-width table every CLI surface prints."""
    table = Table(title, ["policy", "scenario", "runtime s", "dram W",
                          "dram kJ", "saving %", "overhead %", "notes"])
    for row in rows:
        table.add_row(row.policy, row.scenario,
                      f"{row.runtime_s:.0f}",
                      f"{row.dram_power_w:.2f}",
                      f"{row.dram_energy_j / 1e3:.2f}",
                      f"{row.dram_energy_saving * 100.0:.1f}",
                      f"{row.overhead_fraction * 100.0:.2f}",
                      row.notes)
    return table


def mean_saving_by_policy(rows: Sequence[PolicyRow]) -> Dict[str, float]:
    """Per-policy mean DRAM energy saving across every scenario seen."""
    sums: Dict[str, List[float]] = {}
    for row in rows:
        sums.setdefault(row.policy, []).append(row.dram_energy_saving)
    return {policy: sum(values) / len(values)
            for policy, values in sums.items()}
