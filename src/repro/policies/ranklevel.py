"""Shared base for in-kernel rank-level policies.

The analytical :mod:`repro.baselines` estimate a policy's power from a
workload's *declared* peak footprint, outside the kernel.  These
in-kernel counterparts face the live system instead: at every monitor
fire they read actual memory usage from the memory manager (which moves
with ramps, pinned churn, KSM merging, and injected faults) and project
their rank-level posture onto the kernel's ``dpd_fraction`` through the
calibrated conversion in :mod:`repro.policies.calibration`.

Between fires nothing changes — the posture is a pure function of the
usage observed at the last fire — so the periodic-timer contract of
:class:`~repro.policies.base.PeriodicPolicy` holds and fast-forward /
stable-span batching stay valid: ``monitor_is_noop`` is exactly "a
recomputation right now would return the current posture".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import PeriodicPolicy
from repro.units import PAGE_SIZE

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem


class RankLevelPolicy(PeriodicPolicy):
    """Recompute an effective dpd from live usage at each monitor fire."""

    _STATE_ATTRS = PeriodicPolicy._STATE_ATTRS + ("_effective_dpd",)

    def __init__(self, system: "GreenDIMMSystem"):
        super().__init__(system)
        self._effective_dpd = 0.0

    def _used_bytes(self) -> int:
        mm = self.system.mm
        return (mm.online_pages - mm.free_pages) * PAGE_SIZE

    def _compute_dpd(self, used_bytes: int) -> float:
        raise NotImplementedError

    def monitor_once(self, now_s: float) -> None:
        self._effective_dpd = self._compute_dpd(self._used_bytes())

    def monitor_is_noop(self) -> bool:
        return self._compute_dpd(self._used_bytes()) == self._effective_dpd

    def dpd_fraction(self) -> float:
        return self._effective_dpd
