"""Adaptive per-rank demotion depth (Lu et al., arXiv 1409.5567).

Each rank that falls idle is demoted to the deepest low-power state
whose break-even time its *observed* idle behaviour justifies: the
policy keeps a per-rank EWMA of realized idle-interval lengths (updated
whenever a rank is re-occupied) and picks the state ladder rung whose
entry/exit cost that history amortizes.  Ranks with a record of long
idle spells sink to deep power-down; ranks that bounce in and out stay
in shallow power-down so re-activation is cheap.

All state updates happen at monitor fires when the resident-rank count
actually changes, so the posture is a pure function of the observed
transition history and the periodic-timer fast-forward contract holds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.policies.calibration import resident_ranks, state_mix_dpd
from repro.policies.ranklevel import RankLevelPolicy
from repro.power.states import PowerState

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem

#: The demotion ladder: deepest state whose break-even the rank's
#: observed mean idle interval exceeds.  Break-evens are entry/exit
#: amortization times, dominated by deep power-down's wake-up ramp.
DEMOTION_LADDER = ((PowerState.DEEP_POWER_DOWN, 30.0),
                   (PowerState.SELF_REFRESH, 0.5),
                   (PowerState.POWER_DOWN, 0.05))

#: Fraction of a demoted rank's idle time actually spent in the chosen
#: state (prediction is not clairvoyance; entries/exits eat the rest).
CAPTURE = 0.92

#: EWMA weight of each newly observed idle interval.
EWMA_WEIGHT = 0.25


class AdaptiveDemotionPolicy(RankLevelPolicy):
    """Per-rank demotion depth from observed idle distributions."""

    name = "adaptive-demotion"

    _STATE_ATTRS = RankLevelPolicy._STATE_ATTRS + (
        "_resident", "_idle_since", "_mean_idle_s", "_demotions",
        "_reactivations")

    def __init__(self, system: "GreenDIMMSystem"):
        super().__init__(system)
        #: Resident-rank count at the last fire; 0 = not initialized.
        self._resident = 0
        #: Fire time at which each currently idle rank fell idle.
        self._idle_since: Dict[int, float] = {}
        #: Per-rank EWMA of realized idle-interval lengths, seeded with
        #: one monitor period (the shortest observable interval).
        self._mean_idle_s: Dict[int, float] = {}
        self._demotions = 0
        self._reactivations = 0

    # --- ladder -----------------------------------------------------------

    def _rank_state(self, rank: int) -> PowerState:
        mean = self._mean_idle_s.get(rank, self.monitor_period_s)
        for state, breakeven_s in DEMOTION_LADDER:
            if mean >= breakeven_s:
                return state
        return PowerState.POWER_DOWN

    def _posture_dpd(self, resident: int) -> float:
        total = self.system.organization.total_ranks
        power_model = self.system.power_model
        saved = 0.0
        for rank in range(resident, total):
            saved += state_mix_dpd(power_model,
                                   {self._rank_state(rank): CAPTURE})
        return saved / total

    def _compute_dpd(self, used_bytes: int) -> float:
        return self._posture_dpd(
            resident_ranks(used_bytes, self.system.organization))

    # --- monitor ----------------------------------------------------------

    def monitor_once(self, now_s: float) -> None:
        organization = self.system.organization
        resident = resident_ranks(self._used_bytes(), organization)
        previous = self._resident or organization.total_ranks
        if resident < previous:
            for rank in range(resident, previous):
                self._idle_since[rank] = now_s
                self._demotions += 1
        elif resident > previous:
            for rank in range(previous, resident):
                fell_idle = self._idle_since.pop(rank, None)
                if fell_idle is not None:
                    interval = now_s - fell_idle
                    mean = self._mean_idle_s.get(rank,
                                                 self.monitor_period_s)
                    self._mean_idle_s[rank] = (
                        (1.0 - EWMA_WEIGHT) * mean
                        + EWMA_WEIGHT * interval)
                self._reactivations += 1
        self._resident = resident
        self._effective_dpd = self._posture_dpd(resident)

    def monitor_is_noop(self) -> bool:
        # The posture is a pure function of the resident count and the
        # per-rank interval history; the history only moves when the
        # resident count does, so an unchanged count means a no-op fire.
        return (self._resident != 0
                and resident_ranks(self._used_bytes(),
                                   self.system.organization)
                == self._resident)

    def policy_metrics(self) -> Dict[str, float]:
        return {"demotions": float(self._demotions),
                "reactivations": float(self._reactivations)}
