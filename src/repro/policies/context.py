"""Process-global policy selection for the experiment runner.

``repro run --policy`` (and the golden-divergence CI check) must apply
one policy to every system an experiment constructs, including deep
inside pool worker processes where the CLI cannot reach.  The runner
serializes the policy name into the job (where it also keys the result
cache) and ``execute_job`` activates it here before the experiment runs;
:class:`~repro.core.system.GreenDIMMSystem` consults
:func:`get_active_policy` when no explicit policy was passed.

Same shape as :mod:`repro.faults.context` — one ambient value, scoped
with a context manager so nested activations restore cleanly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

_active_policy: Optional[str] = None


def get_active_policy() -> Optional[str]:
    """The policy name activated for the current job, if any."""
    return _active_policy


def set_active_policy(name: Optional[str]) -> None:
    """Activate policy *name* process-wide (``None`` deactivates)."""
    global _active_policy
    _active_policy = name


@contextmanager
def policy_scope(name: Optional[str]) -> Iterator[None]:
    """Scope *name* to a ``with`` block, restoring the prior policy after."""
    previous = _active_policy
    set_active_policy(name)
    try:
        yield
    finally:
        set_active_policy(previous)
