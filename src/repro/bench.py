"""The simulation-core micro-benchmark behind ``repro bench``.

Times the three hot run loops — a SPEC workload run, an Azure vm-trace
replay, and a co-located mix — twice each at fixed seeds: once with the
quiescence fast-forward layer on and once forced onto the per-epoch
reference path.  Besides wall times and the speedup, every scenario
records the fast-forward epoch accounting, the power-model cache hit
rate, and an ``identical`` flag asserting the two runs produced the
same samples and energies (the fast path's bit-for-bit contract).

The scenarios are deliberately sized so epoch stepping, not VM-event
handling, dominates the trace replay; that is the regime the fast path
exists for.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, Optional, Union

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import DDR4_4GB_X8, MemoryOrganization
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.registry import profile_by_name

PathLike = Union[str, pathlib.Path]

#: Seeds are part of the benchmark's identity: same code, same numbers.
SYSTEM_SEED = 7
SIMULATOR_SEED = 5
TRACE_SEED = 7


def _small_system() -> GreenDIMMSystem:
    """The 8 GiB platform the unit tests exercise."""
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    return GreenDIMMSystem(organization=organization,
                           config=GreenDIMMConfig(block_bytes=128 * MIB),
                           kernel_boot_bytes=512 * MIB,
                           transient_failure_probability=0.5,
                           seed=SYSTEM_SEED)


def _trace_system() -> GreenDIMMSystem:
    """A 16 GiB consolidation box: cheap VM events, many epochs."""
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    return GreenDIMMSystem(organization=organization,
                           config=GreenDIMMConfig(block_bytes=512 * MIB),
                           kernel_boot_bytes=2 * GIB,
                           transient_failure_probability=0.5,
                           seed=SYSTEM_SEED)


def _run_workload(fast: bool, full: bool):
    simulator = ServerSimulator(_small_system(), seed=SIMULATOR_SEED,
                                fast_forward=fast)
    profile = profile_by_name("429.mcf")
    result = simulator.run_workload(profile, epoch_s=1.0, pinned_churn=False)
    return simulator, (result.samples, result.dram_energy_j,
                       result.baseline_dram_energy_j,
                       result.overhead_fraction)


def _run_vm_trace(fast: bool, full: bool):
    system = _trace_system()
    hours = 24.0 if full else 6.0
    trace = AzureTraceGenerator(
        capacity_bytes=system.organization.total_capacity_bytes - 3 * GIB,
        physical_cores=16, duration_s=hours * 3600.0,
        seed=TRACE_SEED).generate()
    simulator = ServerSimulator(system, seed=SIMULATOR_SEED,
                                fast_forward=fast)
    result = simulator.run_vm_trace(trace, epoch_s=0.5, pinned_churn=False)
    return simulator, (result.samples, result.dram_energy_j,
                       result.baseline_dram_energy_j)


def _run_mix(fast: bool, full: bool):
    simulator = ServerSimulator(_small_system(), seed=SIMULATOR_SEED,
                                fast_forward=fast)
    profiles = [profile_by_name(name) for name in ("403.gcc", "429.mcf")]
    result = simulator.run_mix(profiles, epoch_s=2.0, pinned_churn=False)
    return simulator, (result.samples, result.dram_energy_j,
                       result.baseline_dram_energy_j)


_SCENARIOS = {
    "workload": _run_workload,
    "vm_trace": _run_vm_trace,
    "mix": _run_mix,
}


def _time_scenario(runner, full: bool) -> Dict[str, object]:
    t0 = time.perf_counter()
    sim_slow, outcome_slow = runner(False, full)
    wall_slow = time.perf_counter() - t0
    t0 = time.perf_counter()
    sim_fast, outcome_fast = runner(True, full)
    wall_fast = time.perf_counter() - t0
    stats = sim_fast.ff_stats
    cache = sim_fast.system.power_cache_stats
    return {
        "wall_s_slow": wall_slow,
        "wall_s_fast": wall_fast,
        "speedup": wall_slow / wall_fast if wall_fast > 0 else 0.0,
        "identical": outcome_slow == outcome_fast,
        "epochs_total": stats.epochs_total,
        "epochs_fast_forwarded": stats.epochs_fast_forwarded,
        "epochs_stepped": stats.epochs_stepped,
        "fast_forward_windows": stats.windows,
        "power_cache_hit_rate": cache.hit_rate,
    }


def _mirror_to_repo_root(path: pathlib.Path) -> Optional[pathlib.Path]:
    """Copy a ``BENCH_*.json`` to the repo root (the tracked trajectory).

    Benchmark documents land wherever the caller pointed ``out``
    (``benchmarks/results/`` for the pytest harness, the CWD for the
    CLI), but the cross-PR perf trajectory is tracked as ``BENCH_*.json``
    at the repository root — mirror there whenever we can find it.
    Returns the mirror path, or ``None`` outside a source checkout.
    """
    root = pathlib.Path(__file__).resolve().parents[2]
    if not (root / "pyproject.toml").exists():
        return None
    target = root / path.name
    if target == path.resolve():
        return None
    target.write_text(path.read_text())
    return target


def run_perf_core(full: bool = False,
                  out: Optional[PathLike] = None) -> Dict[str, object]:
    """Run every scenario; optionally write the JSON document to *out*.

    Writing also mirrors the document to ``BENCH_<name>.json`` at the
    repository root so the perf trajectory stays tracked across PRs.
    """
    scenarios: Dict[str, Dict[str, object]] = {}
    for name, runner in _SCENARIOS.items():
        scenarios[name] = _time_scenario(runner, full)
    document: Dict[str, object] = {
        "benchmark": "perf_core",
        "mode": "full" if full else "quick",
        "scenarios": scenarios,
    }
    if out is not None:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        _mirror_to_repo_root(path)
    return document


def render_perf_core(document: Dict[str, object]) -> str:
    """The CLI's table view of a :func:`run_perf_core` document."""
    from repro.analysis.report import Table

    table = Table(f"simulation-core benchmark ({document['mode']} mode)",
                  ["scenario", "slow", "fast", "speedup", "ff epochs",
                   "cache hit", "identical"])
    scenarios: Dict[str, Dict[str, object]] = document["scenarios"]
    for name, s in scenarios.items():
        table.add_row(
            name,
            f"{s['wall_s_slow']:.3f} s",
            f"{s['wall_s_fast']:.3f} s",
            f"{s['speedup']:.1f}x",
            f"{s['epochs_fast_forwarded']}/{s['epochs_total']}",
            f"{s['power_cache_hit_rate']:.0%}",
            "yes" if s["identical"] else "NO")
    return table.render()


def all_identical(document: Dict[str, object]) -> bool:
    scenarios: Dict[str, Dict[str, object]] = document["scenarios"]
    return all(s["identical"] for s in scenarios.values())
