"""The simulation-core micro-benchmark behind ``repro bench``.

Times the three hot run loops — a SPEC workload run, an Azure vm-trace
replay, and a co-located mix — twice each at fixed seeds: once with the
quiescence fast-forward layer on and once forced onto the per-epoch
reference path.  Besides wall times and the speedup, every scenario
records the fast-forward epoch accounting, the power-model cache hit
rate, and an ``identical`` flag asserting the two runs produced the
same samples and energies (the fast path's bit-for-bit contract).

The scenarios are deliberately sized so epoch stepping, not VM-event
handling, dominates the trace replay; that is the regime the fast path
exists for.

``compare_perf_core`` is the regression gate behind ``repro bench
--compare``: it diffs a freshly measured document against the committed
``BENCH_perf_core.json`` and fails on slowdowns beyond a threshold.
Because the committed numbers come from whatever machine last ran the
benchmark, each document also records ``calibration_s`` — the wall time
of a fixed pure-Python spin — and the gate compares *calibrated* ratios
(scenario wall time over calibration time), which cancels out
machine-speed differences while still catching real slowdowns.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import DDR4_4GB_X8, MemoryOrganization
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.registry import profile_by_name

PathLike = Union[str, pathlib.Path]

#: Seeds are part of the benchmark's identity: same code, same numbers.
SYSTEM_SEED = 7
SIMULATOR_SEED = 5
TRACE_SEED = 7


def _small_system() -> GreenDIMMSystem:
    """The 8 GiB platform the unit tests exercise."""
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    return GreenDIMMSystem(organization=organization,
                           config=GreenDIMMConfig(block_bytes=128 * MIB),
                           kernel_boot_bytes=512 * MIB,
                           transient_failure_probability=0.5,
                           seed=SYSTEM_SEED)


def _trace_system() -> GreenDIMMSystem:
    """A 16 GiB consolidation box: cheap VM events, many epochs."""
    organization = MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                                      dimms_per_channel=2, ranks_per_dimm=1)
    return GreenDIMMSystem(organization=organization,
                           config=GreenDIMMConfig(block_bytes=512 * MIB),
                           kernel_boot_bytes=2 * GIB,
                           transient_failure_probability=0.5,
                           seed=SYSTEM_SEED)


def _run_workload(fast: bool, full: bool):
    simulator = ServerSimulator(_small_system(), seed=SIMULATOR_SEED,
                                fast_forward=fast)
    profile = profile_by_name("429.mcf")
    # 0.1 s epochs put the run in the sub-monitor-period regime the span
    # planner batches (and grow the wall past the compare gate's noise
    # floor; at the old 1.0 s epoch the whole quick run measured ~6 ms).
    result = simulator.run_workload(profile, epoch_s=0.1, pinned_churn=False)
    return simulator, (result.samples, result.dram_energy_j,
                       result.baseline_dram_energy_j,
                       result.overhead_fraction)


def _run_vm_trace(fast: bool, full: bool):
    system = _trace_system()
    hours = 24.0 if full else 6.0
    trace = AzureTraceGenerator(
        capacity_bytes=system.organization.total_capacity_bytes - 3 * GIB,
        physical_cores=16, duration_s=hours * 3600.0,
        seed=TRACE_SEED).generate()
    simulator = ServerSimulator(system, seed=SIMULATOR_SEED,
                                fast_forward=fast)
    result = simulator.run_vm_trace(trace, epoch_s=0.5, pinned_churn=False)
    return simulator, (result.samples, result.dram_energy_j,
                       result.baseline_dram_energy_j)


def _run_mix(fast: bool, full: bool):
    simulator = ServerSimulator(_small_system(), seed=SIMULATOR_SEED,
                                fast_forward=fast)
    profiles = [profile_by_name(name) for name in ("403.gcc", "429.mcf")]
    # Same sub-period epoch as the workload scenario, for the same two
    # reasons: exercise span batching, and measure a wall long enough
    # for the regression gate to see.
    result = simulator.run_mix(profiles, epoch_s=0.1, pinned_churn=False)
    return simulator, (result.samples, result.dram_energy_j,
                       result.baseline_dram_energy_j)


_SCENARIOS = {
    "workload": _run_workload,
    "vm_trace": _run_vm_trace,
    "mix": _run_mix,
}


def _repeats(full: bool) -> int:
    # Quick-mode scenarios finish in tens of milliseconds, where
    # scheduler noise alone can swing a single measurement by 20% —
    # enough to trip the --compare gate spuriously.  Best-of-N is the
    # standard estimator for that regime; full mode stays single-shot
    # (its runs are long enough to be stable, and 3x as expensive).
    return 1 if full else 5


def _time_scenario(runner, full: bool) -> Dict[str, object]:
    wall_slow = float("inf")
    wall_fast = float("inf")
    for _ in range(_repeats(full)):
        t0 = time.perf_counter()
        sim_slow, outcome_slow = runner(False, full)
        wall_slow = min(wall_slow, time.perf_counter() - t0)
        t0 = time.perf_counter()
        sim_fast, outcome_fast = runner(True, full)
        wall_fast = min(wall_fast, time.perf_counter() - t0)
    stats = sim_fast.ff_stats
    cache = sim_fast.system.power_cache_stats
    epochs = stats.epochs_total
    return {
        "wall_s_slow": wall_slow,
        "wall_s_fast": wall_fast,
        # A sub-resolution fast wall reads as infinite speedup, not as
        # the catastrophic "0.0x" a plain guard would hand trend tooling.
        "speedup": wall_slow / wall_fast if wall_fast > 0 else math.inf,
        # Throughput normalizes the wall by the work done, so scenario
        # resizes (epoch_s changes) stay comparable across blessings.
        "epochs_per_second_fast": (epochs / wall_fast
                                   if wall_fast > 0 else math.inf),
        "epochs_per_second_slow": (epochs / wall_slow
                                   if wall_slow > 0 else math.inf),
        "identical": outcome_slow == outcome_fast,
        "epochs_total": epochs,
        "epochs_fast_forwarded": stats.epochs_fast_forwarded,
        "epochs_stepped": stats.epochs_stepped,
        "epochs_batched": stats.epochs_batched,
        "fast_forward_windows": stats.windows,
        "stable_spans": stats.spans_stable,
        "power_cache_hit_rate": cache.hit_rate,
    }


#: Iterations of the calibration spin (fixed: part of the benchmark's
#: identity, like the seeds).
_CALIBRATION_ITERATIONS = 2_000_000


def _calibrate() -> float:
    """Wall time of a fixed pure-Python spin, as a machine-speed yardstick.

    The spin exercises the same interpreter operations the simulation
    hot loops spend their time on (attribute-free arithmetic, integer
    bookkeeping), so its wall time scales with the machine the way the
    scenario wall times do.  Best-of-three to shrug off scheduler noise.
    """
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0.0
        slots: Dict[int, float] = {}
        for i in range(_CALIBRATION_ITERATIONS):
            acc += i * 0.5
            slots[i & 63] = acc
        best = min(best, time.perf_counter() - t0)
    return best


def _mirror_to_repo_root(path: pathlib.Path) -> Optional[pathlib.Path]:
    """Copy a ``BENCH_*.json`` to the repo root (the tracked trajectory).

    Benchmark documents land wherever the caller pointed ``out``
    (``benchmarks/results/`` for the pytest harness, the CWD for the
    CLI), but the cross-PR perf trajectory is tracked as ``BENCH_*.json``
    at the repository root — mirror there whenever we can find it.
    Returns the mirror path, or ``None`` outside a source checkout.
    """
    root = pathlib.Path(__file__).resolve().parents[2]
    if not (root / "pyproject.toml").exists():
        return None
    target = root / path.name
    if target == path.resolve():
        return None
    target.write_text(path.read_text())
    return target


def run_perf_core(full: bool = False,
                  out: Optional[PathLike] = None) -> Dict[str, object]:
    """Run every scenario; optionally write the JSON document to *out*.

    Writing also mirrors the document to ``BENCH_<name>.json`` at the
    repository root so the perf trajectory stays tracked across PRs.
    """
    # Calibrate on both sides of the scenario loop and keep the faster
    # reading: machine speed can drift over the seconds the scenarios
    # take (frequency scaling, neighbours on the box), and bracketing
    # the measurement tracks that drift better than a single probe.
    calibration = _calibrate()
    scenarios: Dict[str, Dict[str, object]] = {}
    for name, runner in _SCENARIOS.items():
        scenarios[name] = _time_scenario(runner, full)
    calibration = min(calibration, _calibrate())
    document: Dict[str, object] = {
        "benchmark": "perf_core",
        "mode": "full" if full else "quick",
        # Walls are best-of-N; the compare gate scales its absolute
        # noise floor by N, since a best-of-5 wall that is consistently
        # slow represents five measurements' worth of evidence.
        "repeats": _repeats(full),
        "calibration_s": calibration,
        "scenarios": scenarios,
    }
    if out is not None:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(_json_safe(document), indent=2,
                                   sort_keys=True, allow_nan=False) + "\n")
        _mirror_to_repo_root(path)
    return document


def profile_slowest(document: Dict[str, object], out: PathLike,
                    full: bool = False) -> Tuple[str, pathlib.Path]:
    """cProfile one extra fast-path run of the slowest measured scenario.

    *document* is a fresh :func:`run_perf_core` result; the scenario
    with the largest ``wall_s_fast`` gets re-run once under the
    profiler, and the stats land at *out* in ``pstats`` binary format
    (``python -m pstats`` or snakeviz read it).  Profiling the fast
    path is deliberate: it is the production path, and its hot spots
    are where the next optimization PR should look.  Returns the
    scenario name and the written path.
    """
    import cProfile

    scenarios: Dict[str, Dict[str, object]] = document["scenarios"]
    name = max(scenarios, key=lambda n: float(scenarios[n]["wall_s_fast"]))
    runner = _SCENARIOS[name]
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    runner(True, full)
    profiler.disable()
    profiler.dump_stats(path)
    return name, path


def _json_safe(value: object) -> object:
    """*value* with non-finite floats replaced by ``None``.

    ``json.dumps`` would happily emit ``Infinity`` — a token strict JSON
    parsers (and most trend dashboards) reject — so an unbounded speedup
    is serialized as ``null`` instead.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def render_perf_core(document: Dict[str, object]) -> str:
    """The CLI's table view of a :func:`run_perf_core` document."""
    from repro.analysis.report import Table

    table = Table(f"simulation-core benchmark ({document['mode']} mode)",
                  ["scenario", "slow", "fast", "speedup", "epochs/s",
                   "ff epochs", "cache hit", "identical"])
    scenarios: Dict[str, Dict[str, object]] = document["scenarios"]
    for name, s in scenarios.items():
        epochs = f"{s['epochs_fast_forwarded']}/{s['epochs_total']}"
        if s.get("epochs_batched"):
            epochs += f" +{s['epochs_batched']} sp"
        eps = s.get("epochs_per_second_fast")
        table.add_row(
            name,
            f"{s['wall_s_slow']:.3f} s",
            f"{s['wall_s_fast']:.3f} s",
            (f"{s['speedup']:.1f}x"
             if math.isfinite(s["speedup"]) else "inf"),
            (f"{eps:,.0f}" if eps is not None and math.isfinite(eps)
             else "-"),
            epochs,
            f"{s['power_cache_hit_rate']:.0%}",
            "yes" if s["identical"] else "NO")
    return table.render()


def all_identical(document: Dict[str, object]) -> bool:
    scenarios: Dict[str, Dict[str, object]] = document["scenarios"]
    return all(s["identical"] for s in scenarios.values())


# --- the regression gate ------------------------------------------------------

#: Default slowdown tolerance of ``repro bench --compare``.
DEFAULT_REGRESSION_THRESHOLD = 0.15

_GATED_METRICS = ("wall_s_fast", "wall_s_slow")

#: Absolute calibrated slowdown (seconds) a metric must also exceed to
#: count as a regression.  Quick-mode scenarios finish in tens of
#: milliseconds; on walls that short, scheduler noise alone produces
#: ratio excursions well past any reasonable threshold, so a ratio trip
#: only fails the gate when it corresponds to a real amount of time.
#: The floor applies to the *aggregate* evidence: a best-of-N wall that
#: comes out slow survived N attempts to beat it, so its slowdown is
#: multiplied by the fresh document's ``repeats`` before the comparison.
#: (The old behavior — a raw per-measurement floor — made quick mode
#: blind to anything smaller than a ~5x slowdown of a 12 ms scenario.)
NOISE_FLOOR_S = 0.05


def compare_perf_core(
        fresh: Dict[str, object], baseline: Dict[str, object],
        threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Tuple[List[str], List[Dict[str, object]]]:
    """Diff a fresh perf-core document against a committed baseline.

    Returns ``(regressions, rows)``: human-readable failure messages
    (empty means the gate passes) plus one row per compared metric for
    rendering.  A regression is a calibrated slowdown beyond
    *threshold* (and beyond :data:`NOISE_FLOOR_S` in absolute terms)
    on either wall time of any scenario, a scenario that disappeared,
    a broken bit-for-bit ``identical`` flag, or a mode mismatch
    (quick vs full numbers are not comparable).

    When both documents carry ``calibration_s`` the ratio compared is
    ``(wall / calibration)`` on each side, cancelling machine speed;
    older baselines without it fall back to raw wall-time ratios.
    """
    regressions: List[str] = []
    rows: List[Dict[str, object]] = []
    if fresh.get("mode") != baseline.get("mode"):
        regressions.append(
            f"mode mismatch: fresh is {fresh.get('mode')!r}, baseline is "
            f"{baseline.get('mode')!r} — rerun with matching --full")
        return regressions, rows
    fresh_cal = float(fresh.get("calibration_s") or 0.0)
    base_cal = float(baseline.get("calibration_s") or 0.0)
    calibrated = fresh_cal > 0.0 and base_cal > 0.0
    # Best-of-N walls carry N measurements of evidence against the
    # noise-floor excuse; documents from before the field default to 1.
    repeats = max(1, int(fresh.get("repeats") or 1))
    fresh_scenarios: Dict[str, Dict[str, object]] = fresh.get(
        "scenarios", {})
    base_scenarios: Dict[str, Dict[str, object]] = baseline.get(
        "scenarios", {})
    for name, base in base_scenarios.items():
        current = fresh_scenarios.get(name)
        if current is None:
            regressions.append(f"scenario {name!r} missing from fresh run")
            continue
        if not current.get("identical", False):
            regressions.append(
                f"{name}: fast and slow paths diverged (identical=false)")
        for metric in _GATED_METRICS:
            base_wall = float(base.get(metric, 0.0))
            fresh_wall = float(current.get(metric, 0.0))
            if base_wall <= 0.0:
                continue
            if calibrated:
                ratio = (fresh_wall / fresh_cal) / (base_wall / base_cal)
                # What the baseline wall "should" measure on the fresh
                # machine, for the absolute-slowdown floor below.
                expected_wall = base_wall * (fresh_cal / base_cal)
            else:
                ratio = fresh_wall / base_wall
                expected_wall = base_wall
            regressed = (ratio > 1.0 + threshold
                         and (fresh_wall - expected_wall) * repeats
                         > NOISE_FLOOR_S)
            rows.append({
                "scenario": name, "metric": metric,
                "baseline_s": base_wall, "fresh_s": fresh_wall,
                "ratio": ratio, "calibrated": calibrated,
                # Explicit per-row basis: consumers no longer have to
                # infer from a side-channel bool whether this ratio
                # cancelled machine speed or compared raw wall times.
                "basis": "calibrated" if calibrated else "raw",
                "regressed": regressed,
            })
            if regressed:
                regressions.append(
                    f"{name}.{metric}: {ratio:.2f}x the baseline "
                    f"(threshold {1.0 + threshold:.2f}x)")
    # Scenarios only the fresh document knows about (a benchmark added
    # since the baseline was blessed).  There is nothing to ratio them
    # against, but they must not be *invisible*: their bit-for-bit
    # ``identical`` contract is enforced like everyone else's, and a
    # basis-"new" row per metric keeps them in the rendered table with a
    # non-fatal note telling the operator to re-bless the baseline.
    for name, current in fresh_scenarios.items():
        if name in base_scenarios:
            continue
        if not current.get("identical", False):
            regressions.append(
                f"{name}: fast and slow paths diverged (identical=false)")
        for metric in _GATED_METRICS:
            rows.append({
                "scenario": name, "metric": metric,
                "baseline_s": None,
                "fresh_s": float(current.get(metric, 0.0)),
                "ratio": None, "calibrated": calibrated,
                "basis": "new", "regressed": False,
                "note": f"scenario {name!r} absent from baseline — "
                        f"re-bless to start gating it",
            })
    return regressions, rows


def render_compare(regressions: List[str], rows: List[Dict[str, object]],
                   threshold: float = DEFAULT_REGRESSION_THRESHOLD) -> str:
    """The CLI's view of one :func:`compare_perf_core` outcome."""
    from repro.analysis.report import Table

    # Basis-"new" rows carry no ratio; the header basis describes only
    # the rows that were actually compared against the baseline.
    compared = [row for row in rows
                if row.get("basis", "calibrated" if row.get("calibrated")
                           else "raw") != "new"]
    bases = {row.get("basis", "calibrated" if row.get("calibrated")
                     else "raw") for row in compared}
    if not compared:
        basis = "raw wall-time"
    elif bases == {"calibrated"}:
        basis = "calibrated"
    elif bases == {"raw"}:
        basis = "raw wall-time"
    else:
        basis = "mixed-basis"
    mixed = len(bases) > 1
    table = Table(
        f"bench regression gate ({basis} ratios, "
        f"threshold {1.0 + threshold:.2f}x)",
        ["scenario", "metric", "baseline", "fresh", "ratio", "status"])
    notes: List[str] = []
    for row in rows:
        row_basis = row.get("basis", "calibrated" if row.get("calibrated")
                            else "raw")
        if row_basis == "new":
            if row.get("note") and row["note"] not in notes:
                notes.append(row["note"])
            table.add_row(
                row["scenario"], row["metric"], "-",
                f"{row['fresh_s']:.3f} s", "-",
                "REGRESSED" if row["regressed"] else "new")
            continue
        ratio_cell = f"{row['ratio']:.2f}x"
        if mixed:
            # Only annotate per-row when the bases actually differ —
            # the table header already names a uniform basis.
            ratio_cell += f" ({row_basis})"
        table.add_row(
            row["scenario"], row["metric"],
            f"{row['baseline_s']:.3f} s", f"{row['fresh_s']:.3f} s",
            ratio_cell,
            "REGRESSED" if row["regressed"] else "ok")
    lines = [table.render()]
    for note in notes:
        lines.append(f"note: {note}")
    if regressions:
        lines.append("")
        lines.append("FAIL: " + "; ".join(regressions))
    else:
        lines.append("")
        lines.append("OK: no regressions beyond the threshold.")
    return "\n".join(lines)
