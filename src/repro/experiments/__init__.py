"""One module per paper table/figure.

Each module exposes ``run(fast=False) -> ExperimentResult``; the
benchmark harness under ``benchmarks/`` calls these and prints the
rendered rows, and EXPERIMENTS.md is written from the same results.
``fast=True`` shrinks trace lengths for CI-speed runs without changing
the experiment's structure.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
