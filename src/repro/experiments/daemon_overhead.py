"""Section 6.2's daemon-cost accounting.

The paper reports that GreenDIMM consumes 0.34% / 0.16% of one core's
cycles for on-lining / off-lining, while performing 0.05 on-linings and
0.47 off-linings per second on average.  This experiment replays the
Azure trace and reports the same four numbers from the daemon's own
accounting.
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult
from repro.experiments.vm_trace_study import replay


def run(fast: bool = False) -> ExperimentResult:
    result, system = replay(False, fast)
    elapsed = result.samples[-1].time_s if result.samples else 1.0
    stats = system.daemon.stats
    online_rate = stats.online_events / elapsed
    offline_rate = stats.offline_events / elapsed
    online_core = stats.busy_online_s / elapsed
    offline_core = stats.busy_offline_s / elapsed

    table = Table("Daemon cost over the Azure replay (Section 6.2)",
                  ["metric", "paper", "measured"])
    table.add_row("on-linings per second", "0.05", f"{online_rate:.3f}")
    table.add_row("off-linings per second", "0.47", f"{offline_rate:.3f}")
    table.add_row("core share, on-lining", "0.34%", f"{online_core:.3%}")
    table.add_row("core share, off-lining", "0.16%", f"{offline_core:.3%}")
    table.add_row("wake-up wait total", "-",
                  f"{stats.wakeup_wait_s * 1e6:.1f} us")

    return ExperimentResult(
        experiment="daemon_overhead",
        description=PAPER["daemon"]["description"],
        tables=[table],
        measured={
            "onlines_per_s": online_rate,
            "offlines_per_s": offline_rate,
            "online_core_fraction": online_core,
            "offline_core_fraction": offline_core,
        },
        paper={key: PAPER["daemon"][key] for key in (
            "onlines_per_s", "offlines_per_s",
            "online_core_fraction", "offline_core_fraction")},
        notes="rates depend on workload churn; the shape claim is that "
              "both core shares stay far below 1% of one core")
