"""Tail latency of latency-critical services (Section 6.2's claim).

The paper observes "no notable degradation in tail response latency" for
data-caching / data-serving / web-serving under GreenDIMM, and this is a
designed property: GreenDIMM's deep power-down applies only to off-lined
addresses, so no demand request ever pays a wake-up.  An *aggressive
rank low-power policy* — the alternative way to chase background power —
puts wake-ups (up to the 768ns self-refresh exit) on the critical path
of sparse requests, precisely where the tail lives.

This experiment serves the same sparse request stream three ways and
compares p95/p99 latency:

* baseline: low-power management off;
* aggressive rank policy: short power-down/self-refresh timeouts;
* GreenDIMM: gating off-lined capacity only (the served ranks behave
  like the baseline).
"""

from __future__ import annotations

import random

from repro.analysis.report import Table
from repro.dram.organization import spec_server_memory
from repro.experiments.common import ExperimentResult
from repro.memctrl.controller import MemoryController
from repro.memctrl.lowpower import LowPowerConfig
from repro.units import GIB
from repro.workloads.trace import AccessTraceGenerator


def _serve(lowpower: LowPowerConfig, requests: int, seed: int):
    org = spec_server_memory()
    controller = MemoryController(org, lowpower=lowpower)
    # A memcached-like sparse stream: low rate, poor locality, 10GB set.
    stream = AccessTraceGenerator(10 * GIB, rate_per_s=2e6, locality=0.1,
                                  rng=random.Random(seed)).generate(requests)
    return controller.run(stream)


def run(fast: bool = False) -> ExperimentResult:
    requests = 4_000 if fast else 20_000
    off = LowPowerConfig(enabled=False)
    aggressive = LowPowerConfig(powerdown_idle_ns=300.0,
                                selfrefresh_idle_ns=3_000.0)
    baseline = _serve(off, requests, seed=3)
    ranky = _serve(aggressive, requests, seed=3)
    # GreenDIMM's served ranks see no low-power transitions at all.
    greendimm = baseline

    table = Table("Tail latency of a sparse serving stream (ns)",
                  ["policy", "mean", "p95", "p99", "wake-ups"])
    rows = {
        "no power mgmt": baseline,
        "aggressive rank low-power": ranky,
        "greendimm (gated capacity off-lined)": greendimm,
    }
    for name, stats in rows.items():
        table.add_row(name, f"{stats.mean_latency_ns:.0f}",
                      f"{stats.percentile_latency_ns(95):.0f}",
                      f"{stats.percentile_latency_ns(99):.0f}",
                      stats.wakeups)

    p99_ratio = (ranky.percentile_latency_ns(99)
                 / max(baseline.percentile_latency_ns(99), 1e-9))
    return ExperimentResult(
        experiment="tail_latency",
        description="tail-latency cost of rank low-power vs GreenDIMM",
        tables=[table],
        measured={
            "rank_policy_p99_inflation": p99_ratio,
            "greendimm_p99_inflation": 1.0,
            "rank_policy_wakeups": ranky.wakeups,
            "greendimm_wakeups": greendimm.wakeups,
        },
        paper={"greendimm_p99_inflation": 1.0},
        notes="the paper's 'no notable tail degradation' is structural: "
              "off-lined sub-arrays receive no requests, so the wake-up "
              "latency never appears in any request's path")
