"""Figure 13: DRAM and system power vs memory capacity (Azure trace).

The paper measures the 256GB point and extrapolates larger capacities
with a simple linear model (Section 6.3); the savings grow with capacity
because background power does.  Paper: -32%/-9% DRAM/system at 256GB,
-36%/-20% at 1TB; with KSM, -48%/-13% and -55%/-30%.

We take the mean gated fraction from the real 24h daemon replay at
256GB (utilization statistics are capacity-relative in the trace) and
evaluate the power models at each capacity.
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.dram.organization import scaled_server_memory
from repro.experiments.common import ExperimentResult
from repro.experiments.vm_trace_study import replay
from repro.power.model import DRAMPowerModel
from repro.power.system import SystemPowerModel

CAPACITIES_GIB = (256, 512, 1024)

#: Average VM load on the server (bandwidth, CPU utilization).
VM_BANDWIDTH = 8e9
CPU_UTILIZATION = 0.6


def run(fast: bool = False) -> ExperimentResult:
    plain, _s1 = replay(False, fast)
    merged, _s2 = replay(True, fast)
    dpd = {"w/o ksm": plain.mean_dpd_fraction,
           "w/ ksm": merged.mean_dpd_fraction}

    system_power = SystemPowerModel()
    table = Table("Figure 13 — DRAM/system power vs capacity",
                  ["capacity", "baseline DRAM (W)",
                   "GD DRAM (W)", "GD+KSM DRAM (W)",
                   "DRAM saving", "system saving",
                   "DRAM saving (ksm)", "system saving (ksm)"])
    measured = {}
    for capacity in CAPACITIES_GIB:
        model = DRAMPowerModel(scaled_server_memory(capacity))
        base = model.busy_power(VM_BANDWIDTH, active_residency=0.3).total_w
        managed = {}
        for label, fraction in dpd.items():
            managed[label] = model.busy_power(
                VM_BANDWIDTH, active_residency=0.3,
                dpd_fraction=fraction).total_w
        dram_saving = 1 - managed["w/o ksm"] / base
        ksm_saving = 1 - managed["w/ ksm"] / base
        sys_base = system_power.power_w(CPU_UTILIZATION, base)
        sys_saving = (base - managed["w/o ksm"]) / sys_base
        sys_ksm_saving = (base - managed["w/ ksm"]) / sys_base
        table.add_row(f"{capacity}GB", f"{base:.1f}",
                      f"{managed['w/o ksm']:.1f}",
                      f"{managed['w/ ksm']:.1f}",
                      f"{dram_saving:.0%}", f"{sys_saving:.0%}",
                      f"{ksm_saving:.0%}", f"{sys_ksm_saving:.0%}")
        if capacity in (256, 1024):
            tag = "256gb" if capacity == 256 else "1tb"
            measured[f"dram_reduction_{tag}"] = dram_saving
            measured[f"system_reduction_{tag}"] = sys_saving
            measured[f"ksm_dram_reduction_{tag}"] = ksm_saving
            measured[f"ksm_system_reduction_{tag}"] = sys_ksm_saving

    return ExperimentResult(
        experiment="fig13",
        description=PAPER["fig13"]["description"],
        tables=[table],
        measured=measured,
        paper={key: PAPER["fig13"][key] for key in measured},
        notes="gated fractions come from the 24h daemon replay at 256GB "
              "(w/o ksm {:.0%}, w/ ksm {:.0%})".format(
                  dpd["w/o ksm"], dpd["w/ ksm"]))
