"""Shared machinery for the Section 5.1/5.2 studies.

Runs the six-application set under the real daemon at each memory-block
size (or selection policy) and collects event counts, off-lined
capacity, and failures.  Figures 6-8 and Table 2 are different views of
these runs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.config import GreenDIMMConfig, SelectionPolicy
from repro.core.system import GreenDIMMSystem
from repro.dram.device import DDR4_4GB_X8
from repro.dram.organization import MemoryOrganization
from repro.faults.plan import FaultPlan
from repro.sim.server import ServerSimulator, WorkloadRunResult
from repro.units import GIB, MIB
from repro.workloads.spec import BLOCKSIZE_STUDY_SET, SPEC_PROFILES

BLOCK_SIZES_MIB = (128, 256, 512)


def study_organization() -> MemoryOrganization:
    """An 8GB platform: the block-size dynamics need block sizes to be a
    visible fraction of free memory, as on the paper's testbed."""
    return MemoryOrganization(device=DDR4_4GB_X8, channels=1,
                              dimms_per_channel=2, ranks_per_dimm=1)


@dataclass(frozen=True)
class StudyRun:
    result: WorkloadRunResult
    block_bytes: int

    @property
    def offline_events(self) -> int:
        return self.result.offline_events

    @property
    def online_events(self) -> int:
        return self.result.online_events

    @property
    def offlined_gib_total(self) -> float:
        """Capacity off-lined over the run (Figure 6's metric)."""
        return self.result.offlined_bytes_total / GIB

    @property
    def overhead(self) -> float:
        return self.result.overhead_fraction

    @property
    def failures(self) -> Tuple[int, int]:
        return (self.result.ebusy_failures, self.result.eagain_failures)


def run_app(app: str, block_mib: int,
            policy: SelectionPolicy = SelectionPolicy.REMOVABLE_FIRST,
            fast: bool = False, seed: int = 17,
            transient_failure_probability: float = 0.85,
            pinned_churn: bool = True,
            fault_plan: Optional[FaultPlan] = None) -> StudyRun:
    """One application at one block size under the real daemon."""
    profile = SPEC_PROFILES[app]
    config = GreenDIMMConfig(block_bytes=block_mib * MIB, selection=policy)
    system = GreenDIMMSystem(
        organization=study_organization(), config=config,
        kernel_boot_bytes=512 * MIB,
        transient_failure_probability=transient_failure_probability,
        fault_plan=fault_plan, seed=seed)
    simulator = ServerSimulator(system, seed=seed)
    epoch = 2.0 if fast else 1.0
    result = simulator.run_workload(profile, epoch_s=epoch,
                                    pinned_churn=pinned_churn)
    return StudyRun(result=result, block_bytes=block_mib * MIB)


def run_matrix(fast: bool = False,
               policy: SelectionPolicy = SelectionPolicy.REMOVABLE_FIRST,
               ) -> Dict[Tuple[str, int], StudyRun]:
    """All six applications x all three block sizes."""
    runs = {}
    for app in BLOCKSIZE_STUDY_SET:
        for block_mib in BLOCK_SIZES_MIB:
            runs[(app, block_mib)] = run_app(app, block_mib, policy=policy,
                                             fast=fast)
    return runs


@functools.lru_cache(maxsize=8)
def _cached_matrix(fast: bool, policy: SelectionPolicy,
                   plan_key: Optional[str]) -> Dict[Tuple[str, int], StudyRun]:
    return run_matrix(fast=fast, policy=policy)


def cached_matrix(fast: bool = False,
                  policy: SelectionPolicy = SelectionPolicy.REMOVABLE_FIRST,
                  ) -> Dict[Tuple[str, int], StudyRun]:
    """Memoized matrix so Figures 6/7 and Table 2 share one set of runs.

    The active fault plan participates in the memo key: a matrix built
    under one storm must not be served to a run under another (or none).
    """
    from repro.faults.context import get_active_plan

    plan = get_active_plan()
    return _cached_matrix(fast, policy,
                          plan.canonical() if plan is not None else None)
