"""Table 3: latencies of off-lining, on-lining, and the failure modes.

Exercises the hot-plug substrate in each of the four situations the
paper measures while running mcf, and reports the mean modelled latency
per event kind.
"""

from __future__ import annotations

import random

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.errors import OfflineAgainError, OfflineBusyError
from repro.experiments.common import ExperimentResult
from repro.os.hotplug import MemoryBlockManager
from repro.os.mm import PhysicalMemoryManager
from repro.os.page import OwnerKind
from repro.units import GIB, MIB


def run(fast: bool = False) -> ExperimentResult:
    mm = PhysicalMemoryManager(total_bytes=4 * GIB, block_bytes=128 * MIB,
                               movable_fraction=0.75)
    manager = MemoryBlockManager(mm, transient_failure_probability=1.0,
                                 rng=random.Random(0))
    # mcf-like resident footprint plus a pinned driver page.
    mm.allocate("mcf", 400_000)
    mm.allocate("driver", 8, kind=OwnerKind.PINNED)

    rounds = 4 if fast else 16
    latencies = {"off-lining": [], "on-lining": [],
                 "failure (EAGAIN)": [], "failure (EBUSY)": []}
    for _ in range(rounds):
        free_block = max(i for i in range(mm.num_blocks)
                         if mm.block_is_free(i))
        result = manager.offline_block(free_block)
        latencies["off-lining"].append(result.latency_s)
        latencies["on-lining"].append(manager.online_block(free_block))

        used_removable = next(i for i in range(mm.num_blocks)
                              if not mm.block_is_free(i)
                              and mm.block_is_removable(i))
        try:
            manager.offline_block(used_removable)
        except OfflineAgainError as err:
            latencies["failure (EAGAIN)"].append(err.latency_s)

        pinned_block = next(i for i in range(mm.num_blocks)
                            if not mm.block_is_removable(i)
                            and not mm.zone_kind_of_block(i).value == "normal")
        try:
            manager.offline_block(pinned_block)
        except OfflineBusyError as err:
            latencies["failure (EBUSY)"].append(err.latency_s)

    table = Table("Table 3 — average hot-plug latencies (mcf running)",
                  ["event", "paper", "measured"])
    paper_text = {"off-lining": "1.58 ms", "on-lining": "3.44 ms",
                  "failure (EAGAIN)": "4.37 ms", "failure (EBUSY)": "6 us"}
    measured = {}
    for event, values in latencies.items():
        mean_s = sum(values) / len(values)
        measured[event] = mean_s
        shown = (f"{mean_s * 1e3:.2f} ms" if mean_s > 1e-4
                 else f"{mean_s * 1e6:.0f} us")
        table.add_row(event, paper_text[event], shown)

    return ExperimentResult(
        experiment="tab3",
        description=PAPER["tab3"]["description"],
        tables=[table],
        measured={
            "offline_ms": measured["off-lining"] * 1e3,
            "online_ms": measured["on-lining"] * 1e3,
            "eagain_ms": measured["failure (EAGAIN)"] * 1e3,
            "ebusy_us": measured["failure (EBUSY)"] * 1e6,
        },
        paper={key: PAPER["tab3"][key] for key in (
            "offline_ms", "online_ms", "eagain_ms", "ebusy_us")},
        notes="EAGAIN costs ~3x a success (three failed migration "
              "attempts); EBUSY is detected before any migration work")
