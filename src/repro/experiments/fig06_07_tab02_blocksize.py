"""Figures 6 & 7 and Table 2: the memory-block-size trade-off.

Smaller blocks off-line more capacity (Figure 6) at the cost of more
on/off-lining events (Table 2) and slightly higher execution-time
overhead (Figure 7).  All three views come from the same daemon runs.
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.experiments.blocksize_study import (
    BLOCK_SIZES_MIB,
    cached_matrix,
)
from repro.experiments.common import ExperimentResult
from repro.workloads.spec import BLOCKSIZE_STUDY_SET


def run_fig06(fast: bool = False) -> ExperimentResult:
    runs = cached_matrix(fast)
    table = Table("Figure 6 — off-lined capacity vs block size (GiB)",
                  ["application"] + [f"{s}MB" for s in BLOCK_SIZES_MIB])
    monotone = 0
    for app in BLOCKSIZE_STUDY_SET:
        values = [runs[(app, size)].offlined_gib_total
                  for size in BLOCK_SIZES_MIB]
        if values[0] >= values[-1]:
            monotone += 1
        table.add_row(app, *[f"{v:.2f}" for v in values])
    gcc_128 = runs[("403.gcc", 128)].offlined_gib_total
    gcc_512 = runs[("403.gcc", 512)].offlined_gib_total
    return ExperimentResult(
        experiment="fig6",
        description=PAPER["fig6"]["description"],
        tables=[table],
        measured={"gcc_ratio_128_over_512": (gcc_128 / gcc_512
                                             if gcc_512 else float("inf")),
                  "apps_where_smaller_blocks_offline_more":
                      f"{monotone}/{len(BLOCKSIZE_STUDY_SET)}"},
        paper={"gcc_ratio_128_over_512": 3.125 / 2.0,
               "apps_where_smaller_blocks_offline_more": "6/6"},
        notes=PAPER["fig6"]["shape"])


def run_fig07(fast: bool = False) -> ExperimentResult:
    runs = cached_matrix(fast)
    table = Table("Figure 7 — execution-time increase vs block size",
                  ["application"] + [f"{s}MB" for s in BLOCK_SIZES_MIB])
    worst = 0.0
    for app in BLOCKSIZE_STUDY_SET:
        values = [runs[(app, size)].overhead for size in BLOCK_SIZES_MIB]
        worst = max(worst, max(values))
        table.add_row(app, *[f"{v:.2%}" for v in values])
    mcf = {size: runs[("429.mcf", size)].overhead
           for size in BLOCK_SIZES_MIB}
    return ExperimentResult(
        experiment="fig7",
        description=PAPER["fig7"]["description"],
        tables=[table],
        measured={"worst_overhead": worst,
                  "mcf_128_overhead": mcf[128],
                  "mcf_512_overhead": mcf[512],
                  "mcf_overhead_grows_with_smaller_blocks":
                      mcf[128] >= mcf[512]},
        paper={"worst_overhead": PAPER["fig7"]["bound"],
               "mcf_128_overhead": PAPER["fig7"]["mcf_overhead"][128],
               "mcf_512_overhead": PAPER["fig7"]["mcf_overhead"][512],
               "mcf_overhead_grows_with_smaller_blocks": True})


def run_tab02(fast: bool = False) -> ExperimentResult:
    runs = cached_matrix(fast)
    table = Table("Table 2 — off-lining events vs block size "
                  "(paper value in parentheses)",
                  ["application"] + [f"{s}MB" for s in BLOCK_SIZES_MIB])
    paper_events = PAPER["tab2"]["offline_events"]
    monotone = 0
    for app in BLOCKSIZE_STUDY_SET:
        cells = []
        values = []
        for size in BLOCK_SIZES_MIB:
            events = runs[(app, size)].offline_events
            values.append(events)
            cells.append(f"{events} ({paper_events[app][size]})")
        if values[0] >= values[1] >= values[2]:
            monotone += 1
        table.add_row(app, *cells)
    return ExperimentResult(
        experiment="tab2",
        description=PAPER["tab2"]["description"],
        tables=[table],
        measured={
            "gcc_events_128": runs[("403.gcc", 128)].offline_events,
            "mcf_events_128": runs[("429.mcf", 128)].offline_events,
            "apps_with_monotone_event_counts":
                f"{monotone}/{len(BLOCKSIZE_STUDY_SET)}",
        },
        paper={"gcc_events_128": paper_events["403.gcc"][128],
               "mcf_events_128": paper_events["429.mcf"][128],
               "apps_with_monotone_event_counts": "6/6"})
