"""gem5 power-down staircase: independent validation of the memctrl
low-power state machines.

Not a GreenDIMM figure — the idle/power-down staircase of the gem5
power-down integration paper (Jagtap et al., arXiv 1803.07613), run as a
reproduction experiment so the figure regression suite pins it like any
figure.  The sweep drives ``repro.memctrl``'s rank low-power policy,
PASR mask, and mode-register file through idle-period, bank-gating, and
gate-mask staircases; the headline numbers are the detected demotion
thresholds, the published exit latencies, and the violation counts of
the staircase/monotonicity contracts (all of which must be zero).
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult
from repro.memctrl.lowpower import LowPowerConfig
from repro.memctrl.staircase import (
    DEFAULT_IDLE_SWEEP_NS,
    detect_entry_threshold,
    run_mrs_sweep,
    run_pasr_sweep,
    run_staircase,
    validate_pasr_sweep,
    validate_staircase,
)
from repro.power.states import PowerState, exit_latency_ns

#: Extra idle points the full (non-fast) run adds between the sweep's
#: decades, for a denser curve around each threshold.
_FULL_EXTRA_NS = (200.0, 500.0, 2_000.0, 5_000.0, 20_000.0, 50_000.0,
                  200_000.0, 500_000.0, 2_000_000.0)


def run(fast: bool = False) -> ExperimentResult:
    config = LowPowerConfig()
    sweep = DEFAULT_IDLE_SWEEP_NS
    if not fast:
        sweep = tuple(sorted(set(sweep) | set(_FULL_EXTRA_NS)))
    points = run_staircase(config=config, idle_sweep_ns=sweep)
    staircase = validate_staircase(points, config=config)

    table = Table("gem5 idle/power-down staircase (one rank, 64GB platform)",
                  ["idle gap", "state at wake", "exit latency",
                   "idle energy", "mean idle power"])
    for point in points:
        table.add_row(f"{point.idle_ns / 1000.0:g} us",
                      point.state.value,
                      f"{point.wake_penalty_ns:g} ns",
                      f"{point.idle_energy_nj:.1f} nJ",
                      f"{point.idle_power_w:.3f} W")

    pasr_steps = run_pasr_sweep()
    pasr_problems = validate_pasr_sweep(pasr_steps)
    mrs = run_mrs_sweep()
    mech = Table("gating command-path staircases",
                 ["mechanism", "steps", "headline", "violations"])
    mech.add_row("PASR bank masks", len(pasr_steps) - 1,
                 f"refreshing fraction {pasr_steps[0][1]:.0%} -> "
                 f"{pasr_steps[-1][1]:.0%}", len(pasr_problems))
    mech.add_row("mode-register gate mask", "4 slices",
                 f"full update {mrs['full_update_ns']:g} ns, "
                 f"idempotent {mrs['idempotent_update_ns']:g} ns",
                 0 if mrs["consistent"] else 1)

    # Idle-power plateaus: one representative point well inside each
    # state regime (past the entry transient, before the next threshold).
    by_idle = {point.idle_ns: point for point in points}
    standby_w = by_idle[700.0].idle_power_w
    powerdown_w = by_idle[10_000.0].idle_power_w
    selfrefresh_w = by_idle[1_000_000.0].idle_power_w
    return ExperimentResult(
        experiment="gem5-staircase",
        description="gem5 power-down staircase validation "
                    "(Jagtap et al., arXiv 1803.07613)",
        tables=[table, mech],
        measured={
            "powerdown_entry_ns": detect_entry_threshold(
                PowerState.POWER_DOWN, config=config),
            "selfrefresh_entry_ns": detect_entry_threshold(
                PowerState.SELF_REFRESH, config=config),
            "powerdown_exit_ns": exit_latency_ns(PowerState.POWER_DOWN),
            "selfrefresh_exit_ns": exit_latency_ns(PowerState.SELF_REFRESH),
            "staircase_violations": len(staircase.violations),
            "pasr_violations": len(pasr_problems),
            "mrs_full_update_ns": mrs["full_update_ns"],
            "mrs_idempotent_update_ns": mrs["idempotent_update_ns"],
            "mrs_lockstep_consistent": bool(mrs["consistent"]),
            "idle_power_standby_w": standby_w,
            "idle_power_powerdown_w": powerdown_w,
            "idle_power_selfrefresh_w": selfrefresh_w,
            "powerdown_power_reduction": 1.0 - powerdown_w / standby_w,
            "selfrefresh_power_reduction": 1.0 - selfrefresh_w / standby_w,
        },
        paper={
            # Anchors from the DDR4 datasheet values both papers share.
            "powerdown_entry_ns": config.powerdown_idle_ns,
            "selfrefresh_entry_ns": config.selfrefresh_idle_ns,
            "powerdown_exit_ns": 18.0,
            "selfrefresh_exit_ns": 768.0,
            "staircase_violations": 0,
            "pasr_violations": 0,
            "mrs_full_update_ns": 30.0,
        },
        notes="idle-energy curve is monotone with non-increasing marginal "
              "power (the staircase contract); thresholds are detected by "
              "bisection on the state machine, not read from its config")
