"""Shared result type and helpers for the experiment modules."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.report import Table
from repro.errors import ConfigurationError


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    ``measured`` holds the headline numbers of this run; ``paper`` the
    corresponding published values (taken from ``repro.analysis.paper``);
    ``tables`` the full row sets the paper's figure/table displays.
    """

    experiment: str
    description: str
    tables: List[Table] = field(default_factory=list)
    measured: Dict[str, Any] = field(default_factory=dict)
    paper: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        out = [f"#### {self.experiment}: {self.description}"]
        for table in self.tables:
            out.append(table.render())
        if self.measured:
            comparison = Table(f"{self.experiment} paper vs measured",
                               ["metric", "paper", "measured"])
            for key, value in self.measured.items():
                paper_value = self.paper.get(key, "-")
                comparison.add_row(key, _fmt(paper_value), _fmt(value))
            out.append(comparison.render())
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n\n".join(out)

    def expectation(self, mode: str = "fast") -> Dict[str, Any]:
        """This result's headline numbers as a JSON-safe expectation doc.

        The figure regression suite (``repro figures``) commits these
        documents under ``tests/expected/figures/`` and diffs every
        later run against them.  Only ``measured`` is pinned — the full
        tables restate the same numbers at more rows, and the paper
        values never change.  Non-finite floats serialize as ``None``
        (strict JSON has no ``Infinity`` token); any value that is not a
        plain scalar is rejected rather than silently stringified, so an
        experiment cannot leak an uncomparable object into the gate.
        """
        values: Dict[str, Any] = {}
        for key, value in self.measured.items():
            if isinstance(value, float):
                values[key] = value if math.isfinite(value) else None
            elif isinstance(value, (bool, int, str)):
                values[key] = value
            else:
                raise ConfigurationError(
                    f"{self.experiment}.{key}: measured value of type "
                    f"{type(value).__name__} cannot be pinned as an "
                    f"expectation (use float/int/bool/str)")
        return {
            "experiment": self.experiment,
            "description": self.description,
            "mode": mode,
            "values": values,
        }


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
