"""Shared result type and helpers for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.report import Table


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    ``measured`` holds the headline numbers of this run; ``paper`` the
    corresponding published values (taken from ``repro.analysis.paper``);
    ``tables`` the full row sets the paper's figure/table displays.
    """

    experiment: str
    description: str
    tables: List[Table] = field(default_factory=list)
    measured: Dict[str, Any] = field(default_factory=dict)
    paper: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        out = [f"#### {self.experiment}: {self.description}"]
        for table in self.tables:
            out.append(table.render())
        if self.measured:
            comparison = Table(f"{self.experiment} paper vs measured",
                               ["metric", "paper", "measured"])
            for key, value in self.measured.items():
                paper_value = self.paper.get(key, "-")
                comparison.add_row(key, _fmt(paper_value), _fmt(value))
            out.append(comparison.render())
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
