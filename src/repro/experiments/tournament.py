"""Policy tournament: every registered power policy x the scenario matrix.

The Figure 9/10 experiments compare policies analytically (closed-form
operating points per :mod:`repro.baselines`); the golden kernel suite
pins the GreenDIMM daemon alone.  This experiment closes the gap: it
runs every *in-kernel* policy from :mod:`repro.policies.registry`
through the full scenario matrix — a steady workload, pinned-page
churn, a seeded fault storm, an Azure VM-trace replay, and a
co-located mix — on one 16 GiB consolidation box, and reports
residency, energy, and tail behavior per (policy, scenario) cell.

Cells are independent and picklable, so the matrix fans out over
:func:`repro.runner.fan_out` (``repro tournament --workers N``); the
serial path is the bitwise reference, as everywhere in this repo.

The headline cross-check: restricted to the policies that also have a
closed-form estimator, the in-kernel steady-state energy ranking must
agree with the analytical Figure 9/10 power ranking — the live
reimplementations and the paper-facing estimates must tell one story.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.policies.registry import (
    analytical_policy_names,
    create_estimator,
    policy_names,
)
from repro.policies.schema import PolicyRow, mean_saving_by_policy, render_rows
from repro.units import MIB

TOURNAMENT_SEED = 1107

#: Scenario id -> one-line description, in canonical matrix order.
SCENARIOS: Tuple[Tuple[str, str], ...] = (
    ("steady", "429.mcf alone, no pinned churn"),
    ("churn", "450.soplex with pinned-page churn"),
    ("storm", "429.mcf under a seeded fault storm"),
    ("azure", "Azure VM-trace replay (consolidation box)"),
    ("mix", "co-located 429.mcf + 471.omnetpp + 433.milc"),
)


@dataclass(frozen=True)
class TournamentJob:
    """One (policy, scenario) cell, picklable for the fan-out pool."""

    policy: str
    scenario: str
    fast: bool

    def describe(self) -> str:
        return f"{self.policy}/{self.scenario}"


def _tournament_memory():
    """The 16 GiB consolidation box every cell runs on.

    Small enough that footprints leave whole ranks idle (the rank-level
    policies need something to gate), large enough for the Azure trace.
    """
    from repro.sim.fleet import fleet_server_memory

    return fleet_server_memory()


def _build(policy: str, fast: bool, fault_plan=None):
    from repro.core.config import GreenDIMMConfig
    from repro.core.system import GreenDIMMSystem
    from repro.sim.server import ServerSimulator

    system = GreenDIMMSystem(
        organization=_tournament_memory(),
        config=GreenDIMMConfig(block_bytes=512 * MIB),
        policy=policy,
        fault_plan=fault_plan,
        seed=TOURNAMENT_SEED)
    return system, ServerSimulator(system, seed=TOURNAMENT_SEED)


def _profile(name: str, fast: bool):
    from repro.workloads.registry import profile_by_name

    profile = profile_by_name(name)
    if fast:
        profile = dataclasses.replace(profile, duration_s=180.0)
    return profile


def _row(job: TournamentJob, system, runtime_s: float, dram_energy_j: float,
         baseline_j: float, overhead: float, residency,
         extras: Dict[str, float]) -> PolicyRow:
    """Fold one finished cell into the shared row schema."""
    policy = system.policy
    stats = policy.stats
    merged = dict(extras)
    for state, share in residency.fractions().items():
        merged[f"residency_{state}"] = share
    for key, value in policy.policy_metrics().items():
        merged[f"policy_{key}"] = value
    merged["offline_events"] = stats.offline_events
    merged["online_events"] = stats.online_events
    merged["emergency_onlines"] = stats.emergency_onlines
    if system.fault_injector is not None:
        merged["injected_faults"] = system.fault_injector.stats.total
    saving = (1.0 - dram_energy_j / baseline_j) if baseline_j > 0 else 0.0
    return PolicyRow(
        policy=job.policy,
        scenario=job.scenario,
        runtime_s=runtime_s,
        dram_power_w=dram_energy_j / runtime_s if runtime_s > 0 else 0.0,
        dram_energy_j=dram_energy_j,
        baseline_dram_energy_j=baseline_j,
        dram_energy_saving=saving,
        overhead_fraction=overhead,
        extras=merged)


def _workload_extras(result) -> Dict[str, float]:
    samples = result.samples
    mean_dpd = (sum(s.dpd_fraction for s in samples) / len(samples)
                if samples else 0.0)
    max_offline = max((s.offline_blocks for s in samples), default=0)
    return {"mean_dpd_fraction": mean_dpd,
            "max_offline_blocks": max_offline}


def _run_workload_cell(job: TournamentJob, profile_name: str,
                       pinned_churn: bool, fault_plan=None,
                       n_copies: int = 1) -> PolicyRow:
    system, simulator = _build(job.policy, job.fast, fault_plan=fault_plan)
    profile = _profile(profile_name, job.fast)
    result = simulator.run_workload(
        profile, n_copies=n_copies,
        epoch_s=2.0 if job.fast else 1.0,
        pinned_churn=pinned_churn)
    return _row(job, system, result.runtime_s, result.dram_energy_j,
                result.baseline_dram_energy_j, result.overhead_fraction,
                result.residency, _workload_extras(result))


def _run_azure_cell(job: TournamentJob) -> PolicyRow:
    # The Azure generator models datacenter-scale arrivals; a single
    # 16 GiB box is below its granularity.  Generate a 4-server fleet
    # trace and replay shard 0, exactly as the fleet experiment does.
    from repro.sim.fleet import FleetSource

    system, simulator = _build(job.policy, job.fast)
    epoch_s = 5.0
    duration_s = (2.0 if job.fast else 8.0) * 3600.0
    source = FleetSource(num_servers=4, duration_s=duration_s,
                         seed=TOURNAMENT_SEED, epoch_s=epoch_s,
                         policy=job.policy)
    result = simulator.run_vm_trace(source.shard(0), epoch_s=epoch_s)
    extras = _workload_extras(result)
    extras["max_offline_blocks"] = result.max_offline_blocks
    runtime_s = (result.samples[-1].time_s + epoch_s
                 if result.samples else 0.0)
    return _row(job, system, runtime_s, result.dram_energy_j,
                result.baseline_dram_energy_j, 0.0,
                result.residency, extras)


def _run_mix_cell(job: TournamentJob) -> PolicyRow:
    system, simulator = _build(job.policy, job.fast)
    profiles = [_profile(name, job.fast)
                for name in ("429.mcf", "471.omnetpp", "433.milc")]
    result = simulator.run_mix(profiles, epoch_s=2.0 if job.fast else 1.0)
    return _row(job, system,
                result.elapsed_s * (1.0 + result.worst_overhead),
                result.dram_energy_j, result.baseline_dram_energy_j,
                result.worst_overhead, result.residency,
                _workload_extras(result))


def run_cell(job: TournamentJob) -> PolicyRow:
    """Run one tournament cell (module-level: pool-picklable)."""
    if job.scenario == "steady":
        return _run_workload_cell(job, "429.mcf", pinned_churn=False)
    if job.scenario == "churn":
        return _run_workload_cell(job, "450.soplex", pinned_churn=True)
    if job.scenario == "storm":
        from repro.faults import storm_plan

        plan = storm_plan(303, intensity=4.0, duration_s=120.0,
                          num_blocks=64)
        return _run_workload_cell(job, "429.mcf", pinned_churn=True,
                                  fault_plan=plan)
    if job.scenario == "azure":
        return _run_azure_cell(job)
    if job.scenario == "mix":
        return _run_mix_cell(job)
    from repro.errors import ConfigurationError

    known = ", ".join(name for name, _ in SCENARIOS)
    raise ConfigurationError(
        f"unknown tournament scenario {job.scenario!r} (known: {known})")


def analytical_ranking() -> List[str]:
    """Figure 9/10's static view: estimator policies by DRAM power.

    Evaluated at the tournament's own operating point (the steady
    profile, non-interleaved, on the 16 GiB box), best first.
    """
    from repro.power.model import DRAMPowerModel
    from repro.workloads.registry import profile_by_name

    organization = _tournament_memory()
    power_model = DRAMPowerModel(organization)
    profile = profile_by_name("429.mcf")
    powers = {}
    for name in analytical_policy_names():
        estimate = create_estimator(name).estimate(
            profile, organization, False, 1)
        powers[name] = (power_model.power(estimate.rank_profiles).total_w
                        + estimate.extra_power_w)
    return sorted(powers, key=lambda name: powers[name])


def kernel_ranking(rows: Sequence[PolicyRow],
                   scenario: str = "steady") -> List[str]:
    """In-kernel ranking on one scenario, restricted to the analytical
    policies, best (highest DRAM energy saving) first."""
    savings = {row.policy: row.dram_energy_saving for row in rows
               if row.scenario == scenario
               and row.policy in analytical_policy_names()}
    return sorted(savings, key=lambda name: -savings[name])


def run(fast: bool = False,
        policies: Optional[Sequence[str]] = None,
        scenarios: Optional[Sequence[str]] = None,
        workers: int = 1,
        metrics=None) -> ExperimentResult:
    """Run the (policy x scenario) matrix and cross-check the rankings."""
    from repro.errors import ConfigurationError
    from repro.runner import fan_out

    chosen_policies = tuple(policies) if policies else policy_names()
    unknown = [p for p in chosen_policies if p not in policy_names()]
    if unknown:
        raise ConfigurationError(
            f"unknown policy {unknown[0]!r}; "
            f"known: {', '.join(policy_names())}")
    scenario_ids = tuple(name for name, _ in SCENARIOS)
    chosen_scenarios = tuple(scenarios) if scenarios else scenario_ids
    unknown = [s for s in chosen_scenarios if s not in scenario_ids]
    if unknown:
        raise ConfigurationError(
            f"unknown scenario {unknown[0]!r}; "
            f"known: {', '.join(scenario_ids)}")

    jobs = [TournamentJob(policy=policy, scenario=scenario, fast=fast)
            for scenario in chosen_scenarios for policy in chosen_policies]
    rows: List[PolicyRow] = fan_out(run_cell, jobs, workers=workers,
                                    metrics=metrics,
                                    label=lambda job: job.describe())
    if metrics is not None:
        for row in rows:
            metrics.emit("tournament_row", **row.as_dict())

    table = render_rows(
        "Policy tournament — every in-kernel policy across the scenario "
        "matrix (16 GiB consolidation box)", rows)
    means = mean_saving_by_policy(rows)
    best_policy = max(means, key=lambda name: means[name]) if means else ""

    measured: Dict[str, object] = {
        "cells": len(rows),
        "best_policy": best_policy,
    }
    for policy, saving in means.items():
        measured[f"mean_saving_{policy}"] = saving
    analytical = analytical_ranking()
    notes = ("per-cell rows carry residency/energy/tail extras into the "
             "metrics stream (see 'repro tournament --report')")
    if "steady" in chosen_scenarios and all(
            name in chosen_policies for name in analytical):
        in_kernel = kernel_ranking(rows)
        measured["ranking_consistent"] = in_kernel == analytical
        notes += ("; in-kernel steady ranking "
                  f"[{', '.join(in_kernel)}] vs analytical "
                  f"[{', '.join(analytical)}]")
    return ExperimentResult(
        experiment="tournament",
        description="policy tournament across the full scenario matrix "
                    "(extension beyond the paper)",
        tables=[table],
        measured=measured,
        paper={"ranking_consistent": True},
        notes=notes)
