"""Fleet study: GreenDIMM's savings at many-server scale.

The paper argues from fleet-wide memory under-utilization (Figure 1)
but evaluates one server at a time.  This experiment closes the loop:
one datacenter-scale Azure-like trace is sharded across a fleet of
GreenDIMM-managed consolidation servers (see :mod:`repro.sim.fleet`),
every server replays its shard through the unified simulation kernel,
and the fleet's aggregate DRAM energy saving is reported next to the
tail — the worst-off server, the 95th-percentile peak off-lined
capacity, and the fleet-wide emergency-online count.

Per-server replays are independent and deterministically seeded, so the
fleet fans out over a process pool without changing a single number:
set ``GREENDIMM_FLEET_WORKERS=N`` to use N workers (default 1, the
serial reference path).
"""

from __future__ import annotations

import os

from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult
from repro.sim.fleet import FleetSource, run_fleet

#: Fleet sizes: enough servers for tail statistics in full mode, a
#: quick four-server sweep for CI.
FULL_SERVERS = 8
FAST_SERVERS = 4

FLEET_SEED = 7


def _workers() -> int:
    raw = os.environ.get("GREENDIMM_FLEET_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def run(fast: bool = False) -> ExperimentResult:
    num_servers = FAST_SERVERS if fast else FULL_SERVERS
    duration_s = (6 * 3600.0) if fast else (24 * 3600.0)
    source = FleetSource(num_servers=num_servers, duration_s=duration_s,
                         seed=FLEET_SEED)
    result = run_fleet(source, workers=_workers())

    table = Table(
        f"Fleet study — {num_servers} servers, "
        f"{duration_s / 3600.0:.0f}h sharded VM trace",
        ["server", "vm events", "epochs", "energy saving",
         "mean offline", "peak offline", "emergency onlines",
         "ff fraction"])
    for server in result.servers:
        table.add_row(
            server.index,
            server.vm_events,
            server.epochs,
            f"{server.dram_energy_saving:.1%}",
            f"{server.mean_offline_blocks:.1f}"
            f"/{result.total_blocks_per_server}",
            server.max_offline_blocks,
            server.emergency_onlines,
            f"{server.fast_forward_fraction:.0%}")

    return ExperimentResult(
        experiment="fleet",
        description="Fleet-aggregate DRAM energy savings over a sharded "
                    "Azure-like VM trace (extension beyond the paper)",
        tables=[table],
        measured={
            "fleet_dram_energy_saving": result.fleet_dram_energy_saving,
            "worst_server_saving": result.worst_server_saving,
            "best_server_saving": result.best_server_saving,
            "p95_max_offline_blocks": result.p95_max_offline_blocks,
            "total_emergency_onlines": result.total_emergency_onlines,
        },
        notes="per-server replays are independently seeded, so results "
              "are identical at any GREENDIMM_FLEET_WORKERS setting")
