"""Table 1: DRAM power vs utilization of memory capacity (256GB).

The paper measures 25.8-26.0W while sweeping allocated capacity from 10%
to 100% — i.e. DRAM power is *flat* in capacity utilization because
unused sub-arrays refresh and leak exactly like used ones.  We reproduce
the sweep and additionally show the managed (GreenDIMM) column where the
unused fraction is gated, which is the proportionality the paper builds.
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.dram.organization import azure_server_memory
from repro.experiments.common import ExperimentResult
from repro.power.model import DRAMPowerModel

#: 16 copies of mcf, the paper's busy load.
BUSY_BANDWIDTH = 14e9


def run(fast: bool = False) -> ExperimentResult:
    model = DRAMPowerModel(azure_server_memory())
    utilizations = PAPER["tab1"]["utilizations"]
    table = Table("Table 1 — DRAM power vs utilization of memory capacity "
                  "(256GB)",
                  ["utilization", "paper (W)", "unmanaged (W)",
                   "greendimm-gated (W)"])
    unmanaged = []
    for utilization, paper_w in zip(utilizations, PAPER["tab1"]["power_w"]):
        busy = model.busy_power(BUSY_BANDWIDTH, active_residency=0.6)
        gated = model.busy_power(BUSY_BANDWIDTH, active_residency=0.6,
                                 dpd_fraction=1.0 - utilization)
        unmanaged.append(busy.total_w)
        table.add_row(f"{utilization:.0%}", f"{paper_w:.1f}",
                      f"{busy.total_w:.1f}", f"{gated.total_w:.1f}")
    spread = max(unmanaged) - min(unmanaged)
    return ExperimentResult(
        experiment="tab1",
        description=PAPER["tab1"]["description"],
        tables=[table],
        measured={"power_at_full_util_w": unmanaged[-1],
                  "spread_w": spread},
        paper={"power_at_full_util_w": PAPER["tab1"]["power_w"][-1],
               "spread_w": PAPER["tab1"]["power_w"][-1]
               - PAPER["tab1"]["power_w"][0]},
        notes="unmanaged power is flat in capacity utilization; only "
              "sub-array gating (right column) makes it proportional")
