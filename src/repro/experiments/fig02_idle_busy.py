"""Figure 2: DRAM idle and busy power as capacity grows.

Reproduces the measured points (9W busy at 64GB, 18W idle / 26W busy at
256GB) from the bottom-up IDD model and extends the curve to 1TB, where
the paper extrapolates ~91W busy with a ~78% background share.
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.dram.organization import scaled_server_memory
from repro.experiments.common import ExperimentResult
from repro.power.model import DRAMPowerModel
from repro.power.system import LinearDRAMCapacityModel

BUSY_BANDWIDTH = 14e9

CAPACITIES_GIB = (64, 128, 256, 512, 1024)


def run(fast: bool = False) -> ExperimentResult:
    table = Table("Figure 2 — DRAM idle/busy power vs capacity",
                  ["capacity", "idle (W)", "busy (W)", "background share"])
    points = {}
    for capacity in CAPACITIES_GIB:
        model = DRAMPowerModel(scaled_server_memory(capacity))
        idle = model.idle_power()
        busy = model.busy_power(BUSY_BANDWIDTH, active_residency=0.6)
        points[capacity] = (idle.total_w, busy.total_w,
                            busy.background_fraction)
        table.add_row(f"{capacity}GB", f"{idle.total_w:.1f}",
                      f"{busy.total_w:.1f}",
                      f"{busy.background_fraction:.0%}")

    linear = LinearDRAMCapacityModel.fit(64, points[64][1],
                                         256, points[256][1])
    return ExperimentResult(
        experiment="fig2",
        description=PAPER["fig2"]["description"],
        tables=[table],
        measured={
            "idle_w_256gb": points[256][0],
            "busy_w_256gb": points[256][1],
            "busy_w_64gb": points[64][1],
            "busy_w_1tb": points[1024][1],
            "background_fraction_64gb": points[64][2],
            "background_fraction_256gb": points[256][2],
            "background_fraction_1tb": points[1024][2],
            "linear_extrapolated_1tb_w": linear.power_w(1024),
        },
        paper={key: PAPER["fig2"][key] for key in (
            "idle_w_256gb", "busy_w_256gb", "busy_w_64gb", "busy_w_1tb",
            "background_fraction_64gb", "background_fraction_256gb",
            "background_fraction_1tb")},
        notes="1TB is built bottom-up here; the paper extrapolated its "
              "256GB measurement linearly (we report that fit too)")
