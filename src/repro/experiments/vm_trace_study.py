"""Shared 24-hour Azure-trace replays (Figures 1, 12, 13).

One full-system run per KSM setting on the 256GB platform, memoized so
the three figures share the same simulations.
"""

from __future__ import annotations

import functools
from typing import Tuple

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import azure_server_memory
from repro.sim.kernel import fast_forward_default
from repro.sim.server import ServerSimulator, VMTraceRunResult
from repro.units import GIB
from repro.workloads.azure import AzureTrace, AzureTraceGenerator

#: Kernel/boot reservation on the 256GB platform.
KERNEL_BYTES = 4 * GIB

#: Fig. 12 uses 1GB memory blocks on the 256GB platform (256 blocks).
BLOCK_BYTES = GIB


def make_trace(fast: bool = False, seed: int = 7) -> AzureTrace:
    """The 24-hour VM trace (6 hours around the diurnal peak when fast)."""
    organization = azure_server_memory()
    duration = (6 * 3600.0) if fast else (24 * 3600.0)
    return AzureTraceGenerator(
        capacity_bytes=organization.total_capacity_bytes - 5 * GIB,
        physical_cores=16, duration_s=duration, seed=seed).generate()


def replay(enable_ksm: bool, fast: bool = False
           ) -> Tuple[VMTraceRunResult, "GreenDIMMSystem"]:
    """Replay the trace against a GreenDIMM-managed 256GB server.

    Memoized per (ksm, fast, ambient fast-forward setting): the two
    simulation paths are bit-for-bit identical, but a ``repro run
    --no-fast-forward`` verification pass must not be served a memo
    recorded by the fast path inside the same process.
    """
    return _replay_cached(enable_ksm, fast, fast_forward_default())


@functools.lru_cache(maxsize=8)
def _replay_cached(enable_ksm: bool, fast: bool, fast_forward: bool
                   ) -> Tuple[VMTraceRunResult, "GreenDIMMSystem"]:
    config = GreenDIMMConfig(block_bytes=BLOCK_BYTES)
    system = GreenDIMMSystem(organization=azure_server_memory(),
                             config=config,
                             kernel_boot_bytes=KERNEL_BYTES,
                             enable_ksm=enable_ksm,
                             transient_failure_probability=0.85, seed=5)
    simulator = ServerSimulator(system, seed=5, fast_forward=fast_forward)
    trace = make_trace(fast=fast)
    result = simulator.run_vm_trace(trace, epoch_s=10.0)
    return result, system
