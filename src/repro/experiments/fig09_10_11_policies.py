"""Figures 9, 10, 11: the full policy-comparison matrix.

For every evaluated application: DRAM energy (Fig. 9) and system energy
(Fig. 10) under {self-refresh only, RAMZzz, PASR, GreenDIMM} x {with,
without interleaving}, normalized to "w/o intlv srf_only"; and the
execution-time increase GreenDIMM causes (Fig. 11).
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

from repro.analysis.paper import PAPER
from repro.experiments.common import ExperimentResult
from repro.analysis.report import Table
from repro.sim.experiment import PolicyResult, evaluate_policies, normalized
from repro.workloads.profiles import Suite
from repro.workloads.registry import EVALUATION_SET, profile_by_name

def _copies(profile) -> int:
    """Copies per application: one, as in the paper's per-benchmark runs
    (the Figure 3b footprints are single-copy 1-2GB)."""
    return 1


@functools.lru_cache(maxsize=2)
def _matrix(fast: bool) -> Dict[str, Dict[Tuple[str, bool], PolicyResult]]:
    fast_set = ("403.gcc", "429.mcf", "470.lbm",
                "ml_linear", "data-caching", "web-serving")
    apps = fast_set if fast else EVALUATION_SET
    results = {}
    for index, name in enumerate(apps):
        profile = profile_by_name(name)
        results[name] = evaluate_policies(profile, n_copies=_copies(profile),
                                          seed=200 + index)
    return results


def _norm_table(title: str, metric: str, fast: bool) -> Tuple[Table, Dict]:
    matrix = _matrix(fast)
    table = Table(title, ["application",
                          "srf w/", "ramzzz w/", "pasr w/", "gd w/",
                          "srf w/o", "ramzzz w/o", "pasr w/o", "gd w/o"])
    norms = {}
    for app, results in matrix.items():
        norm = normalized(results, metric)
        norms[app] = norm
        table.add_row(app, *[
            f"{norm[(policy, intlv)]:.2f}"
            for intlv in (True, False)
            for policy in ("srf_only", "ramzzz", "pasr", "greendimm")])
    return table, norms


def _mean_reduction(norms: Dict, suites, fast: bool) -> float:
    matrix = _matrix(fast)
    values = []
    for app, norm in norms.items():
        if profile_by_name(app).suite in suites:
            values.append(1.0 - norm[("greendimm", True)])
    return sum(values) / len(values) if values else 0.0


def run_fig09(fast: bool = False) -> ExperimentResult:
    table, norms = _norm_table(
        "Figure 9 — DRAM energy normalized to w/o-intlv srf_only",
        "dram_energy_j", fast)
    spec = _mean_reduction(norms, (Suite.SPEC2006, Suite.SPEC2017), fast)
    datacenter = _mean_reduction(norms, (Suite.HIBENCH, Suite.CLOUDSUITE),
                                 fast)
    gaps = [norms[app][("ramzzz", True)] - norms[app][("greendimm", True)]
            for app in norms]
    return ExperimentResult(
        experiment="fig9",
        description=PAPER["fig9"]["description"],
        tables=[table],
        measured={
            "spec_mean_reduction": spec,
            "datacenter_mean_reduction": datacenter,
            "greendimm_vs_rank_bank_pp": sum(gaps) / len(gaps),
            "gcc_interleaving_penalty":
                norms.get("403.gcc", {}).get(("srf_only", True), 0.0),
        },
        paper={key: PAPER["fig9"][key] for key in (
            "spec_mean_reduction", "datacenter_mean_reduction",
            "greendimm_vs_rank_bank_pp", "gcc_interleaving_penalty")})


def run_fig10(fast: bool = False) -> ExperimentResult:
    table, norms = _norm_table(
        "Figure 10 — system energy normalized to w/o-intlv srf_only",
        "system_energy_j", fast)
    spec = _mean_reduction(norms, (Suite.SPEC2006, Suite.SPEC2017), fast)
    datacenter = _mean_reduction(norms, (Suite.HIBENCH, Suite.CLOUDSUITE),
                                 fast)
    return ExperimentResult(
        experiment="fig10",
        description=PAPER["fig10"]["description"],
        tables=[table],
        measured={
            "spec_mean_reduction": spec,
            "datacenter_mean_reduction": datacenter,
            "gcc_interleaving_penalty":
                norms.get("403.gcc", {}).get(("srf_only", True), 0.0),
        },
        paper={key: PAPER["fig10"][key] for key in (
            "spec_mean_reduction", "datacenter_mean_reduction",
            "gcc_interleaving_penalty")})


def run_fig11(fast: bool = False) -> ExperimentResult:
    matrix = _matrix(fast)
    table = Table("Figure 11 — execution-time increase by GreenDIMM",
                  ["application", "overhead"])
    overheads = {}
    for app, results in matrix.items():
        overhead = results[("greendimm", True)].overhead_fraction
        overheads[app] = overhead
        table.add_row(app, f"{overhead:.2%}")
    return ExperimentResult(
        experiment="fig11",
        description=PAPER["fig11"]["description"],
        tables=[table],
        measured={"worst_case": max(overheads.values()),
                  "worst_app": max(overheads, key=overheads.get)},
        paper={"worst_case": PAPER["fig11"]["worst_case"],
               "worst_app": " or ".join(PAPER["fig11"]["worst_apps"])},
        notes="latency-critical services show near-zero daemon activity, "
              "matching the paper's unchanged tail latencies")

