"""Figure 3: what memory interleaving gives and what it destroys.

(a) speedup of high-MPKI SPEC2006 from interleaving when the machine is
    loaded with 16 copies (paper: up to ~3.8x);
(b) self-refresh residency of the ranks for single-copy runs with a
    ~1-2GB footprint: ~0% with interleaving, ~54% of cycles without
    (measured here with the cycle-approximate controller, including a
    low-rate kernel background stream that periodically wakes ranks);
(c) DRAM energy of those single-copy runs: disabling interleaving saves
    ~26% on average under the rank-granularity self-refresh baseline.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.baselines.srf_only import SelfRefreshOnlyPolicy
from repro.dram.address import AddressMapping
from repro.dram.organization import spec_server_memory
from repro.experiments.common import ExperimentResult
from repro.memctrl.controller import MemoryController
from repro.memctrl.lowpower import LowPowerConfig
from repro.power.model import DRAMPowerModel
from repro.sim.perfmodel import (
    MemorySystemPoint,
    PerformanceModel,
    interleaved_point,
)
from repro.units import GIB
from repro.workloads.spec import high_mpki_spec2006
from repro.workloads.trace import AccessTraceGenerator

LOADED_COPIES = 16

#: Kernel/daemon background traffic touching the whole address space —
#: what keeps the paper's measured idle-rank residency at ~54% instead
#: of the geometric maximum.
KERNEL_NOISE_RATE_PER_S = 6e5


def _controller_residency(profile, interleaved: bool, requests: int,
                          seed: int) -> float:
    """Single-copy self-refresh residency from the controller."""
    org = spec_server_memory()
    mapping = AddressMapping(org, interleaved=interleaved)
    controller = MemoryController(org, mapping=mapping,
                                  lowpower=LowPowerConfig(
                                      powerdown_idle_ns=1_000.0,
                                      selfrefresh_idle_ns=10_000.0))
    footprint = min(profile.peak_footprint_bytes, 2 * GIB)
    app = AccessTraceGenerator(
        footprint, rate_per_s=profile.bandwidth_demand_bytes_per_s / 64.0,
        locality=profile.row_hit_rate, rng=random.Random(seed))
    noise = AccessTraceGenerator(
        org.total_capacity_bytes, rate_per_s=KERNEL_NOISE_RATE_PER_S,
        locality=0.0, rng=random.Random(seed + 1))
    noise_share = int(requests * KERNEL_NOISE_RATE_PER_S
                      / (app.rate_per_s + KERNEL_NOISE_RATE_PER_S))
    stream = sorted(app.generate(requests - noise_share)
                    + noise.generate(noise_share),
                    key=lambda r: r.arrival_ns)
    return controller.run(stream).selfrefresh_fraction()


def run(fast: bool = False) -> ExperimentResult:
    org = spec_server_memory()
    perf = PerformanceModel()
    power_model = DRAMPowerModel(org)
    srf = SelfRefreshOnlyPolicy()
    requests = 6_000 if fast else 30_000

    speedup_table = Table(
        "Figure 3a — speedup from interleaving (16 copies)",
        ["workload", "speedup"])
    residency_table = Table(
        "Figure 3b — self-refresh residency, single copy",
        ["workload", "w/ interleaving", "w/o interleaving"])
    energy_table = Table(
        "Figure 3c — DRAM energy without interleaving (single copy, "
        "normalized to w/ interleaving)",
        ["workload", "runtime factor", "energy ratio", "saving"])

    speedups: Dict[str, float] = {}
    residencies = {True: [], False: []}
    savings = []
    for index, profile in enumerate(high_mpki_spec2006()):
        speedup = perf.speedup_from_interleaving(profile, org,
                                                 n_copies=LOADED_COPIES)
        speedups[profile.name] = speedup
        speedup_table.add_row(profile.name, f"{speedup:.2f}x")

        sr_on = _controller_residency(profile, True, requests, seed=31 + index)
        sr_off = _controller_residency(profile, False, requests,
                                       seed=67 + index)
        residencies[True].append(sr_on)
        residencies[False].append(sr_off)
        residency_table.add_row(profile.name, f"{sr_on:.1%}", f"{sr_off:.1%}")

        # Single copy: no queueing contention, and MLP bounded by what
        # one core's MSHRs sustain (8 interleaved, ~3 within one rank).
        base = interleaved_point(org)
        on = MemorySystemPoint(name="single-core-intlv",
                               latency_ns=base.latency_ns,
                               effective_mlp=8.0,
                               bandwidth_cap_bytes_per_s=base.bandwidth_cap_bytes_per_s)
        off = MemorySystemPoint(name="single-core-no-intlv",
                                latency_ns=base.latency_ns,
                                effective_mlp=3.0,
                                bandwidth_cap_bytes_per_s=base.bandwidth_cap_bytes_per_s / 4)
        runtime_factor = perf.cpi(profile, off, 1) / perf.cpi(profile, on, 1)
        power_on = power_model.power(
            srf.estimate(profile, org, True, 1).rank_profiles).total_w
        power_off = power_model.power(
            srf.estimate(profile, org, False, 1).rank_profiles).total_w
        ratio = (power_off * runtime_factor) / power_on
        savings.append(1.0 - ratio)
        energy_table.add_row(profile.name, f"{runtime_factor:.2f}",
                             f"{ratio:.2f}",
                             f"{1 - ratio:.1%}" if ratio < 1 else "-")

    mean_sr_on = sum(residencies[True]) / len(residencies[True])
    mean_sr_off = sum(residencies[False]) / len(residencies[False])
    return ExperimentResult(
        experiment="fig3",
        description=PAPER["fig3"]["description"],
        tables=[speedup_table, residency_table, energy_table],
        measured={
            "max_speedup": max(speedups.values()),
            "selfrefresh_fraction_interleaved": mean_sr_on,
            "selfrefresh_fraction_non_interleaved": mean_sr_off,
            "energy_reduction_wo_interleaving": sum(savings) / len(savings),
        },
        paper={key: PAPER["fig3"][key] for key in (
            "max_speedup", "selfrefresh_fraction_interleaved",
            "selfrefresh_fraction_non_interleaved",
            "energy_reduction_wo_interleaving")},
        notes="speedups are for the loaded machine; residency/energy for "
              "single copies, as in the paper's 1.2GB-footprint runs")
