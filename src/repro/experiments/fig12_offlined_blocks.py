"""Figure 12: off-lined memory blocks over the Azure VM trace.

256GB platform with 1GB blocks (256 of them).  Paper: GreenDIMM
off-lines 116 blocks on average (45% of capacity), between 4 (peak
demand) and 230 (trough), cutting DRAM background power by ~46%; KSM
adds ~61 more blocks, for a ~70% background-power cut.
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult
from repro.experiments.vm_trace_study import replay


def run(fast: bool = False) -> ExperimentResult:
    plain, _sys_plain = replay(False, fast)
    merged, _sys_merged = replay(True, fast)

    series = Table("Figure 12 — off-lined blocks over the day "
                   "(hourly means, 256 x 1GB blocks)",
                   ["hour", "w/o ksm", "w/ ksm"])
    per_hour = max(1, 3600 // 10)
    for start in range(0, len(plain.samples), per_hour):
        chunk = slice(start, start + per_hour)
        p = plain.samples[chunk]
        m = merged.samples[chunk]
        if not p or not m:
            continue
        series.add_row(start // per_hour,
                       f"{sum(s.offline_blocks for s in p) / len(p):.0f}",
                       f"{sum(s.offline_blocks for s in m) / len(m):.0f}")

    # The paper computes its 46%/70% background reductions by *assuming*
    # every off-lined block's groups are gated; our primary number uses
    # the actually-gated fraction, which pair-gating and partially
    # covered groups keep a few points lower.  Both are reported.
    paper_method = (plain.mean_offline_blocks / plain.total_blocks
                    * 0.97 * 0.98)
    paper_method_ksm = (merged.mean_offline_blocks / merged.total_blocks
                        * 0.97 * 0.98)
    return ExperimentResult(
        experiment="fig12",
        description=PAPER["fig12"]["description"],
        tables=[series],
        measured={
            "mean_offline_blocks": plain.mean_offline_blocks,
            "max_offline_blocks": plain.max_offline_blocks,
            "min_offline_blocks": plain.min_offline_blocks,
            "background_power_reduction": plain.background_power_reduction,
            "background_reduction_paper_method": paper_method,
            "ksm_extra_blocks": (merged.mean_offline_blocks
                                 - plain.mean_offline_blocks),
            "ksm_background_power_reduction":
                merged.background_power_reduction,
            "ksm_background_reduction_paper_method": paper_method_ksm,
        },
        paper={
            **{key: PAPER["fig12"][key] for key in (
                "mean_offline_blocks", "max_offline_blocks",
                "min_offline_blocks", "background_power_reduction",
                "ksm_extra_blocks", "ksm_background_power_reduction")},
            "background_reduction_paper_method":
                PAPER["fig12"]["background_power_reduction"],
            "ksm_background_reduction_paper_method":
                PAPER["fig12"]["ksm_background_power_reduction"],
        },
        notes="the paper assumes off-lined => gated; the 'paper_method' "
              "rows apply that assumption, the primary rows charge the "
              "sense-amp pairing and partially covered groups honestly")
