"""One place that knows every experiment's name and runner.

The CLI, the benchmark harness, and the EXPERIMENTS.md generator all
resolve experiments through this table, so adding a module here makes it
available everywhere at once.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult


def runners() -> Dict[str, Callable[..., ExperimentResult]]:
    """Name -> ``run(fast=...)`` callable for every experiment."""
    from repro.experiments import (
        daemon_overhead,
        fig01_utilization,
        fig02_idle_busy,
        fig03_interleaving,
        fault_storm,
        fleet,
        fig08_failures,
        fig12_offlined_blocks,
        fig13_capacity_scaling,
        gem5_staircase,
        tab01_power_vs_util,
        tab03_latency,
        tail_latency,
        tournament,
    )
    from repro.experiments.fig06_07_tab02_blocksize import (
        run_fig06,
        run_fig07,
        run_tab02,
    )
    from repro.experiments.fig09_10_11_policies import (
        run_fig09,
        run_fig10,
        run_fig11,
    )

    return {
        "fig1": fig01_utilization.run,
        "tab1": tab01_power_vs_util.run,
        "fig2": fig02_idle_busy.run,
        "fig3": fig03_interleaving.run,
        "fig6": run_fig06,
        "fig7": run_fig07,
        "tab2": run_tab02,
        "tab3": tab03_latency.run,
        "fig8": fig08_failures.run,
        "fig9": run_fig09,
        "fig10": run_fig10,
        "fig11": run_fig11,
        "fig12": fig12_offlined_blocks.run,
        "fig13": fig13_capacity_scaling.run,
        "daemon-overhead": daemon_overhead.run,
        "tail-latency": tail_latency.run,
        "fault-storm": fault_storm.run,
        "fleet": fleet.run,
        "gem5-staircase": gem5_staircase.run,
        "tournament": tournament.run,
    }


def run_experiment(name: str, fast: bool = False) -> ExperimentResult:
    """Run one experiment by name."""
    table = runners()
    if name not in table:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(table))}")
    return table[name](fast=fast)
