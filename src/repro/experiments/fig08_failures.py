"""Figure 8: off-lining failures, random vs removable-first selection.

Random candidate selection trips over blocks with used or unmovable
pages (EBUSY/EAGAIN); checking the sysfs ``removable`` flag first cuts
failures roughly in half in the paper.  Applications with volatile
footprints (gcc, soplex) fail more than stable ones (mcf).
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.core.config import SelectionPolicy
from repro.experiments.blocksize_study import run_app
from repro.experiments.common import ExperimentResult
from repro.workloads.spec import BLOCKSIZE_STUDY_SET


def run(fast: bool = False) -> ExperimentResult:
    table = Table("Figure 8 — off-lining failures by selection policy "
                  "(EBUSY + EAGAIN)",
                  ["application", "random", "removable-first", "reduction"])
    totals = {SelectionPolicy.RANDOM: 0,
              SelectionPolicy.REMOVABLE_FIRST: 0}
    per_app = {}
    for app in BLOCKSIZE_STUDY_SET:
        counts = {}
        for policy in (SelectionPolicy.RANDOM,
                       SelectionPolicy.REMOVABLE_FIRST):
            run_result = run_app(app, 128, policy=policy, fast=fast,
                                 seed=101)
            ebusy, eagain = run_result.failures
            counts[policy] = ebusy + eagain
            totals[policy] += ebusy + eagain
        per_app[app] = counts
        random_count = counts[SelectionPolicy.RANDOM]
        careful = counts[SelectionPolicy.REMOVABLE_FIRST]
        reduction = (1 - careful / random_count) if random_count else 0.0
        table.add_row(app, random_count, careful, f"{reduction:.0%}")

    overall = (1 - totals[SelectionPolicy.REMOVABLE_FIRST]
               / totals[SelectionPolicy.RANDOM]
               if totals[SelectionPolicy.RANDOM] else 0.0)
    volatile = per_app["403.gcc"][SelectionPolicy.RANDOM]
    stable = per_app["429.mcf"][SelectionPolicy.RANDOM]
    return ExperimentResult(
        experiment="fig8",
        description=PAPER["fig8"]["description"],
        tables=[table],
        measured={"failure_reduction": overall,
                  "volatile_fail_more_than_stable": volatile >= stable},
        paper={"failure_reduction": PAPER["fig8"]["failure_reduction"],
               "volatile_fail_more_than_stable": True})
