"""Figure 1: memory capacity used by the server over 24 hours.

Replays the Azure-like VM trace on the 256GB platform and reports the
utilization statistics, with and without KSM.  Paper: mean ~48%, range
7-92%; KSM reduces used capacity by 4-90% (24% on average).
"""

from __future__ import annotations

from repro.analysis.paper import PAPER
from repro.analysis.report import Table
from repro.dram.organization import azure_server_memory
from repro.experiments.common import ExperimentResult
from repro.experiments.vm_trace_study import make_trace, replay
from repro.units import PAGE_SIZE


def run(fast: bool = False) -> ExperimentResult:
    organization = azure_server_memory()
    capacity_pages = organization.total_capacity_bytes // PAGE_SIZE
    trace = make_trace(fast=fast)
    plain, _system = replay(False, fast)
    merged, system = replay(True, fast)

    hours = Table("Figure 1 — memory utilization over the day",
                  ["hour", "w/o ksm", "w/ ksm", "ksm reduction"])
    samples_per_hour = max(1, len(plain.samples) * 3600
                           // int(trace.samples[-1].time_s + 300))
    reductions = []
    utilizations = []
    for start in range(0, len(plain.samples), samples_per_hour):
        chunk = slice(start, start + samples_per_hour)
        used_plain = [s.used_pages for s in plain.samples[chunk]]
        used_merged = [s.used_pages for s in merged.samples[chunk]]
        if not used_plain or not used_merged:
            continue
        u_plain = sum(used_plain) / len(used_plain) / capacity_pages
        u_merged = sum(used_merged) / len(used_merged) / capacity_pages
        utilizations.append(u_plain)
        reduction = 1 - u_merged / u_plain if u_plain else 0.0
        reductions.append(reduction)
        hours.add_row(start // samples_per_hour, f"{u_plain:.1%}",
                      f"{u_merged:.1%}", f"{reduction:.1%}")

    all_plain = [s.used_pages / capacity_pages for s in plain.samples]
    return ExperimentResult(
        experiment="fig1",
        description=PAPER["fig1"]["description"],
        tables=[hours],
        measured={
            "mean_utilization": sum(all_plain) / len(all_plain),
            "min_utilization": min(all_plain),
            "max_utilization": max(all_plain),
            "ksm_mean_reduction": sum(reductions) / len(reductions),
        },
        paper={key: PAPER["fig1"][key] for key in (
            "mean_utilization", "min_utilization", "max_utilization",
            "ksm_mean_reduction")},
        notes="utilization here is used/installed capacity as the OS "
              "sees it; KSM savings phase in as ksmd completes passes")
