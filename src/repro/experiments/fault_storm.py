"""Fault storm: Figure 8 extended into a resilience stress matrix.

Figure 8 counts the off-lining failures that occur *organically*; this
experiment provokes them.  A seeded :func:`repro.faults.storm_plan`
batters the hot-plug path with EBUSY/EAGAIN storms, sticky blocks,
wake-up timeouts, on-line failures, and allocation-pressure spikes at
three intensities, while a sawtooth footprint (with emergency-capable
resizes) keeps the daemon off-lining and on-lining throughout.  For
each (storm intensity x selection policy) cell it reports failure
counts, injected-fault counts, the emergency-online rate, and the tail
of the daemon's per-epoch busy time.

The paper's Figure 8 claim must survive the weather: removable-first
selection keeps beating random selection at every storm intensity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig, SelectionPolicy
from repro.core.system import GreenDIMMSystem
from repro.experiments.blocksize_study import study_organization
from repro.experiments.common import ExperimentResult
from repro.faults import FaultPlan, storm_plan
from repro.sim.server import ServerSimulator
from repro.units import MIB

#: Storm intensities: expected injected-fault windows per 4 s of run.
INTENSITIES: Tuple[Tuple[str, float], ...] = (
    ("calm", 0.5), ("gusty", 2.0), ("storm", 6.0))

STORM_SEED = 303
_DURATION_S = 120.0
_BLOCK_MIB = 64


@dataclass(frozen=True)
class StormCell:
    """One (intensity, policy) cell of the stress matrix."""

    intensity: str
    policy: SelectionPolicy
    organic_failures: int
    injected_faults: int
    emergency_onlines: int
    emergency_rate_per_min: float
    busy_p95_ms: float
    quarantines: int

    @property
    def total_failures(self) -> int:
        return self.organic_failures


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def _storm_run(policy: SelectionPolicy, plan: FaultPlan,
               intensity: str, fast: bool) -> StormCell:
    """Drive one server through the storm with a sawtooth footprint."""
    config = GreenDIMMConfig(block_bytes=_BLOCK_MIB * MIB, selection=policy)
    system = GreenDIMMSystem(
        organization=study_organization(), config=config,
        kernel_boot_bytes=512 * MIB,
        transient_failure_probability=0.85,
        fault_plan=plan, seed=STORM_SEED)
    simulator = ServerSimulator(system, seed=STORM_SEED)

    total_pages = system.mm.total_pages
    low = int(0.20 * total_pages)
    high = int(0.62 * total_pages)
    period_s = 30.0
    epoch_s = 2.0 if fast else 1.0
    duration = _DURATION_S / 2 if fast else _DURATION_S

    busy_deltas: List[float] = []
    busy_before = 0.0
    t = 0.0
    while t < duration:
        # Descending sawtooth: the footprint leaps to its peak at each
        # period boundary — far beyond the free reserve, forcing the
        # emergency-online path — then drains so the daemon off-lines
        # the surplus again.  Both daemon loops stay busy all run.
        phase = (t % period_s) / period_s
        target = int(high - (high - low) * phase)
        simulator.resize_owner("app", target, t, emergency=True)
        simulator._pinned_churn(t, epoch_s)
        system.step(t, epoch_s)
        busy_now = system.daemon.stats.busy_s
        busy_deltas.append(busy_now - busy_before)
        busy_before = busy_now
        t += epoch_s

    stats = system.daemon.stats
    injector = system.fault_injector
    injected = injector.stats.total if injector is not None else 0
    return StormCell(
        intensity=intensity,
        policy=policy,
        organic_failures=stats.total_failures,
        injected_faults=injected,
        emergency_onlines=stats.emergency_onlines,
        emergency_rate_per_min=stats.emergency_onlines / (duration / 60.0),
        busy_p95_ms=_percentile(busy_deltas, 0.95) * 1e3,
        quarantines=stats.quarantines)


def run(fast: bool = False) -> ExperimentResult:
    table = Table(
        "Fault storm — off-lining failures and resilience by selection "
        "policy under injected failure storms",
        ["storm", "policy", "failures", "injected", "emergencies/min",
         "busy p95 (ms)", "quarantines"])
    cells: Dict[Tuple[str, SelectionPolicy], StormCell] = {}
    total_injected = 0
    for name, intensity in INTENSITIES:
        plan = storm_plan(STORM_SEED, intensity=intensity,
                          duration_s=_DURATION_S, num_blocks=128)
        for policy in (SelectionPolicy.RANDOM,
                       SelectionPolicy.REMOVABLE_FIRST):
            cell = _storm_run(policy, plan, name, fast)
            cells[(name, policy)] = cell
            total_injected += cell.injected_faults
            table.add_row(name, policy.value, cell.total_failures,
                          cell.injected_faults,
                          f"{cell.emergency_rate_per_min:.2f}",
                          f"{cell.busy_p95_ms:.2f}", cell.quarantines)

    removable_wins = all(
        cells[(name, SelectionPolicy.REMOVABLE_FIRST)].total_failures
        <= cells[(name, SelectionPolicy.RANDOM)].total_failures
        for name, _ in INTENSITIES)
    worst = cells[("storm", SelectionPolicy.REMOVABLE_FIRST)]
    return ExperimentResult(
        experiment="fault_storm",
        description="stress matrix extending Figure 8: selection policy "
                    "vs deterministic failure storms",
        tables=[table],
        measured={
            "removable_beats_random_all_storms": removable_wins,
            "total_injected_faults": total_injected,
            "storm_emergency_rate_per_min": worst.emergency_rate_per_min,
            "storm_busy_p95_ms": worst.busy_p95_ms,
        },
        paper={"removable_beats_random_all_storms": True},
        notes="the paper's Figure 8 ranking must hold under provoked "
              "failure storms, not just organic ones; emergency rate and "
              "busy tail bound the daemon's degradation")
