"""ksmd — the scanning/merging daemon.

Walks the advised regions at a bounded rate (the paper configures 1000
pages per 50 ms pass slice, costing ~10% of one core), merging via the
stable/unstable trees and freeing the deduplicated physical pages back
to the memory manager — which is exactly what hands GreenDIMM more
off-lineable blocks (Section 5.3).  The daemon raises a completion flag
at the end of each full pass so GreenDIMM can react immediately instead
of waiting for its next monitoring period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.errors import AllocationError, ConfigurationError
from repro.ksm.content import ZERO_FINGERPRINT, RegionContent, chunk_fingerprint
from repro.ksm.madvise import MadviseRegistry
from repro.ksm.trees import StableTree, UnstableTree
from repro.os.mm import PhysicalMemoryManager


@dataclass(frozen=True)
class KSMConfig:
    """sysfs-style knobs: pages per scan slice and the slice period."""

    pages_to_scan: int = 1000
    scan_period_s: float = 0.050
    #: Per-second probability that one shared page is written (CoW break).
    cow_rate_per_s: float = 1e-5
    #: Scan throughput at which ksmd would consume a full core.
    full_core_pages_per_s: float = 200_000.0

    def __post_init__(self) -> None:
        if self.pages_to_scan <= 0 or self.scan_period_s <= 0:
            raise ConfigurationError("scan knobs must be positive")

    @property
    def pages_per_second(self) -> float:
        return self.pages_to_scan / self.scan_period_s

    @property
    def cpu_utilization(self) -> float:
        """Fraction of one core ksmd consumes (paper: ~10%)."""
        return min(1.0, self.pages_per_second / self.full_core_pages_per_s)


@dataclass
class KSMStats:
    pages_scanned: int = 0
    pages_merged: int = 0
    pages_unmerged_cow: int = 0
    passes_completed: int = 0

    @property
    def pages_saved(self) -> int:
        return self.pages_merged - self.pages_unmerged_cow


@dataclass
class _OwnerShare:
    """What one owner currently has merged (for exit/CoW accounting)."""

    zero_pages: int = 0
    chunk_pages: Dict[int, int] = field(default_factory=dict)  # fp -> pages

    @property
    def merged_pages(self) -> int:
        return self.zero_pages + sum(self.chunk_pages.values())


class KSMDaemon:
    """Periodic scanner over a :class:`MadviseRegistry`."""

    def __init__(self, mm: PhysicalMemoryManager,
                 registry: Optional[MadviseRegistry] = None,
                 config: Optional[KSMConfig] = None,
                 rng: Optional[random.Random] = None):
        self.mm = mm
        self.registry = registry or MadviseRegistry()
        self.config = config or KSMConfig()
        self.rng = rng or random.Random(97)
        self.stable = StableTree()
        self.unstable = UnstableTree()
        self.stats = KSMStats()
        self._shares: Dict[str, _OwnerShare] = {}
        self._merged_chunks: Dict[str, Set[int]] = {}
        self._zero_sharers = 0
        self.pass_just_completed = False

    # --- registration ----------------------------------------------------

    def register(self, region: RegionContent) -> None:
        """madvise(MADV_MERGEABLE) for *region*."""
        self.registry.madvise(region)
        self._shares.setdefault(region.owner_id, _OwnerShare())
        self._merged_chunks.setdefault(region.owner_id, set())

    def unregister(self, owner_id: str) -> None:
        """Owner exits: release its shares from the trees.

        The physical pages themselves are freed by whoever frees the
        owner's memory; here we only fix up sharer counts.
        """
        self.registry.remove_owner(owner_id)
        share = self._shares.pop(owner_id, None)
        self._merged_chunks.pop(owner_id, None)
        if share is None:
            return
        if share.zero_pages:
            self._zero_sharers -= 1
        for fingerprint in share.chunk_pages:
            page = self.stable.lookup(fingerprint)
            if page is not None:
                self.stable.drop_sharer(fingerprint)

    def saved_pages(self, owner_id: str) -> int:
        share = self._shares.get(owner_id)
        return share.merged_pages if share else 0

    @property
    def total_saved_pages(self) -> int:
        return sum(s.merged_pages for s in self._shares.values())

    # --- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> dict:
        """Registry regions (with their scan cursors), both trees, share
        accounting, and the CoW RNG.  The region objects are shared with
        whatever registered them (e.g. the trace source) — the one-pickle
        snapshot keeps that sharing intact."""
        return {"registry": self.registry.state_dict(),
                "stable": self.stable.state_dict(),
                "unstable": self.unstable.state_dict(),
                "stats": self.stats,
                "shares": self._shares,
                "merged_chunks": self._merged_chunks,
                "zero_sharers": self._zero_sharers,
                "pass_just_completed": self.pass_just_completed,
                "rng": self.rng.getstate()}

    def load_state_dict(self, state: dict) -> None:
        self.registry.load_state_dict(state["registry"])
        self.stable.load_state_dict(state["stable"])
        self.unstable.load_state_dict(state["unstable"])
        self.stats = state["stats"]
        self._shares = state["shares"]
        self._merged_chunks = state["merged_chunks"]
        self._zero_sharers = state["zero_sharers"]
        self.pass_just_completed = state["pass_just_completed"]
        self.rng.setstate(state["rng"])

    # --- the scan loop -----------------------------------------------------

    def step(self, dt_s: float) -> int:
        """Advance ksmd by *dt_s* seconds; returns pages merged this step."""
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        self.pass_just_completed = False
        regions = self.registry.regions()
        if not regions:
            return 0
        budget = int(self.config.pages_per_second * dt_s)
        if budget <= 0:
            return 0
        merged_now = 0
        total_pages = sum(r.total_pages for r in regions)
        for region in regions:
            share = budget * region.total_pages // total_pages
            if share <= 0:
                continue
            merged_now += self._scan_region(region, share)
        self.stats.pages_scanned += budget
        if all(r.pass_complete for r in regions):
            self.stats.passes_completed += 1
            self.pass_just_completed = True
            self.unstable.reset()
            for region in regions:
                region.reset_pass()
        merged_now += 0
        self._apply_cow(dt_s)
        return merged_now

    def _scan_region(self, region: RegionContent, pages: int) -> int:
        owner = region.owner_id
        share = self._shares[owner]
        merged_chunks = self._merged_chunks[owner]
        zero_scanned, new_chunks = region.advance_scan(pages)
        merged = 0

        # Zero pages: everything beyond the first system-wide copy merges
        # (frequently-written zero pages never checksum-stabilize).
        fresh_zero = min(zero_scanned,
                         region.stable_zero_pages - share.zero_pages)
        if fresh_zero > 0:
            if self._zero_sharers == 0 and share.zero_pages == 0:
                # First zero page becomes the shared copy.
                self.stable.insert(ZERO_FINGERPRINT, sharers=1)
                self._zero_sharers = 1
                fresh_zero -= 1
            elif share.zero_pages == 0:
                self._zero_sharers += 1
            share.zero_pages += fresh_zero
            merged += fresh_zero

        # Image chunks: merge when another copy already reached the trees.
        for chunk in new_chunks:
            if chunk in merged_chunks:
                continue
            if region.chunk_is_volatile(chunk):
                continue  # checksum unstable: never enters the trees
            fingerprint = chunk_fingerprint(region.image_id, chunk)
            chunk_pages = region.pages_per_chunk
            if self.stable.lookup(fingerprint) is not None:
                self.stable.add_sharer(fingerprint)
                merged_chunks.add(chunk)
                share.chunk_pages[fingerprint] = chunk_pages
                merged += chunk_pages
                continue
            holder = self.unstable.find_or_insert(fingerprint, (owner, chunk))
            if holder is None:
                continue  # first sighting this pass; wait for a twin
            other_owner, _other_chunk = holder
            if other_owner == owner:
                continue
            # Two identical chunks met: promote, free this owner's copy.
            self.stable.insert(fingerprint, sharers=2)
            merged_chunks.add(chunk)
            share.chunk_pages[fingerprint] = chunk_pages
            merged += chunk_pages

        if merged > 0:
            freed = self.mm.free_pages_of(owner, merged)
            self.stats.pages_merged += freed
            return freed
        return 0

    def _apply_cow(self, dt_s: float) -> None:
        """Writers break sharing: re-allocate a private copy per break."""
        rate = self.config.cow_rate_per_s * dt_s
        if rate <= 0:
            return
        for owner, share in self._shares.items():
            if share.merged_pages <= 0:
                continue
            expected = share.merged_pages * rate
            breaks = int(expected)
            if self.rng.random() < expected - breaks:
                breaks += 1
            breaks = min(breaks, share.merged_pages)
            if breaks <= 0:
                continue
            taken = 0
            # Break zero-page shares first (they are the most written).
            zero_breaks = min(breaks, share.zero_pages)
            share.zero_pages -= zero_breaks
            taken += zero_breaks
            while taken < breaks and share.chunk_pages:
                fingerprint = next(iter(share.chunk_pages))
                pages = share.chunk_pages.pop(fingerprint)
                page = self.stable.lookup(fingerprint)
                if page is not None:
                    self.stable.drop_sharer(fingerprint)
                taken += min(pages, breaks - taken)
            try:
                self.mm.allocate(owner, taken)
                self.stats.pages_unmerged_cow += taken
            except AllocationError:
                # No room for the private copy right now; the unmerge is
                # skipped (the real kernel would reclaim or OOM here).
                pass
        return None
