"""Kernel Samepage Merging substrate.

Reproduces the KSM mechanism of Section 2.4: applications (or the KVM
hypervisor on behalf of VMs) advise regions as mergeable via
``madvise(MADV_MERGEABLE)``; the ksmd daemon scans a bounded number of
pages per pass (the paper configures 1000 pages every 50 ms), looks each
page up in a *stable tree* of already-shared pages and an *unstable tree*
of candidate pages, merges identical content into write-protected shared
pages, and breaks shares copy-on-write when a sharer writes.

Page *content* is modelled as fingerprint histograms per region (zero
pages, image-derived pages shared across VMs cloned from the same image,
and unique pages), which reproduces the observable the paper cares
about: a 4-90% (mean ~24%) reduction in used capacity on the Azure mix.
"""

from repro.ksm.content import RegionContent, ContentStats
from repro.ksm.trees import StableTree, UnstableTree
from repro.ksm.daemon import KSMDaemon, KSMConfig, KSMStats
from repro.ksm.madvise import MadviseRegistry, MADV_MERGEABLE, MADV_UNMERGEABLE

__all__ = [
    "RegionContent",
    "ContentStats",
    "StableTree",
    "UnstableTree",
    "KSMDaemon",
    "KSMConfig",
    "KSMStats",
    "MadviseRegistry",
    "MADV_MERGEABLE",
    "MADV_UNMERGEABLE",
]
