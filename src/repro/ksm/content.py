"""Page-content model for KSM regions.

A mergeable region's pages fall into three classes:

* **zero pages** — all-zero content, the single biggest dedup win in
  practice (guest free memory, zeroed heaps);
* **image pages** — content derived from the VM's base image; VMs cloned
  from the same ``image_id`` carry identical copies, which is the
  cross-VM sharing KVM+KSM was built for (Section 2.4);
* **unique pages** — workload data that never merges.

Image content is fingerprinted at *chunk* granularity (a chunk is a run
of pages with contiguous image content): tree operations happen per
chunk while page accounting stays exact.  This keeps a 24-hour Azure
simulation tractable without giving up the stable/unstable tree
mechanics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError

#: Fingerprint of the all-zero page.
ZERO_FINGERPRINT = 0


def chunk_fingerprint(image_id: int, chunk_index: int) -> int:
    """Stable 63-bit fingerprint of one image chunk's content."""
    digest = hashlib.blake2b(
        f"image:{image_id}:chunk:{chunk_index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1 | 1  # never collides with 0


def unique_fingerprint(owner_id: str, index: int) -> int:
    """Fingerprint of a page unique to *owner_id* (never merges)."""
    digest = hashlib.blake2b(
        f"unique:{owner_id}:{index}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1 | 1


@dataclass(frozen=True)
class ContentStats:
    zero_pages: int
    image_pages: int
    unique_pages: int

    @property
    def total_pages(self) -> int:
        return self.zero_pages + self.image_pages + self.unique_pages


@dataclass
class RegionContent:
    """One owner's mergeable region, with scan-progress bookkeeping.

    ``zero_fraction`` and ``image_fraction`` split the region's pages;
    the remainder is unique.  ``chunks`` is how many fingerprinted chunks
    the image portion comprises (all VMs of an image share the same chunk
    identities, prefix-first: a VM holding half the image holds chunks
    0..chunks/2).
    """

    owner_id: str
    total_pages: int
    image_id: int
    zero_fraction: float = 0.15
    image_fraction: float = 0.35
    chunks: int = 256
    #: Fraction of otherwise-mergeable content written frequently enough
    #: that its checksum never holds across two passes — ksmd refuses to
    #: put such pages in the unstable tree (Section 2.4).
    volatile_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.total_pages <= 0:
            raise ConfigurationError("region must have pages")
        if self.zero_fraction + self.image_fraction > 1.0:
            raise ConfigurationError("fractions exceed the region")
        if self.chunks <= 0:
            raise ConfigurationError("need at least one chunk")
        if not 0.0 <= self.volatile_fraction <= 1.0:
            raise ConfigurationError("volatile_fraction must be in [0, 1]")
        self.scanned_pages = 0
        self.scanned_chunks = 0  # image chunks fully covered by the scan

    # --- composition ----------------------------------------------------

    @property
    def zero_pages(self) -> int:
        return int(self.total_pages * self.zero_fraction)

    @property
    def image_pages(self) -> int:
        return int(self.total_pages * self.image_fraction)

    @property
    def unique_pages(self) -> int:
        return self.total_pages - self.zero_pages - self.image_pages

    @property
    def pages_per_chunk(self) -> int:
        return max(1, self.image_pages // self.chunks)

    @property
    def stable_zero_pages(self) -> int:
        """Zero pages whose checksum survives between passes."""
        return int(self.zero_pages * (1.0 - self.volatile_fraction))

    def chunk_is_volatile(self, chunk: int) -> bool:
        """Deterministic per-content volatility: the same chunk is hot in
        every VM of the image (it is the same guest data)."""
        if self.volatile_fraction <= 0.0:
            return False
        bucket = chunk_fingerprint(self.image_id, chunk) % 1000
        return bucket < self.volatile_fraction * 1000

    def stats(self) -> ContentStats:
        return ContentStats(zero_pages=self.zero_pages,
                            image_pages=self.image_pages,
                            unique_pages=self.unique_pages)

    # --- scan progress -----------------------------------------------------

    def advance_scan(self, pages: int) -> Tuple[int, Tuple[int, ...]]:
        """Scan *pages* more pages of this region.

        The scanner walks the address space, which interleaves the three
        content classes; we model the batch as carrying the region's
        average composition.  Returns ``(zero_pages_scanned,
        newly_covered_chunk_indices)``.  Caps at the region end — the
        daemon resets progress when a full pass completes.
        """
        if pages < 0:
            raise ConfigurationError("pages must be non-negative")
        pages = min(pages, self.total_pages - self.scanned_pages)
        if pages == 0:
            return 0, ()
        self.scanned_pages += pages
        zero_scanned = int(pages * self.zero_fraction)
        if self.image_pages:
            covered_fraction = (self.scanned_pages * self.image_fraction
                                ) / self.image_pages
            target_chunks = min(self.chunks, int(covered_fraction * self.chunks))
        else:
            target_chunks = 0
        new_chunks = tuple(range(self.scanned_chunks, target_chunks))
        self.scanned_chunks = target_chunks
        return zero_scanned, new_chunks

    @property
    def pass_complete(self) -> bool:
        return self.scanned_pages >= self.total_pages

    def reset_pass(self) -> None:
        self.scanned_pages = 0
        self.scanned_chunks = 0
