"""The madvise(MADV_MERGEABLE) registration surface.

KSM only scans regions an application explicitly advised (Section 2.4);
the KVM hypervisor does this for guest memory, which is why VMs get
merging without modification.  The registry is what ksmd iterates.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import ConfigurationError
from repro.ksm.content import RegionContent

MADV_MERGEABLE = 12
MADV_UNMERGEABLE = 13


class MadviseRegistry:
    """Regions currently advised as mergeable, keyed by owner."""

    def __init__(self) -> None:
        self._regions: Dict[str, RegionContent] = {}

    def madvise(self, region: RegionContent, advice: int = MADV_MERGEABLE) -> None:
        """Register (or deregister) a region for merging."""
        if advice == MADV_MERGEABLE:
            if region.owner_id in self._regions:
                raise ConfigurationError(
                    f"{region.owner_id!r} already has a mergeable region")
            self._regions[region.owner_id] = region
        elif advice == MADV_UNMERGEABLE:
            self._regions.pop(region.owner_id, None)
        else:
            raise ConfigurationError(f"unsupported advice {advice}")

    def remove_owner(self, owner_id: str) -> None:
        self._regions.pop(owner_id, None)

    def region_of(self, owner_id: str) -> RegionContent:
        try:
            return self._regions[owner_id]
        except KeyError:
            raise ConfigurationError(
                f"{owner_id!r} has no mergeable region") from None

    def __contains__(self, owner_id: str) -> bool:
        return owner_id in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def regions(self) -> List[RegionContent]:
        return list(self._regions.values())

    def owners(self) -> Iterator[str]:
        return iter(self._regions.keys())

    @property
    def total_pages(self) -> int:
        return sum(r.total_pages for r in self._regions.values())

    def state_dict(self) -> Dict[str, object]:
        return {"regions": self._regions}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._regions = state["regions"]
