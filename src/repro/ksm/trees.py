"""The stable and unstable trees of ksmd.

Real ksmd keeps two red-black trees ordered by page *content*: the stable
tree holds write-protected shared pages, the unstable tree holds
candidate pages seen with an unchanged checksum across two passes.  We
key both by a content fingerprint (a stand-in for memcmp ordering) and
implement them as treaps — balanced enough, and honest about being real
ordered trees rather than hash maps, so lookup costs scale the way the
paper's 10%-of-a-core ksmd budget implies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass
class _Node:
    key: int
    priority: float
    value: object
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class _Treap:
    """Minimal treap keyed by integer fingerprints."""

    def __init__(self, seed: int = 0):
        self._root: Optional[_Node] = None
        self._rng = random.Random(seed)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def search(self, key: int) -> Optional[object]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return None

    def insert(self, key: int, value: object) -> None:
        """Insert (or replace) *key*."""

        def _insert(node: Optional[_Node]) -> _Node:
            if node is None:
                self._size += 1
                return _Node(key, self._rng.random(), value)
            if key == node.key:
                node.value = value
                return node
            if key < node.key:
                node.left = _insert(node.left)
                if node.left.priority > node.priority:
                    node = self._rotate_right(node)
            else:
                node.right = _insert(node.right)
                if node.right.priority > node.priority:
                    node = self._rotate_left(node)
            return node

        self._root = _insert(self._root)

    def remove(self, key: int) -> bool:
        """Remove *key*; returns whether it was present."""
        removed = [False]

        def _remove(node: Optional[_Node]) -> Optional[_Node]:
            if node is None:
                return None
            if key < node.key:
                node.left = _remove(node.left)
                return node
            if key > node.key:
                node.right = _remove(node.right)
                return node
            removed[0] = True
            return self._merge(node.left, node.right)

        self._root = _remove(self._root)
        if removed[0]:
            self._size -= 1
        return removed[0]

    def clear(self) -> None:
        self._root = None
        self._size = 0

    def keys(self) -> Iterator[int]:
        def _walk(node: Optional[_Node]) -> Iterator[int]:
            if node is None:
                return
            yield from _walk(node.left)
            yield node.key
            yield from _walk(node.right)

        yield from _walk(self._root)

    def state_dict(self) -> dict:
        """Node graph + priority RNG (node objects pickle wholesale)."""
        return {"root": self._root, "rng": self._rng.getstate(),
                "size": self._size}

    def load_state_dict(self, state: dict) -> None:
        self._root = state["root"]
        self._rng.setstate(state["rng"])
        self._size = state["size"]

    @staticmethod
    def _rotate_right(node: _Node) -> _Node:
        pivot = node.left
        node.left = pivot.right
        pivot.right = node
        return pivot

    @staticmethod
    def _rotate_left(node: _Node) -> _Node:
        pivot = node.right
        node.right = pivot.left
        pivot.left = node
        return pivot

    def _merge(self, left: Optional[_Node],
               right: Optional[_Node]) -> Optional[_Node]:
        if left is None:
            return right
        if right is None:
            return left
        if left.priority >= right.priority:
            left.right = self._merge(left.right, right)
            return left
        right.left = self._merge(left, right.left)
        return right


@dataclass
class SharedPage:
    """A write-protected page in the stable tree with its sharer count."""

    fingerprint: int
    sharers: int = 1


class StableTree:
    """Shared, write-protected pages keyed by content fingerprint."""

    def __init__(self) -> None:
        self._tree = _Treap(seed=1)

    def __len__(self) -> int:
        return len(self._tree)

    def lookup(self, fingerprint: int) -> Optional[SharedPage]:
        value = self._tree.search(fingerprint)
        return value  # type: ignore[return-value]

    def insert(self, fingerprint: int, sharers: int = 2) -> SharedPage:
        """Promote content into the stable tree with *sharers* users."""
        page = SharedPage(fingerprint=fingerprint, sharers=sharers)
        self._tree.insert(fingerprint, page)
        return page

    def add_sharer(self, fingerprint: int) -> SharedPage:
        page = self.lookup(fingerprint)
        if page is None:
            raise KeyError(fingerprint)
        page.sharers += 1
        return page

    def drop_sharer(self, fingerprint: int) -> int:
        """A sharer wrote (CoW) or exited; returns remaining sharers.

        When the count reaches one, the page is no longer shared and
        leaves the tree (the lone user keeps a private copy).
        """
        page = self.lookup(fingerprint)
        if page is None:
            raise KeyError(fingerprint)
        page.sharers -= 1
        if page.sharers <= 1:
            self._tree.remove(fingerprint)
            return 0
        return page.sharers

    def fingerprints(self) -> Iterator[int]:
        return self._tree.keys()

    def state_dict(self) -> dict:
        return self._tree.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self._tree.load_state_dict(state)


class UnstableTree:
    """Candidate pages whose checksum was stable across passes.

    Rebuilt from scratch every scan pass, exactly as ksmd does — the
    kernel deliberately tolerates this tree being stale or unbalanced.
    """

    def __init__(self) -> None:
        self._tree = _Treap(seed=2)

    def __len__(self) -> int:
        return len(self._tree)

    def find_or_insert(self, fingerprint: int, handle: object) -> Optional[object]:
        """Return the existing holder of *fingerprint*, or insert *handle*.

        A hit means two pages with identical content met in the same pass:
        the caller merges them and promotes the content to the stable tree.
        """
        existing = self._tree.search(fingerprint)
        if existing is not None:
            return existing
        self._tree.insert(fingerprint, handle)
        return None

    def reset(self) -> None:
        """Drop the whole tree at the end of a scan pass."""
        self._tree.clear()

    def state_dict(self) -> dict:
        return self._tree.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self._tree.load_state_dict(state)
