"""Self-validation: quick checks that the models still match the paper.

``python -m repro validate`` runs these after an install or a local
change: each check is cheap (< a second), compares one calibrated model
output against the paper's measured anchor, and reports pass/fail with
the two numbers side by side.  The full audit lives in the benchmark
harness; this is the smoke-test version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.analysis.report import Table
from repro.dram.device import DDR4_8GB_X8
from repro.dram.organization import azure_server_memory, spec_server_memory
from repro.memctrl.lowpower import LowPowerConfig
from repro.memctrl.staircase import (
    detect_entry_threshold,
    run_pasr_sweep,
    run_staircase,
    validate_pasr_sweep,
    validate_staircase,
)
from repro.power.cacti import estimate_gating_cost
from repro.power.model import DRAMPowerModel
from repro.power.states import PowerState, exit_latency_ns
from repro.os.hotplug import HotplugLatencyModel
from repro.sim.perfmodel import PerformanceModel
from repro.workloads.registry import profile_by_name

#: Busy-load bandwidth anchor (16 copies of mcf).
_BUSY_BW = 14e9


@dataclass(frozen=True)
class CheckResult:
    name: str
    paper_value: float
    measured_value: float
    tolerance: float  # relative

    @property
    def passed(self) -> bool:
        if self.paper_value == 0:
            return abs(self.measured_value) <= self.tolerance
        return (abs(self.measured_value - self.paper_value)
                <= self.tolerance * abs(self.paper_value))


def _checks() -> List[Tuple[str, float, Callable[[], float], float]]:
    """(name, paper value, measurement thunk, relative tolerance)."""
    azure = DRAMPowerModel(azure_server_memory())
    spec = DRAMPowerModel(spec_server_memory())
    perf = PerformanceModel()
    latency = HotplugLatencyModel()
    return [
        ("idle DRAM power @256GB (W)", 18.0,
         lambda: azure.idle_power().total_w, 0.12),
        ("busy DRAM power @256GB (W)", 26.0,
         lambda: azure.busy_power(_BUSY_BW, active_residency=0.6).total_w,
         0.12),
        ("busy DRAM power @64GB (W)", 9.0,
         lambda: spec.busy_power(_BUSY_BW, active_residency=0.6).total_w,
         0.15),
        ("power-down exit (ns)", 18.0,
         lambda: exit_latency_ns(PowerState.POWER_DOWN), 0.0),
        ("self-refresh exit (ns)", 768.0,
         lambda: exit_latency_ns(PowerState.SELF_REFRESH), 0.0),
        ("deep power-down exit (ns)", 18.0,
         lambda: exit_latency_ns(PowerState.DEEP_POWER_DOWN), 0.0),
        ("off-lining latency (ms)", 1.58,
         lambda: latency.offline_success_s * 1e3, 0.01),
        ("on-lining latency (ms)", 3.44,
         lambda: latency.online_s * 1e3, 0.01),
        ("EAGAIN latency (ms)", 4.37,
         lambda: latency.failure_eagain_s * 1e3, 0.01),
        ("gating switch area fraction", 0.0064,
         lambda: estimate_gating_cost(DDR4_8GB_X8).switch_area_fraction,
         0.05),
        ("lbm interleaving speedup (x)", 3.8,
         lambda: perf.speedup_from_interleaving(
             profile_by_name("470.lbm"), spec_server_memory(), n_copies=16),
         0.35),
        ("min power unit fraction", 0.015625,
         lambda: (spec_server_memory().min_power_unit_bytes
                  / spec_server_memory().total_capacity_bytes), 0.0),
        # gem5 staircase (Jagtap et al.): the idle-period sweep must
        # demote at the configured thresholds — detected by bisection on
        # the state machine itself — and trace a monotone staircase.
        ("staircase power-down entry (ns)",
         LowPowerConfig().powerdown_idle_ns,
         lambda: detect_entry_threshold(PowerState.POWER_DOWN), 1e-9),
        ("staircase self-refresh entry (ns)",
         LowPowerConfig().selfrefresh_idle_ns,
         lambda: detect_entry_threshold(PowerState.SELF_REFRESH), 1e-9),
        ("staircase contract violations", 0.0,
         lambda: float(len(validate_staircase(run_staircase()).violations)),
         0.0),
        ("PASR gating sweep violations", 0.0,
         lambda: float(len(validate_pasr_sweep(run_pasr_sweep()))), 0.0),
    ]


def run_validation() -> List[CheckResult]:
    """Execute every check; returns the structured results."""
    results = []
    for name, paper_value, thunk, tolerance in _checks():
        results.append(CheckResult(name=name, paper_value=paper_value,
                                   measured_value=float(thunk()),
                                   tolerance=tolerance))
    return results


def render_validation(results: List[CheckResult]) -> str:
    table = Table("Model validation against paper anchors",
                  ["check", "paper", "measured", "tolerance", "status"])
    for result in results:
        table.add_row(result.name, f"{result.paper_value:g}",
                      f"{result.measured_value:.4g}",
                      f"±{result.tolerance:.0%}" if result.tolerance else "exact",
                      "ok" if result.passed else "FAIL")
    return table.render()
