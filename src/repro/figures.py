"""The paper-figure regression suite behind ``repro figures``.

Every experiment the registry knows (Figs. 1–13, Tables 1–3, and the
extension studies) has a committed *expectation file* under
``tests/expected/figures/<id>.json`` holding the key reproduced numbers
at fast-mode settings.  ``repro figures check`` regenerates each
experiment, writes a per-figure ``REPORT.md`` (the Kill-Llama
reproduction layout: rendered tables plus an expected-vs-measured diff),
and exits non-zero when any cell drifts beyond its relative tolerance —
so a refactor that silently shifts an energy-saving percentage fails CI
instead of shipping.  ``repro figures bless`` re-pins the expectations
after an *intentional* model change.

Tolerance policy: every numeric cell is compared at a per-cell
*relative* tolerance — the file-level ``tolerance`` (default
:data:`DEFAULT_TOLERANCE`), overridable per key via ``tolerances``.
Bools, ints, and strings must match exactly.  The experiments are
seeded, so the default tolerance only needs to absorb float-arithmetic
drift across Python/numpy versions, not run-to-run noise.

An expectation file whose experiment is no longer registered is *stale*
and fails ``check``: a silently orphaned pin is indistinguishable from
coverage.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult

#: Relative tolerance applied to every numeric cell unless the
#: expectation file overrides it for a specific key.  The suite is
#: seeded and deterministic; this absorbs cross-version float drift.
DEFAULT_TOLERANCE = 1e-4

_PADDED = re.compile(r"^(fig|tab)(\d+)$")


def file_id(name: str) -> str:
    """Registry name -> expectation-file stem (``fig1`` -> ``fig01``).

    Zero-padding matches the Kill-Llama per-figure directory layout and
    keeps the expectation directory listing in figure order.
    """
    match = _PADDED.match(name)
    if match:
        return f"{match.group(1)}{int(match.group(2)):02d}"
    return name


def repo_root() -> pathlib.Path:
    """The source checkout this module runs from (or the CWD outside one)."""
    root = pathlib.Path(__file__).resolve().parents[2]
    if (root / "pyproject.toml").exists():
        return root
    return pathlib.Path.cwd()


def default_expected_dir() -> pathlib.Path:
    return repo_root() / "tests" / "expected" / "figures"


def default_report_dir() -> pathlib.Path:
    return repo_root() / "reports" / "figures"


@dataclass(frozen=True)
class CellDiff:
    """One expectation cell compared against the fresh measurement."""

    key: str
    expected: Any
    measured: Any
    tolerance: float
    #: Relative error for numeric cells (``None`` for exact-match kinds
    #: and for missing/extra cells).
    rel_err: Optional[float]
    #: ``value`` (compared), ``missing`` (pinned key the run no longer
    #: produces), or ``extra`` (new measured key with no pin).
    kind: str
    ok: bool

    def describe(self) -> str:
        if self.kind == "missing":
            return f"{self.key}: pinned but not measured any more"
        if self.kind == "extra":
            return (f"{self.key}: measured but not pinned "
                    f"(bless to start gating it)")
        if self.ok:
            return f"{self.key}: ok"
        if self.rel_err is not None:
            return (f"{self.key}: expected {_fmt(self.expected)}, measured "
                    f"{_fmt(self.measured)} (rel. err {self.rel_err:.2e} > "
                    f"tolerance {self.tolerance:g})")
        return (f"{self.key}: expected {self.expected!r}, "
                f"measured {self.measured!r}")


@dataclass
class FigureOutcome:
    """One experiment's trip through the suite."""

    name: str
    file_id: str
    result: Optional[ExperimentResult] = None
    expectation: Optional[Dict[str, Any]] = None
    diffs: List[CellDiff] = field(default_factory=list)
    error: str = ""
    report_path: Optional[pathlib.Path] = None
    blessed: bool = False

    @property
    def drifted(self) -> List[CellDiff]:
        return [d for d in self.diffs if not d.ok]

    @property
    def passed(self) -> bool:
        return (not self.error and self.expectation is not None
                and not self.drifted)

    def status(self) -> str:
        if self.error:
            return "ERROR"
        if self.blessed:
            return "blessed"
        if self.expectation is None:
            return "NO EXPECTATION"
        return "ok" if self.passed else "DRIFT"


def expected_path(expected_dir: pathlib.Path, name: str) -> pathlib.Path:
    return pathlib.Path(expected_dir) / f"{file_id(name)}.json"


def load_expectation(path: pathlib.Path) -> Dict[str, Any]:
    """Parse and structurally validate one expectation file."""
    document = json.loads(pathlib.Path(path).read_text())
    if not isinstance(document, dict) or "values" not in document:
        raise ConfigurationError(
            f"{path}: not an expectation document (no 'values' key)")
    if not isinstance(document["values"], dict):
        raise ConfigurationError(f"{path}: 'values' must be an object")
    return document


def write_expectation(path: pathlib.Path, result: ExperimentResult,
                      mode: str = "fast",
                      tolerance: float = DEFAULT_TOLERANCE) -> None:
    """Pin *result*'s numbers to *path* (the ``bless`` action)."""
    document = result.expectation(mode=mode)
    document["tolerance"] = tolerance
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def compare_measured(expectation: Dict[str, Any],
                     result: ExperimentResult) -> List[CellDiff]:
    """Diff a fresh result against one expectation document, per cell."""
    default_tol = float(expectation.get("tolerance", DEFAULT_TOLERANCE))
    overrides: Dict[str, float] = expectation.get("tolerances", {}) or {}
    expected_values: Dict[str, Any] = expectation["values"]
    measured = result.expectation()["values"]
    diffs: List[CellDiff] = []
    for key in sorted(set(expected_values) | set(measured)):
        tol = float(overrides.get(key, default_tol))
        if key not in measured:
            diffs.append(CellDiff(key, expected_values[key], None, tol,
                                  None, "missing", False))
            continue
        if key not in expected_values:
            diffs.append(CellDiff(key, None, measured[key], tol,
                                  None, "extra", False))
            continue
        expected = expected_values[key]
        actual = measured[key]
        diffs.append(_compare_cell(key, expected, actual, tol))
    return diffs


def _compare_cell(key: str, expected: Any, actual: Any,
                  tol: float) -> CellDiff:
    # bool is an int subclass: test it first so True never compares as 1.0.
    if isinstance(expected, bool) or isinstance(actual, bool):
        return CellDiff(key, expected, actual, tol, None, "value",
                        expected is actual)
    if expected is None or actual is None:
        # A serialized non-finite float; only another one matches.
        return CellDiff(key, expected, actual, tol, None, "value",
                        expected is None and actual is None)
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if isinstance(expected, int) and isinstance(actual, int):
            return CellDiff(key, expected, actual, tol, None, "value",
                            expected == actual)
        denom = max(abs(float(expected)), 1e-12)
        rel_err = abs(float(actual) - float(expected)) / denom
        return CellDiff(key, expected, actual, tol, rel_err, "value",
                        rel_err <= tol)
    return CellDiff(key, expected, actual, tol, None, "value",
                    expected == actual)


def stale_expectations(expected_dir: pathlib.Path,
                       names: Sequence[str]) -> List[pathlib.Path]:
    """Committed expectation files with no registered experiment behind them."""
    directory = pathlib.Path(expected_dir)
    if not directory.is_dir():
        return []
    known = {file_id(name) for name in names}
    return sorted(path for path in directory.glob("*.json")
                  if path.stem not in known)


# --- the per-figure report ----------------------------------------------------

def build_figure_report(outcome: FigureOutcome, fast: bool) -> str:
    """Kill-Llama-style REPORT.md for one figure/table experiment."""
    result = outcome.result
    lines = [f"# {outcome.file_id} — "
             f"{result.description if result else outcome.name}", ""]
    lines += ["## Overview", "",
              f"Regenerated by `repro figures` in "
              f"{'fast' if fast else 'full'} mode from experiment "
              f"`{outcome.name}`.  The diff below compares this run's "
              f"headline numbers against the committed expectation "
              f"(`tests/expected/figures/{outcome.file_id}.json`); drift "
              f"beyond the per-cell relative tolerance fails "
              f"`repro figures check`.", ""]
    if outcome.error:
        lines += ["## Error", "", "```", outcome.error, "```", ""]
        return "\n".join(lines)
    lines += ["## Reproduced tables", "", "```", result.render(), "```", ""]
    lines += ["## Expectation diff", ""]
    if outcome.expectation is None:
        lines += ["No committed expectation — run "
                  "`repro figures bless` to pin this experiment.", ""]
    else:
        lines += ["| metric | expected | measured | rel. err | "
                  "tolerance | status |",
                  "| --- | --- | --- | --- | --- | --- |"]
        for diff in outcome.diffs:
            rel = f"{diff.rel_err:.2e}" if diff.rel_err is not None else "-"
            status = "ok" if diff.ok else diff.kind.upper() \
                if diff.kind != "value" else "DRIFT"
            lines.append(f"| {diff.key} | {_fmt(diff.expected)} | "
                         f"{_fmt(diff.measured)} | {rel} | "
                         f"{diff.tolerance:g} | {status} |")
        lines.append("")
    verdict = outcome.status()
    if outcome.blessed:
        lines += [f"**Status: blessed** — expectation re-pinned from "
                  f"this run.", ""]
    elif verdict == "ok":
        lines += ["**Status: PASS** — every cell within tolerance.", ""]
    else:
        drifted = ", ".join(d.key for d in outcome.drifted) or "-"
        lines += [f"**Status: FAIL ({verdict})** — drifted cells: "
                  f"{drifted}.", ""]
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


# --- the suite driver ---------------------------------------------------------

@dataclass
class SuiteOutcome:
    """What one ``repro figures`` invocation did, for rendering and gating."""

    outcomes: List[FigureOutcome]
    stale: List[pathlib.Path]
    action: str

    @property
    def failures(self) -> List[str]:
        """Human-readable gate failures (empty means the check passes)."""
        messages: List[str] = []
        for outcome in self.outcomes:
            if outcome.error:
                messages.append(f"{outcome.file_id}: experiment failed: "
                                f"{outcome.error}")
            elif outcome.blessed:
                continue
            elif outcome.expectation is None:
                messages.append(f"{outcome.file_id}: no committed "
                                f"expectation (run `repro figures bless`)")
            else:
                for diff in outcome.drifted:
                    messages.append(f"{outcome.file_id}: {diff.describe()}")
        for path in self.stale:
            messages.append(f"stale expectation {path.name}: no experiment "
                            f"named for it is registered")
        return messages

    @property
    def passed(self) -> bool:
        return not self.failures


def _suite_item(item: Tuple[str, str, bool, str, str]) -> FigureOutcome:
    """Run one figure through the suite (the :func:`fan_out` unit).

    Module-level and fed a tuple of primitives so it can cross the
    process boundary under ``--workers N``.  Everything the outcome and
    its ``REPORT.md`` contain is a deterministic function of this one
    item, which is what makes the parallel suite byte-identical to the
    serial one: each worker writes its own figure's report, and no
    report depends on any other figure's result.
    """
    name, action, fast, expected_dir_s, report_dir_s = item
    from repro.experiments.registry import run_experiment

    expected_dir = pathlib.Path(expected_dir_s)
    report_dir = pathlib.Path(report_dir_s)
    mode = "fast" if fast else "full"
    outcome = FigureOutcome(name=name, file_id=file_id(name))
    pin = expected_path(expected_dir, name)
    try:
        outcome.result = run_experiment(name, fast=fast)
        if action == "bless":
            write_expectation(pin, outcome.result, mode=mode)
            outcome.blessed = True
            outcome.expectation = load_expectation(pin)
            outcome.diffs = compare_measured(outcome.expectation,
                                             outcome.result)
        elif pin.exists():
            outcome.expectation = load_expectation(pin)
            if outcome.expectation.get("mode", mode) != mode:
                outcome.error = (
                    f"expectation pinned in "
                    f"{outcome.expectation.get('mode')!r} mode but this "
                    f"run is {mode!r} — rerun with matching --fast")
            else:
                outcome.diffs = compare_measured(outcome.expectation,
                                                 outcome.result)
    except Exception as err:  # noqa: BLE001 — one figure must not
        # take down the rest of the suite; the error is the outcome.
        outcome.error = f"{type(err).__name__}: {err}"
    target = report_dir / outcome.file_id / "REPORT.md"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(build_figure_report(outcome, fast))
    outcome.report_path = target
    return outcome


def run_suite(names: Sequence[str], action: str = "check",
              fast: bool = True,
              expected_dir: Optional[pathlib.Path] = None,
              report_dir: Optional[pathlib.Path] = None,
              all_names: Optional[Sequence[str]] = None,
              workers: int = 1) -> SuiteOutcome:
    """Run the figure suite over *names*.

    *action* is ``run`` (regenerate + report), ``check`` (also gate), or
    ``bless`` (re-pin expectations from this run).  *all_names* is the
    full registry — staleness is judged against it, and against *names*
    only when a subset was requested (a partial run must not flag the
    rest of the suite's files as stale).  *workers* > 1 fans the
    figures out over a process pool (:func:`repro.runner.fan_out`); the
    experiments are seeded and independent, so outcomes, exit status,
    and every ``REPORT.md`` are byte-identical to a serial run.
    """
    if action not in ("run", "check", "bless"):
        raise ConfigurationError(f"unknown figures action {action!r}")
    from repro.runner import fan_out

    expected_dir = pathlib.Path(expected_dir or default_expected_dir())
    report_dir = pathlib.Path(report_dir or default_report_dir())
    items = [(name, action, fast, str(expected_dir), str(report_dir))
             for name in names]
    outcomes = fan_out(_suite_item, items, workers=workers,
                       label=lambda item: item[0])
    stale = stale_expectations(expected_dir, list(all_names or names))
    return SuiteOutcome(outcomes=outcomes, stale=stale, action=action)


def render_suite(suite: SuiteOutcome) -> str:
    """The CLI's table view of one suite invocation."""
    from repro.analysis.report import Table

    table = Table(f"figure regression suite ({suite.action})",
                  ["figure", "experiment", "cells", "drift", "status"])
    for outcome in suite.outcomes:
        table.add_row(outcome.file_id, outcome.name,
                      len(outcome.diffs),
                      len(outcome.drifted) if outcome.diffs else "-",
                      outcome.status())
    lines = [table.render()]
    failures = suite.failures
    if suite.action in ("check",) and failures:
        lines.append("")
        lines.append("FAIL:")
        lines.extend(f"  - {message}" for message in failures)
    elif suite.action == "check":
        lines.append("")
        lines.append("OK: every figure matches its committed expectation.")
    elif suite.stale:
        lines.append("")
        lines.extend(f"note: stale expectation {path.name}"
                     for path in suite.stale)
    return "\n".join(lines)
