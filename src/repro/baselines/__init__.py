"""Comparison policies of the Section 6.2 evaluation.

Each baseline estimates, for a workload profile on a topology, the rank
state residencies (and masked-refresh fraction) it can achieve with and
without memory interleaving, plus any runtime/traffic overhead it adds.
The estimates feed the same :class:`repro.power.DRAMPowerModel` GreenDIMM
uses, so the Figure 9/10 comparison is apples-to-apples.
"""

from repro.baselines.base import BaselineEstimate, resident_ranks_for
from repro.baselines.srf_only import SelfRefreshOnlyPolicy
from repro.baselines.ramzzz import RAMZzzPolicy
from repro.baselines.pasr_policy import PASRPolicy

__all__ = [
    "BaselineEstimate",
    "resident_ranks_for",
    "SelfRefreshOnlyPolicy",
    "RAMZzzPolicy",
    "PASRPolicy",
]
