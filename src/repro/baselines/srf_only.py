"""Self-refresh-only: the commodity timeout policy (the paper's baseline).

The memory controller demotes a rank to self-refresh after a long idle
window.  With interleaving every rank sees a slice of every access
stream, idle windows never reach the threshold, and no rank ever enters
self-refresh (Figure 3b, "w/ interleaving").  Without interleaving the
ranks not hosting the footprint sleep most of the time (~54% of cycles
on average in the paper's measurement).
"""

from __future__ import annotations

from repro.baselines.base import (
    BaselineEstimate,
    busy_residency,
    idle_residency,
    resident_ranks_for,
)
from repro.dram.organization import MemoryOrganization
from repro.workloads.profiles import WorkloadProfile

#: Fraction of an idle rank's time the timeout policy actually captures
#: in self-refresh — anchored to the paper's Figure 3b measurement of
#: ~54% of cycles; kernel noise and timeout ramps eat the rest, part of
#: which the shorter power-down timeout still catches.
SELF_REFRESH_EFFICIENCY = 0.55
IDLE_POWERDOWN_FRACTION = 0.30


class SelfRefreshOnlyPolicy:
    """Rank-granularity timeout demotion, nothing else."""

    name = "srf_only"

    def __init__(self, efficiency: float = SELF_REFRESH_EFFICIENCY):
        self.efficiency = efficiency

    def estimate(self, profile: WorkloadProfile,
                 organization: MemoryOrganization,
                 interleaved: bool, n_copies: int = 1) -> BaselineEstimate:
        total_ranks = organization.total_ranks
        resident = resident_ranks_for(
            profile.peak_footprint_bytes * n_copies, organization, interleaved)
        per_rank_bw = (profile.bandwidth_demand_bytes_per_s * n_copies
                       / max(1, resident))
        utilization = min(0.9, per_rank_bw / 4e9)
        profiles = []
        from repro.power.model import RankPowerProfile

        for rank in range(total_ranks):
            if rank < resident:
                profiles.append(RankPowerProfile(
                    state_residency=busy_residency(utilization),
                    bandwidth_bytes_per_s=per_rank_bw,
                    row_miss_rate=1.0 - profile.row_hit_rate))
            else:
                profiles.append(RankPowerProfile(
                    state_residency=idle_residency(
                        self.efficiency,
                        powerdown_fraction=IDLE_POWERDOWN_FRACTION)))
        return BaselineEstimate(
            policy=self.name, interleaved=interleaved,
            rank_profiles=profiles,
            notes=f"{total_ranks - resident} of {total_ranks} ranks idle")
