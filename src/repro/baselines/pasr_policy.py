"""PASR: bank-granularity partial-array self-refresh (mobile DRAM).

PASR lets idle banks stop refreshing while the rank self-refreshes, and
unused banks enter a deep power-down-like state.  Like every rank/bank
scheme it assumes an idle bank *exists*; with interleaving the paper's
Ramulator experiment finds none (Section 3.3), so PASR only helps with
interleaving disabled, and even then only for the refresh component of
banks the footprint does not touch.
"""

from __future__ import annotations

import math

from repro.baselines.base import (
    BaselineEstimate,
    busy_residency,
    idle_residency,
    resident_ranks_for,
)
from repro.baselines.srf_only import SELF_REFRESH_EFFICIENCY
from repro.dram.organization import MemoryOrganization
from repro.power.model import RankPowerProfile
from repro.workloads.profiles import WorkloadProfile

#: Background-power share PASR's deep state removes for a fully idle
#: bank (refresh plus part of the bank periphery; chip-global circuits
#: and the shared I/O stay powered because the rank remains addressable).
PASR_BANK_SAVING = 0.55


class PASRPolicy:
    """Refresh masking for idle banks, on top of the timeout policy."""

    name = "pasr"

    def estimate(self, profile: WorkloadProfile,
                 organization: MemoryOrganization,
                 interleaved: bool, n_copies: int = 1) -> BaselineEstimate:
        total_ranks = organization.total_ranks
        resident = resident_ranks_for(
            profile.peak_footprint_bytes * n_copies, organization, interleaved)
        per_rank_bw = (profile.bandwidth_demand_bytes_per_s * n_copies
                       / max(1, resident))
        utilization = min(0.9, per_rank_bw / 4e9)

        if interleaved:
            # Bank interleaving touches every bank of every rank.
            idle_bank_fraction = 0.0
        else:
            footprint = profile.peak_footprint_bytes * n_copies
            banks_used = math.ceil(
                footprint / organization.logical_bank_capacity_bytes)
            idle_bank_fraction = 1.0 - min(
                1.0, banks_used / organization.total_banks)

        # Idle banks behave like a dpd_fraction scaled by what PASR's
        # state can actually shed (vs GreenDIMM's near-total gating).
        effective_dpd = idle_bank_fraction * PASR_BANK_SAVING
        profiles = []
        for rank in range(total_ranks):
            if rank < resident:
                profiles.append(RankPowerProfile(
                    state_residency=busy_residency(utilization),
                    bandwidth_bytes_per_s=per_rank_bw,
                    row_miss_rate=1.0 - profile.row_hit_rate,
                    dpd_fraction=effective_dpd))
            else:
                profiles.append(RankPowerProfile(
                    state_residency=idle_residency(SELF_REFRESH_EFFICIENCY),
                    dpd_fraction=effective_dpd))
        return BaselineEstimate(
            policy=self.name, interleaved=interleaved,
            rank_profiles=profiles,
            notes=f"idle-bank fraction {idle_bank_fraction:.2f}")
