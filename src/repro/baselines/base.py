"""Shared plumbing for the baseline power-management policies."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.policies.schema import PolicyRow

from repro.dram.organization import MemoryOrganization
from repro.errors import ConfigurationError
from repro.power.model import RankPowerProfile
from repro.power.states import PowerState
from repro.units import GIB
from repro.workloads.profiles import WorkloadProfile


def resident_ranks_for(footprint_bytes: int,
                       organization: MemoryOrganization,
                       interleaved: bool,
                       kernel_bytes: int = 2 * GIB) -> int:
    """Ranks that hold data and therefore keep receiving requests.

    With interleaving every rank holds a slice of every footprint —
    that is the whole problem (Section 3.3).  Without interleaving a
    footprint occupies the minimum number of whole ranks.
    """
    if interleaved:
        return organization.total_ranks
    total = footprint_bytes + kernel_bytes
    ranks = math.ceil(total / organization.rank_capacity_bytes)
    return max(1, min(organization.total_ranks, ranks))


@dataclass
class BaselineEstimate:
    """What a policy achieves for one workload at one operating point."""

    policy: str
    interleaved: bool
    rank_profiles: List[RankPowerProfile]
    runtime_factor: float = 1.0  # multiplier on the workload's runtime
    extra_power_w: float = 0.0   # e.g. migration traffic (RAMZzz)
    notes: str = ""

    def to_row(self, scenario: Optional[str] = None) -> "PolicyRow":
        """Flatten into the shared policy-row schema.

        An estimate is an operating point, not a finished run, so the
        energy fields stay zero; the shape factors travel as extras so
        report tables and figure expectations can still surface them.
        """
        from repro.policies.schema import PolicyRow
        return PolicyRow(
            policy=self.policy,
            scenario=scenario or ("intlv" if self.interleaved
                                  else "no-intlv"),
            extras={"runtime_factor": self.runtime_factor,
                    "extra_power_w": self.extra_power_w},
            notes=self.notes)


def busy_residency(utilization: float) -> Dict[PowerState, float]:
    """Residency of a rank actively serving requests."""
    if not 0.0 <= utilization <= 1.0:
        raise ConfigurationError("utilization must be in [0, 1]")
    return {PowerState.ACTIVE_STANDBY: utilization,
            PowerState.PRECHARGE_STANDBY: 1.0 - utilization}


def idle_residency(selfrefresh_fraction: float,
                   powerdown_fraction: float = 0.0) -> Dict[PowerState, float]:
    """Residency of a rank that holds no (hot) data."""
    rest = 1.0 - selfrefresh_fraction - powerdown_fraction
    if rest < -1e-9:
        raise ConfigurationError("residencies exceed 1")
    residency = {PowerState.PRECHARGE_STANDBY: max(0.0, rest)}
    if selfrefresh_fraction:
        residency[PowerState.SELF_REFRESH] = selfrefresh_fraction
    if powerdown_fraction:
        residency[PowerState.POWER_DOWN] = powerdown_fraction
    return residency


def split_bandwidth(profile: WorkloadProfile, n_copies: int,
                    ranks_carrying: int) -> float:
    """Per-rank bandwidth when traffic concentrates on some ranks."""
    total = profile.bandwidth_demand_bytes_per_s * n_copies
    return total / max(1, ranks_carrying)
