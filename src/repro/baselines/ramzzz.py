"""RAMZzz (Wu et al., SC'12): rank-aware migration + demotion.

RAMZzz groups pages of similar locality, migrates cold pages toward cold
ranks to *manufacture* idle ranks, and proactively demotes those ranks.
Two costs come with it: continuous access monitoring and the migration
traffic itself.  Crucially (Section 7), it does not consider memory
interleaving — with interleaving enabled its rank-level mechanism has
nothing to work with, exactly like the plain timeout policy.
"""

from __future__ import annotations

import math

from repro.baselines.base import (
    BaselineEstimate,
    busy_residency,
    idle_residency,
    resident_ranks_for,
)
from repro.dram.organization import MemoryOrganization
from repro.power.model import RankPowerProfile
from repro.workloads.profiles import WorkloadProfile

#: Fraction of the footprint that is hot enough to pin ranks awake
#: (RAMZzz's page stats pack the cold majority into sleepable ranks).
HOT_FRACTION = 0.25

#: Idle-rank self-refresh capture with proactive demotion (better than a
#: timeout because RAMZzz predicts idleness from its page stats).
DEMOTED_EFFICIENCY = 0.80

#: Runtime overhead of monitoring + migrations the paper attributes to it.
RUNTIME_OVERHEAD = 0.02

#: Migration traffic as a fraction of demand bandwidth.
MIGRATION_TRAFFIC_FRACTION = 0.05


class RAMZzzPolicy:
    """Hot/cold rank reshaping with proactive demotion."""

    name = "ramzzz"

    def estimate(self, profile: WorkloadProfile,
                 organization: MemoryOrganization,
                 interleaved: bool, n_copies: int = 1) -> BaselineEstimate:
        total_ranks = organization.total_ranks
        if interleaved:
            # Interleaving spreads hot data everywhere; migration cannot
            # un-spread the hardware hash.  Pays overhead, gains nothing.
            resident = total_ranks
            idle_eff = 0.0
        else:
            plain_resident = resident_ranks_for(
                profile.peak_footprint_bytes * n_copies, organization,
                interleaved=False)
            hot_bytes = profile.peak_footprint_bytes * n_copies * HOT_FRACTION
            resident = max(1, min(plain_resident, math.ceil(
                hot_bytes / organization.rank_capacity_bytes)))
            idle_eff = DEMOTED_EFFICIENCY
        migration_bw = (profile.bandwidth_demand_bytes_per_s * n_copies
                        * MIGRATION_TRAFFIC_FRACTION)
        per_rank_bw = ((profile.bandwidth_demand_bytes_per_s * n_copies
                        + migration_bw) / max(1, resident))
        utilization = min(0.95, per_rank_bw / 4e9)
        profiles = []
        for rank in range(total_ranks):
            if rank < resident:
                profiles.append(RankPowerProfile(
                    state_residency=busy_residency(utilization),
                    bandwidth_bytes_per_s=per_rank_bw,
                    row_miss_rate=1.0 - profile.row_hit_rate))
            else:
                profiles.append(RankPowerProfile(
                    state_residency=idle_residency(
                        idle_eff, powerdown_fraction=0.15)))
        return BaselineEstimate(
            policy=self.name, interleaved=interleaved,
            rank_profiles=profiles,
            runtime_factor=1.0 + RUNTIME_OVERHEAD,
            notes=f"{total_ranks - resident} cold ranks demoted")
