"""GreenDIMM reproduction: OS-assisted DRAM power management.

A full-system, trace-driven reproduction of *GreenDIMM: OS-assisted DRAM
Power Management for DRAM with a Sub-array Granularity Power-Down State*
(Lee et al., MICRO 2021): DRAM organization and power models, a memory
controller with rank low-power states, an OS physical-memory substrate
with buddy allocation and memory hot-plug, KSM, the GreenDIMM daemon and
sub-array deep power-down, baselines (self-refresh, RAMZzz, PASR), and
the benchmark harness regenerating every table and figure of the paper's
evaluation.

Quick start::

    from repro import GreenDIMMSystem, ServerSimulator, profile_by_name

    system = GreenDIMMSystem()
    result = ServerSimulator(system).run_workload(profile_by_name("429.mcf"))
    print(result.dram_energy_saving, result.overhead_fraction)
"""

from repro.core.config import GreenDIMMConfig, SelectionPolicy
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import (
    MemoryOrganization,
    azure_server_memory,
    spec_server_memory,
)
from repro.power.model import DRAMPowerModel
from repro.power.system import SystemPowerModel
from repro.sim.experiment import evaluate_policies, normalized
from repro.sim.server import ServerSimulator
from repro.workloads.registry import all_profiles, profile_by_name

__version__ = "1.0.0"

__all__ = [
    "GreenDIMMConfig",
    "SelectionPolicy",
    "GreenDIMMSystem",
    "MemoryOrganization",
    "spec_server_memory",
    "azure_server_memory",
    "DRAMPowerModel",
    "SystemPowerModel",
    "ServerSimulator",
    "evaluate_policies",
    "normalized",
    "all_profiles",
    "profile_by_name",
    "__version__",
]
