"""Exception hierarchy for the GreenDIMM reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish simulation-model errors from programming errors.
The OS hot-plug substrate additionally mirrors the Linux errno style
(``EBUSY`` / ``EAGAIN``) that the paper's Section 5.2 analyses, via
:class:`OfflineBusyError` and :class:`OfflineAgainError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters."""


class AddressError(ReproError):
    """A physical address is out of range or cannot be decoded."""


class AllocationError(ReproError):
    """The OS substrate could not satisfy a memory allocation."""


class HotplugError(ReproError):
    """Base class for memory on/off-lining failures."""

    #: errno-style short name, mirroring the Linux return codes the paper
    #: observes (Section 5.2).
    errno_name: str = "EIO"


class OfflineBusyError(HotplugError):
    """Off-lining failed because the block holds unmovable pages (EBUSY).

    The paper measures this failure mode at ~6 us: the kernel refuses to
    isolate the block before attempting any migration.
    """

    errno_name = "EBUSY"


class OfflineAgainError(HotplugError):
    """Off-lining failed transiently (EAGAIN).

    All pages in the block were movable but migration could not complete —
    e.g. no destination frames were available.  The paper measures this at
    ~4.37 ms, roughly 3x the cost of a successful off-lining, because the
    kernel retries migration three times before giving up.
    """

    errno_name = "EAGAIN"


class OnlineError(HotplugError):
    """On-lining failed (block missing or already online)."""

    errno_name = "EINVAL"


class WakeupTimeoutError(HotplugError):
    """The sub-array wake-up ready bit never set within the poll budget.

    Raised by the fault-injection layer wrapping
    ``GreenDIMMPowerControl.prepare_online`` (Section 4.2's poll loop):
    the daemon must treat the block as not-yet-onlineable and move on,
    charging the abandoned poll (``wait_s``) to wake-up wait — never to
    daemon CPU time.
    """

    errno_name = "ETIMEDOUT"

    #: Controller wait burned by the abandoned poll, set by the raiser.
    wait_s: float = 0.0


class PowerStateError(ReproError):
    """An illegal DRAM power-state transition was requested."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class SnapshotError(ReproError):
    """A checkpoint could not be captured, decoded, or restored."""
