"""Analytic CPU-memory performance model.

Execution time is modelled with the standard decomposition

    CPI = CPI_compute + (MPKI / 1000) x stall-per-miss,
    stall-per-miss = latency_ns x freq / MLP_effective,

where the memory-system operating point sets the average miss latency
and the effective memory-level parallelism.  Interleaving is exactly an
MLP/latency knob (Section 3.3): spreading a contiguous footprint over
every channel, rank, and bank multiplies MLP and keeps queueing low,
which is how the paper's lbm speeds up ~3.8x; without interleaving the
footprint concentrates in a few ranks, MLP collapses and queueing grows.

The GreenDIMM overhead model converts daemon activity (on/off-lining
rates) into an execution-time factor, calibrated to the paper's
observations: worst cases just under 3% (gcc), shrinking with larger
blocks (Figure 7), near zero for footprint-stable services (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.dram.organization import MemoryOrganization
from repro.dram.timing import DDR4Timing, DDR4_2133
from repro.errors import ConfigurationError
from repro.workloads.profiles import WorkloadProfile

#: Nominal core frequency of the evaluation platform's Xeon.
CPU_FREQ_GHZ = 2.4

#: Calibration constants of the GreenDIMM interference model: a
#: saturating (Michaelis-Menten) curve in sensitivity-weighted event
#: rate, anchored to the paper's mcf 2.9%@128MB point and <3% worst case.
_OVERHEAD_CAP = 0.035
_OVERHEAD_HALF_RATE = 0.013
_SENSITIVITY_EXP = 0.5
_MPKI_NORM = 65.0  # mcf-class memory intensity


@dataclass(frozen=True)
class MemorySystemPoint:
    """One memory-system operating point seen by the cores."""

    name: str
    latency_ns: float
    effective_mlp: float
    bandwidth_cap_bytes_per_s: float
    #: Expected extra latency per access from low-power wake-ups.
    wake_penalty_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ns <= 0 or self.effective_mlp <= 0:
            raise ConfigurationError("latency and MLP must be positive")


def interleaved_point(organization: MemoryOrganization,
                      timing: DDR4Timing = DDR4_2133,
                      wake_penalty_ns: float = 0.0) -> MemorySystemPoint:
    """Channel/rank/bank interleaving on: high MLP, all channels usable."""
    mlp = min(16.0, organization.channels * 4.0)
    latency = timing.random_access_latency_ns + 25.0  # queue/controller margin
    bandwidth = (organization.channels
                 * timing.channel_peak_bandwidth_bytes_per_s * 0.75)
    return MemorySystemPoint(name="interleaved", latency_ns=latency,
                             effective_mlp=mlp,
                             bandwidth_cap_bytes_per_s=bandwidth,
                             wake_penalty_ns=wake_penalty_ns)


def non_interleaved_point(organization: MemoryOrganization,
                          timing: DDR4Timing = DDR4_2133,
                          resident_ranks: int = 1,
                          wake_penalty_ns: float = 0.0,
                          contention_ns: float = 60.0) -> MemorySystemPoint:
    """Interleaving off: a footprint concentrates in *resident_ranks*.

    MLP is limited to the bank parallelism of those ranks that one core
    can realistically exploit, latency grows with bank-conflict queueing
    (*contention_ns*; pass 0 for a single lightly-loaded copy), and
    bandwidth caps at the channels those ranks live on.
    """
    resident_ranks = max(1, min(resident_ranks, organization.total_ranks))
    channels_used = max(1, min(organization.channels,
                               resident_ranks // organization.ranks_per_channel + 1))
    mlp = min(4.0, 1.0 + resident_ranks)
    latency = timing.random_access_latency_ns + 25.0 + contention_ns
    bandwidth = (channels_used
                 * timing.channel_peak_bandwidth_bytes_per_s * 0.6)
    return MemorySystemPoint(name="non-interleaved", latency_ns=latency,
                             effective_mlp=mlp,
                             bandwidth_cap_bytes_per_s=bandwidth,
                             wake_penalty_ns=wake_penalty_ns)


@lru_cache(maxsize=1)
def _default_reference_point() -> MemorySystemPoint:
    """The paper platform's interleaved operating point.

    ``runtime_s`` falls back to this on every call; building the spec
    server organization each time dominated hot run loops, and the point
    is a frozen value, so one shared instance is safe to reuse.
    """
    from repro.dram.organization import spec_server_memory
    return interleaved_point(spec_server_memory())


class PerformanceModel:
    """Runtime and slowdown estimates for workload profiles."""

    def __init__(self, freq_ghz: float = CPU_FREQ_GHZ):
        if freq_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.freq_ghz = freq_ghz

    # --- CPI / runtime -------------------------------------------------------

    def cpi(self, profile: WorkloadProfile, point: MemorySystemPoint,
            n_copies: int = 1) -> float:
        """Cycles per instruction of *profile* at *point*.

        A bandwidth term inflates CPI when *n_copies* of the workload
        oversubscribe the point's bandwidth cap.
        """
        miss_latency = point.latency_ns + point.wake_penalty_ns
        stall = miss_latency * self.freq_ghz / point.effective_mlp
        cpi_latency = 1.0 / profile.base_ipc + profile.mpki / 1000.0 * stall
        # Roofline: when n_copies' miss traffic exceeds the point's
        # bandwidth, execution is bandwidth-limited instead.
        bytes_per_instr = profile.mpki / 1000.0 * 64.0
        seconds_per_instr = (bytes_per_instr * n_copies
                             / point.bandwidth_cap_bytes_per_s)
        cpi_bandwidth = seconds_per_instr * self.freq_ghz * 1e9
        return max(cpi_latency, cpi_bandwidth)

    def runtime_s(self, profile: WorkloadProfile, point: MemorySystemPoint,
                  reference: Optional[MemorySystemPoint] = None,
                  n_copies: int = 1) -> float:
        """Wall time of one run at *point*.

        ``profile.duration_s`` is defined at the interleaved operating
        point of the paper's platform (*reference*); other points scale it
        by the CPI ratio.
        """
        if reference is None:
            reference = _default_reference_point()
        ratio = self.cpi(profile, point, n_copies) / self.cpi(
            profile, reference, n_copies)
        return profile.duration_s * ratio

    def speedup_from_interleaving(self, profile: WorkloadProfile,
                                  organization: MemoryOrganization,
                                  resident_ranks: int = 1,
                                  n_copies: int = 1) -> float:
        """Figure 3a: runtime(w/o intlv) / runtime(w/ intlv)."""
        on = interleaved_point(organization)
        off = non_interleaved_point(organization, resident_ranks=resident_ranks)
        return self.cpi(profile, off, n_copies) / self.cpi(profile, on, n_copies)

    # --- GreenDIMM interference -----------------------------------------------

    def greendimm_overhead_fraction(self, profile: WorkloadProfile,
                                    offline_events: int, online_events: int,
                                    elapsed_s: float) -> float:
        """Execution-time increase caused by daemon activity.

        Captures the diffuse costs of on/off-lining (zone-lock contention,
        TLB shootdowns, allocation-path retries) as a calibrated function
        of event rate and the workload's memory sensitivity.
        """
        if elapsed_s <= 0:
            return 0.0
        rate = (offline_events + online_events) / elapsed_s
        if rate <= 0:
            return 0.0
        sensitivity = min(1.0, profile.mpki / _MPKI_NORM)
        weighted = sensitivity ** _SENSITIVITY_EXP * rate
        return _OVERHEAD_CAP * weighted / (weighted + _OVERHEAD_HALF_RATE)

    def tail_latency_factor(self, profile: WorkloadProfile,
                            overhead_fraction: float) -> float:
        """95th/99th-percentile inflation for latency-critical services.

        Footprint-stable services see almost no daemon events, so the
        paper observes no notable tail degradation; we model the tail
        factor as tracking the (tiny) runtime overhead.
        """
        if not profile.latency_critical:
            return 1.0 + overhead_fraction
        return 1.0 + 0.5 * overhead_fraction
